//! Workspace façade crate: one import root for the ReCross reproduction.
//!
//! The member crates stay importable under short aliases ([`dram`],
//! [`workload`], [`lp`], [`nmp`], [`serve`], plus [`recross`] itself) for
//! code that wants a specific layer; the [`prelude`] re-exports the
//! user-facing surface — workload construction, the accelerator models
//! and their two APIs (offline [`run`](nmp::EmbeddingAccelerator::run) /
//! serving [`open_session`](nmp::EmbeddingAccelerator::open_session)),
//! and the open-loop serving simulator — so examples and integration
//! tests need a single `use recross_repro::prelude::*;`.

pub use recross;
pub use recross_dram as dram;
pub use recross_lp as lp;
pub use recross_nmp as nmp;
pub use recross_serve as serve;
pub use recross_workload as workload;

/// The user-facing types in one import.
///
/// End to end — generate a workload, open a prepared serving session,
/// then drive the open-loop serving simulator and an SLO probe:
///
/// ```
/// use recross_repro::prelude::*;
///
/// let dram = DramConfig::ddr5_4800();
///
/// // 1. Build a trace: 16 requests of one sample each.
/// let trace = TraceGenerator::criteo_scaled(16, 100)
///     .batch_size(1)
///     .pooling(8)
///     .batches(16)
///     .generate(42);
///
/// // 2. Open a prepared session and price a batch (offline `run` still
/// //    exists for whole-trace experiments).
/// let accel = CpuBaseline::new(dram.clone());
/// let mut session = accel.open_session(&trace.tables);
/// let cycles = session.service(&trace.batches[0]);
/// assert!(cycles > 0);
/// assert_eq!(
///     session.stats(),
///     SessionStats { hits: 0, misses: 1, evictions: 0 }
/// );
///
/// // 3. Serve the trace open-loop: one batching queue + session per
/// //    memory channel, Poisson arrivals, deterministic in the seed.
/// let plan = ChannelPlan::balance_by_load(&trace, 2);
/// let arrivals = ArrivalProcess::poisson(50_000.0)
///     .timestamps(trace.batches.len(), dram.cycles_per_sec(), 42);
/// let mut sessions = open_sessions(&trace, &plan, |_, _| CpuBaseline::new(dram.clone()));
/// let report: ServeReport = simulate_sessions(
///     "CPU",
///     &trace,
///     &plan,
///     &arrivals,
///     BatcherConfig::default(),
///     dram.cycles_per_sec(),
///     &mut sessions,
/// );
/// assert_eq!(report.requests, 16);
/// assert!(report.to_json().contains("\"service_cache\""));
/// ```
pub mod prelude {
    pub use recross_dram::{Cycle, DramConfig};
    pub use recross_nmp::{
        AccessProfile, ChannelPlan, CpuBaseline, EmbeddingAccelerator, Fafnir, MemoizedSession,
        RecNmp, RunReport, ServiceSession, SessionStats, TensorDimm, Trim,
    };
    pub use recross_serve::{
        open_sessions, simulate, simulate_sessions, simulate_tenant_sessions, simulate_tenants,
        slo_search, slo_search_tenants, ArrivalProcess, Batcher, BatcherConfig, LatencyHistogram,
        Priority, QueuePolicy, ServeReport, SloProbe, SloReport, TenantClass, TenantMix,
        TenantProcess, TenantReport, TenantRequest, TenantSloProbe, TenantSloReport,
        TenantVerdict,
    };
    pub use recross_workload::{Batch, EmbeddingTableSpec, Trace, TraceGenerator};
    pub use recross::{empirical_profiles, ReCross, ReCrossConfig};
}
