//! Workspace façade crate: re-exports the ReCross reproduction crates so the
//! top-level examples and integration tests can use one import root.
pub use recross;
pub use recross_dram as dram;
pub use recross_lp as lp;
pub use recross_nmp as nmp;
pub use recross_serve as serve;
pub use recross_workload as workload;
