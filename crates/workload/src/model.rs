//! Functional reference model of the embedding layer (and a minimal DLRM
//! around it).
//!
//! Embedding values are *synthesized* deterministically from
//! `(table, row, dim)` rather than materialized — production tables reach
//! hundreds of GB (paper §2.1), far beyond what tests should allocate. Every
//! accelerator model computes its reductions through the same value function,
//! so timing-model bugs that corrupt which rows are gathered are caught by
//! comparing against this golden model.

use crate::trace::{EmbeddingOp, Trace};

/// Deterministic synthetic embedding value for `(table, row, dim)`.
///
/// Values are in `(-1, 1)` and well spread, so weighted sums are sensitive to
/// any wrong row/any wrong table.
pub fn embedding_value(table: usize, row: u64, dim: u32) -> f32 {
    let mut z = (table as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(row.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(u64::from(dim).wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    // Map the top 24 bits to (-1, 1).
    ((z >> 40) as f32 / (1u64 << 23) as f32) - 1.0
}

/// Computes the golden weighted-sum reduction for one op.
pub fn reduce_op(op: &EmbeddingOp, dim: u32) -> Vec<f32> {
    let mut out = vec![0.0f32; dim as usize];
    for (&row, &w) in op.indices.iter().zip(&op.weights) {
        for (d, slot) in out.iter_mut().enumerate() {
            *slot += w * embedding_value(op.table, row, d as u32);
        }
    }
    out
}

/// Computes golden results for every op of a trace, in issue order.
pub fn reduce_trace(trace: &Trace) -> Vec<Vec<f32>> {
    trace
        .iter_ops()
        .map(|op| reduce_op(op, trace.tables[op.table].dim))
        .collect()
}

/// Asserts two reduction outputs are equal up to FP reassociation tolerance.
///
/// Returns the maximum absolute elementwise deviation.
///
/// # Panics
///
/// Panics if shapes mismatch or any element deviates more than `tol`.
pub fn assert_results_close(a: &[Vec<f32>], b: &[Vec<f32>], tol: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "op count mismatch");
    let mut max_dev = 0.0f32;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "op {i}: dim mismatch");
        for (d, (&xv, &yv)) in x.iter().zip(y).enumerate() {
            let dev = (xv - yv).abs();
            assert!(
                dev <= tol,
                "op {i} dim {d}: {xv} vs {yv} (|Δ| = {dev} > {tol})"
            );
            max_dev = max_dev.max(dev);
        }
    }
    max_dev
}

/// Shape of the dense MLP parts of DLRM (paper Figure 1), used by the
/// end-to-end inference example. The embedding layer is the paper's focus;
/// the MLPs are modelled functionally for completeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Layer widths, first entry = input width.
    pub widths: Vec<u32>,
}

impl MlpSpec {
    /// Facebook DLRM reference bottom MLP (dense features → dim).
    pub fn dlrm_bottom(dense_in: u32, dim: u32) -> Self {
        Self {
            widths: vec![dense_in, 512, 256, dim],
        }
    }

    /// Facebook DLRM reference top MLP (interactions → CTR).
    pub fn dlrm_top(interaction_in: u32) -> Self {
        Self {
            widths: vec![interaction_in, 512, 256, 1],
        }
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| u64::from(w[0]) * u64::from(w[1]))
            .sum()
    }

    /// Functional forward pass with deterministic synthetic weights.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.widths[0] as usize, "input width");
        let mut act = input.to_vec();
        for (layer, w) in self.widths.windows(2).enumerate() {
            let (n_in, n_out) = (w[0] as usize, w[1] as usize);
            let mut next = vec![0.0f32; n_out];
            for (o, slot) in next.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (i, &x) in act.iter().enumerate().take(n_in) {
                    acc += x * synth_weight(layer, i, o);
                }
                *slot = acc.max(0.0); // ReLU
            }
            act = next;
        }
        act
    }
}

fn synth_weight(layer: usize, i: usize, o: usize) -> f32 {
    let v = embedding_value(layer + 1000, i as u64, o as u32);
    v * 0.05 // keep activations bounded through deep stacks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;

    #[test]
    fn values_deterministic_and_bounded() {
        for t in 0..5 {
            for row in [0u64, 1, 12345] {
                for d in 0..8 {
                    let v = embedding_value(t, row, d);
                    assert_eq!(v, embedding_value(t, row, d));
                    assert!((-1.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn values_differ_across_coordinates() {
        let base = embedding_value(0, 0, 0);
        assert_ne!(base, embedding_value(1, 0, 0));
        assert_ne!(base, embedding_value(0, 1, 0));
        assert_ne!(base, embedding_value(0, 0, 1));
    }

    #[test]
    fn reduce_op_linear_in_weights() {
        let op = EmbeddingOp {
            table: 0,
            indices: vec![3, 7],
            weights: vec![2.0, 0.0],
        };
        let r = reduce_op(&op, 4);
        for (d, &v) in r.iter().enumerate() {
            let expect = 2.0 * embedding_value(0, 3, d as u32);
            assert!((v - expect).abs() < 1e-6);
        }
    }

    use crate::trace::EmbeddingOp;

    #[test]
    fn reduce_trace_covers_all_ops() {
        let trace = TraceGenerator::criteo_scaled(8, 10_000)
            .batch_size(2)
            .pooling(4)
            .generate(1);
        let res = reduce_trace(&trace);
        assert_eq!(res.len(), trace.ops());
        assert!(res.iter().all(|r| r.len() == 8));
    }

    #[test]
    fn assert_results_close_accepts_reassociation() {
        let a = vec![vec![1.0f32, 2.0]];
        let b = vec![vec![1.0f32 + 1e-6, 2.0]];
        let dev = assert_results_close(&a, &b, 1e-4);
        assert!(dev > 0.0 && dev < 1e-4);
    }

    #[test]
    #[should_panic(expected = "op count mismatch")]
    fn assert_results_close_rejects_shape() {
        assert_results_close(&[vec![1.0]], &[], 1e-3);
    }

    #[test]
    fn mlp_forward_shapes_and_macs() {
        let mlp = MlpSpec::dlrm_bottom(13, 64);
        let out = mlp.forward(&[0.1; 13]);
        assert_eq!(out.len(), 64);
        assert_eq!(mlp.macs(), 13 * 512 + 512 * 256 + 256 * 64);
        assert!(out.iter().all(|v| *v >= 0.0), "ReLU output non-negative");
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn mlp_rejects_bad_input() {
        MlpSpec::dlrm_top(8).forward(&[0.0; 3]);
    }
}
