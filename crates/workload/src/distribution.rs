//! Per-table access distributions and their cumulative-access curves.
//!
//! The bandwidth-aware partitioner (paper §4.3) consumes, for each table,
//! the *access distribution function* `f_i(p)`: the fraction of all accesses
//! to table `i` that fall on the hottest `p` fraction of its rows. This
//! module provides both the analytic form for Zipfian popularity and the
//! empirical form measured from a trace, which is what Figure 3 plots.

use crate::zipf::{harmonic, Zipf};

/// Popularity model of one embedding table's rows.
#[derive(Debug, Clone)]
pub struct AccessDistribution {
    rows: u64,
    alpha: f64,
    zipf: Zipf,
}

impl AccessDistribution {
    /// A Zipf(α) popularity over `rows` rows; rank 1 = hottest row.
    ///
    /// # Panics
    ///
    /// Panics if the Zipf parameters are invalid (`rows == 0` or `alpha < 0`).
    pub fn zipf(rows: u64, alpha: f64) -> Self {
        let zipf = Zipf::new(rows, alpha).expect("valid zipf parameters");
        Self { rows, alpha, zipf }
    }

    /// Uniform popularity (α = 0), the assumption of pre-ReCross works the
    /// paper argues against (§3.1).
    pub fn uniform(rows: u64) -> Self {
        Self::zipf(rows, 0.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Skew exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying sampler (by popularity *rank*).
    pub fn sampler(&self) -> &Zipf {
        &self.zipf
    }

    /// `f_i(p)`: fraction of accesses captured by the hottest `p ∈ [0, 1]`
    /// fraction of rows. Monotone, concave, `f(0) = 0`, `f(1) = 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use recross_workload::distribution::AccessDistribution;
    ///
    /// let d = AccessDistribution::zipf(1_000_000, 1.0);
    /// // The long-tail phenomenon: < 20% of rows take most accesses.
    /// assert!(d.cdf(0.2) > 0.8);
    /// ```
    pub fn cdf(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        let k = ((p * self.rows as f64).round() as u64).clamp(1, self.rows);
        harmonic(k, self.alpha) / harmonic(self.rows, self.alpha)
    }

    /// Samples the popularity curve at `points+1` evenly spaced `p` values,
    /// producing the series plotted in Figure 3.
    pub fn cdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                (p, self.cdf(p))
            })
            .collect()
    }
}

/// The smallest fraction of rows capturing at least `target` of all accesses
/// (bisection over the concave CDF). Used as a "hot set size" statistic.
pub fn hot_fraction(dist: &AccessDistribution, target: f64) -> f64 {
    let target = target.clamp(0.0, 1.0);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if dist.cdf(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Empirical cumulative-access curve measured from raw per-row hit counts
/// (rows sorted hottest-first), e.g. collected during the training phase as
/// the paper's profiling step does (§4.3 "Data Characterization").
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    /// Normalized cumulative access share after each (sorted) row.
    cumulative: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the curve from per-row access counts (any order).
    ///
    /// # Errors
    ///
    /// Returns `None` if `counts` is empty or sums to zero.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mut sorted: Vec<u64> = counts.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        let cumulative = sorted
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect();
        Some(Self { cumulative })
    }

    /// Number of rows observed.
    pub fn rows(&self) -> usize {
        self.cumulative.len()
    }

    /// Empirical `f(p)`.
    pub fn cdf(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        let k =
            ((p * self.cumulative.len() as f64).round() as usize).clamp(1, self.cumulative.len());
        self.cumulative[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_endpoints() {
        let d = AccessDistribution::zipf(1000, 0.9);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_monotone_and_concave() {
        let d = AccessDistribution::zipf(100_000, 1.1);
        let series = d.cdf_series(50);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "monotone");
        }
        // Concavity: marginal gain shrinks.
        let g1 = d.cdf(0.1) - d.cdf(0.0);
        let g2 = d.cdf(0.9) - d.cdf(0.8);
        assert!(g1 > g2);
    }

    #[test]
    fn uniform_cdf_is_identity() {
        let d = AccessDistribution::uniform(10_000);
        for &p in &[0.1, 0.5, 0.9] {
            assert!((d.cdf(p) - p).abs() < 1e-3);
        }
    }

    #[test]
    fn long_tail_matches_paper_figure3() {
        // Paper Fig. 3: a small percentage of data (< 20%) takes up most of
        // the accesses, for the skewed tables.
        let d = AccessDistribution::zipf(10_000_000, 1.0);
        assert!(d.cdf(0.2) > 0.85);
        assert!(hot_fraction(&d, 0.8) < 0.2);
    }

    #[test]
    fn hot_fraction_inverse_of_cdf() {
        let d = AccessDistribution::zipf(1_000_000, 0.8);
        let p = hot_fraction(&d, 0.7);
        assert!((d.cdf(p) - 0.7).abs() < 1e-3);
    }

    #[test]
    fn empirical_cdf_sorts_hottest_first() {
        let e = EmpiricalCdf::from_counts(&[1, 10, 5, 4]).unwrap();
        assert_eq!(e.rows(), 4);
        // Hottest row (10/20) = 0.5 of accesses at p = 1/4.
        assert!((e.cdf(0.25) - 0.5).abs() < 1e-9);
        assert!((e.cdf(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_cdf_rejects_empty_or_zero() {
        assert!(EmpiricalCdf::from_counts(&[]).is_none());
        assert!(EmpiricalCdf::from_counts(&[0, 0]).is_none());
    }

    #[test]
    fn empirical_matches_analytic_for_zipf_samples() {
        use crate::rng::Xoshiro256pp;
        let d = AccessDistribution::zipf(1_000, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[(d.sampler().sample(&mut rng) - 1) as usize] += 1;
        }
        let e = EmpiricalCdf::from_counts(&counts).unwrap();
        for &p in &[0.05, 0.2, 0.5] {
            assert!(
                (e.cdf(p) - d.cdf(p)).abs() < 0.03,
                "p={p}: emp {} vs analytic {}",
                e.cdf(p),
                d.cdf(p)
            );
        }
    }
}
