//! Zipfian sampling for skewed embedding-row popularity.
//!
//! The paper's Observation 1 (§3.1) is that embedding-table accesses follow a
//! long-tail distribution: a small fraction of rows absorbs most accesses.
//! We model per-table popularity with a Zipf distribution of configurable
//! exponent and sample from it with Hörmann & Derflinger's
//! *rejection-inversion* method, which is O(1) per sample independent of the
//! table cardinality (tables have up to tens of millions of rows).

use crate::rng::Xoshiro256pp;

/// A Zipf(α) sampler over ranks `1..=n`.
///
/// Rank 1 is the most popular item. Probability of rank `k` is
/// `k^-α / H(n, α)` where `H` is the generalized harmonic number.
///
/// # Examples
///
/// ```
/// use recross_workload::{rng::Xoshiro256pp, zipf::Zipf};
///
/// let zipf = Zipf::new(1_000_000, 1.0).unwrap();
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion method.
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

/// Error returned when constructing a [`Zipf`] with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError;

impl core::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "zipf parameters invalid: need n >= 1 and alpha >= 0")
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `alpha`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution and is handled
    /// explicitly (the rejection-inversion constants are still valid for
    /// alpha in `[0, 1)` and `> 1`; `alpha == 1` uses the log form).
    ///
    /// # Errors
    ///
    /// Returns [`ZipfError`] if `n == 0`, `alpha < 0`, or `alpha` is not
    /// finite.
    pub fn new(n: u64, alpha: f64) -> Result<Self, ZipfError> {
        if n == 0 || !alpha.is_finite() || alpha < 0.0 {
            return Err(ZipfError);
        }
        let h_integral_x1 = h_integral(1.5, alpha) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, alpha);
        let s = 2.0 - h_integral_inv(h_integral(2.5, alpha) - (2.0f64).powf(-alpha), alpha);
        Ok(Self {
            n,
            alpha,
            h_integral_x1,
            h_integral_n,
            s,
        })
    }

    /// Number of ranks `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one rank in `1..=n` (rank 1 most popular).
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> u64 {
        if self.alpha == 0.0 {
            return 1 + rng.next_bounded(self.n);
        }
        loop {
            let u = self.h_integral_n + rng.next_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inv(u, self.alpha);
            let k = x.round().clamp(1.0, self.n as f64);
            // Acceptance test of rejection-inversion (Hörmann & Derflinger).
            if k - x <= self.s || u >= h_integral(k + 0.5, self.alpha) - k.powf(-self.alpha) {
                return k as u64;
            }
        }
    }

    /// Exact probability mass of rank `k` (1-based); mainly for tests and the
    /// analytical CDF used by the partitioner.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k), "rank out of range");
        (k as f64).powf(-self.alpha) / harmonic(self.n, self.alpha)
    }
}

/// `∫_1^x t^-α dt = (x^(1-α) - 1) / (1-α)`, or `ln x` when α = 1.
fn h_integral(x: f64, alpha: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
    }
}

/// Inverse of [`h_integral`] in `x`.
fn h_integral_inv(u: f64, alpha: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-12 {
        u.exp()
    } else {
        (1.0 + u * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
    }
}

/// Generalized harmonic number `H(n, α) = Σ_{k=1..n} k^-α`.
///
/// Computed exactly for small `n` and with the Euler–Maclaurin approximation
/// for large `n`, keeping the cost bounded for tables with millions of rows.
pub fn harmonic(n: u64, alpha: f64) -> f64 {
    const EXACT_CUTOFF: u64 = 10_000;
    if n <= EXACT_CUTOFF {
        return (1..=n).map(|k| (k as f64).powf(-alpha)).sum();
    }
    let head: f64 = (1..=EXACT_CUTOFF).map(|k| (k as f64).powf(-alpha)).sum();
    // Euler–Maclaurin for the tail Σ_{k=m+1..n} k^-α with m = EXACT_CUTOFF.
    let m = EXACT_CUTOFF as f64;
    let nf = n as f64;
    let integral = if (alpha - 1.0).abs() < 1e-12 {
        (nf / m).ln()
    } else {
        (nf.powf(1.0 - alpha) - m.powf(1.0 - alpha)) / (1.0 - alpha)
    };
    let correction = 0.5 * (nf.powf(-alpha) - m.powf(-alpha));
    head + integral + correction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(1, 0.0).is_ok());
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(100, 0.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.4, "uniform spread too wide: {min}..{max}");
    }

    #[test]
    fn samples_in_range() {
        for &alpha in &[0.2, 0.8, 1.0, 1.3] {
            let z = Zipf::new(1_000_000, alpha).unwrap();
            let mut rng = Xoshiro256pp::seed_from_u64(2);
            for _ in 0..5_000 {
                let k = z.sample(&mut rng);
                assert!((1..=1_000_000).contains(&k));
            }
        }
    }

    #[test]
    fn empirical_matches_pmf_for_head_ranks() {
        let z = Zipf::new(10_000, 1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 400_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(z.sample(&mut rng)).or_insert(0u64) += 1;
        }
        for k in 1..=5u64 {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            let exact = z.pmf(k);
            assert!(
                (emp - exact).abs() / exact < 0.1,
                "rank {k}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn skewed_head_dominates() {
        let z = Zipf::new(1_000_000, 1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 100_000;
        let head_hits = (0..n)
            .filter(|_| z.sample(&mut rng) <= 10_000) // top 1% of rows
            .count();
        // For Zipf(1.0) over 1M items, top 1% captures well over half.
        assert!(head_hits as f64 / n as f64 > 0.5);
    }

    #[test]
    fn harmonic_exact_small() {
        let h = harmonic(3, 1.0);
        assert!((h - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_approx_close_to_exact() {
        // Compare the approximation path against brute force at n just above
        // the cutoff.
        let n = 20_000u64;
        for &alpha in &[0.5, 1.0, 1.2] {
            let exact: f64 = (1..=n).map(|k| (k as f64).powf(-alpha)).sum();
            let approx = harmonic(n, alpha);
            assert!(
                (exact - approx).abs() / exact < 1e-6,
                "alpha {alpha}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.9).unwrap();
        let total: f64 = (1..=500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
