//! Embedding table specifications.
//!
//! DLRM's embedding layer (paper §2.1) is a set of tables, one per sparse
//! categorical feature. Each table is a `rows × dim` matrix of `f32`. The
//! Criteo datasets used by the paper have **26** sparse features with row
//! cardinalities spanning a few entries to tens of millions.

/// Specification of one embedding table.
///
/// # Examples
///
/// ```
/// use recross_workload::table::EmbeddingTableSpec;
///
/// let spec = EmbeddingTableSpec::new(1_000_000, 64);
/// assert_eq!(spec.bytes(), 1_000_000 * 64 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmbeddingTableSpec {
    /// Number of embedding rows (categorical cardinality).
    pub rows: u64,
    /// Embedding vector dimension (paper: 16–256, default 64).
    pub dim: u32,
    /// Bytes per element (4 for `f32`, the paper's data type).
    pub dtype_bytes: u32,
}

impl EmbeddingTableSpec {
    /// Creates a spec for an `f32` table.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn new(rows: u64, dim: u32) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            rows,
            dim,
            dtype_bytes: 4,
        }
    }

    /// Total size of the table in bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.vector_bytes()
    }

    /// Size of a single embedding vector in bytes.
    pub fn vector_bytes(&self) -> u64 {
        u64::from(self.dim) * u64::from(self.dtype_bytes)
    }
}

/// Row cardinalities of the 26 sparse features of the Criteo Kaggle Display
/// Advertising dataset (the paper's primary dataset, its ref. 2).
///
/// These are the well-known cardinalities of features C1–C26 as published
/// with the DLRM reference implementation.
pub const CRITEO_KAGGLE_CARDINALITIES: [u64; 26] = [
    1_460, 583, 10_131_227, 2_202_608, 305, 24, 12_517, 633, 3, 93_145, 5_683, 8_351_593, 3_194,
    27, 14_992, 5_461_306, 10, 5_652, 2_173, 4, 7_046_547, 18, 15, 286_181, 105, 142_572,
];

/// Row cardinalities in the spirit of the Criteo Terabyte click logs (the
/// paper's ref. 1) with the common 10M-row hashing cap applied to the
/// largest features, as the DLRM reference implementation does
/// (`--max-ind-range=10000000`).
pub const CRITEO_TERABYTE_CARDINALITIES: [u64; 26] = [
    9_980_333, 36_084, 17_217, 7_420, 20_263, 3, 7_120, 1_543, 63, 9_999_977, 2_642_264, 9_960_506,
    11, 2_208, 11_938, 155, 4, 976, 14, 9_994_222, 9_979_771, 9_988_475, 490_581, 12_022, 108, 36,
];

/// Builds the 26-table Criteo-Terabyte-like embedding layer.
///
/// # Examples
///
/// ```
/// use recross_workload::table::criteo_terabyte_tables;
///
/// let tables = criteo_terabyte_tables(64);
/// assert_eq!(tables.len(), 26);
/// ```
pub fn criteo_terabyte_tables(dim: u32) -> Vec<EmbeddingTableSpec> {
    CRITEO_TERABYTE_CARDINALITIES
        .iter()
        .map(|&rows| EmbeddingTableSpec::new(rows, dim))
        .collect()
}

/// Builds the 26-table Criteo-Kaggle-like embedding layer used throughout the
/// evaluation, with a common embedding dimension.
///
/// # Examples
///
/// ```
/// use recross_workload::table::criteo_kaggle_tables;
///
/// let tables = criteo_kaggle_tables(64);
/// assert_eq!(tables.len(), 26);
/// assert!(tables.iter().any(|t| t.rows > 10_000_000));
/// ```
pub fn criteo_kaggle_tables(dim: u32) -> Vec<EmbeddingTableSpec> {
    CRITEO_KAGGLE_CARDINALITIES
        .iter()
        .map(|&rows| EmbeddingTableSpec::new(rows, dim))
        .collect()
}

/// A reduced-cardinality variant of [`criteo_kaggle_tables`] for fast unit
/// tests and criterion benches: same *shape* of the cardinality spectrum
/// (each table scaled down by `factor`, minimum 4 rows).
pub fn scaled_criteo_tables(dim: u32, factor: u64) -> Vec<EmbeddingTableSpec> {
    assert!(factor > 0, "scale factor must be positive");
    CRITEO_KAGGLE_CARDINALITIES
        .iter()
        .map(|&rows| EmbeddingTableSpec::new((rows / factor).max(4), dim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_sizes() {
        let s = EmbeddingTableSpec::new(10, 32);
        assert_eq!(s.vector_bytes(), 128);
        assert_eq!(s.bytes(), 1280);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        EmbeddingTableSpec::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        EmbeddingTableSpec::new(1, 0);
    }

    #[test]
    fn criteo_has_long_tail_of_cardinalities() {
        let tables = criteo_kaggle_tables(64);
        let big = tables.iter().filter(|t| t.rows > 1_000_000).count();
        let small = tables.iter().filter(|t| t.rows < 1_000).count();
        assert!(big >= 5, "several tables are huge");
        assert!(small >= 8, "several tables are tiny");
    }

    #[test]
    fn scaled_preserves_count_and_min() {
        let t = scaled_criteo_tables(16, 1000);
        assert_eq!(t.len(), 26);
        assert!(t.iter().all(|s| s.rows >= 4));
    }

    #[test]
    fn terabyte_tables_are_bigger() {
        let kaggle: u64 = criteo_kaggle_tables(64).iter().map(|t| t.rows).sum();
        let terabyte: u64 = criteo_terabyte_tables(64).iter().map(|t| t.rows).sum();
        assert!(terabyte > kaggle);
        assert_eq!(criteo_terabyte_tables(32).len(), 26);
    }

    #[test]
    fn total_footprint_is_gigabytes_at_dim_64() {
        let total: u64 = criteo_kaggle_tables(64).iter().map(|t| t.bytes()).sum();
        // ~33.8M rows * 256B ≈ 8.7 GB: embedding layer dominates model size.
        assert!(total > 8 * 1024 * 1024 * 1024u64);
    }
}
