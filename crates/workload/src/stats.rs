//! Workload statistics: load imbalance and cumulative-access curves.
//!
//! The *load imbalance ratio* (paper Figures 4 and 13) for one embedding
//! operation is the largest number of lookups landing on any single memory
//! node divided by the ideal per-node share (total lookups / node count).
//! A ratio of 1 is perfectly balanced; large ratios mean one node serializes
//! the whole operation.

/// Load-imbalance ratio of one operation given per-node lookup counts.
///
/// Returns 0 for an empty operation (no lookups anywhere).
///
/// # Examples
///
/// ```
/// use recross_workload::stats::imbalance_ratio;
///
/// // 8 lookups over 4 nodes, one node takes 5 of them:
/// assert_eq!(imbalance_ratio(&[5, 1, 1, 1]), 2.5);
/// // perfectly balanced:
/// assert_eq!(imbalance_ratio(&[2, 2, 2, 2]), 1.0);
/// ```
pub fn imbalance_ratio(node_loads: &[u64]) -> f64 {
    if node_loads.is_empty() {
        return 0.0;
    }
    let total: u64 = node_loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *node_loads.iter().max().expect("non-empty") as f64;
    let ideal = total as f64 / node_loads.len() as f64;
    max / ideal
}

/// Summary of a set of per-operation imbalance ratios.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImbalanceSummary {
    /// Mean ratio across operations.
    pub mean: f64,
    /// Median ratio.
    pub p50: f64,
    /// 90th percentile ratio.
    pub p90: f64,
    /// Maximum observed ratio.
    pub max: f64,
}

impl ImbalanceSummary {
    /// Summarizes a list of ratios. Returns the default (all zeros) when
    /// `ratios` is empty.
    pub fn from_ratios(ratios: &[f64]) -> Self {
        if ratios.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = ratios.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
        let pick = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.5),
            p90: pick(0.9),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl core::fmt::Display for ImbalanceSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mean {:.2} / p50 {:.2} / p90 {:.2} / max {:.2}",
            self.mean, self.p50, self.p90, self.max
        )
    }
}

/// Gini coefficient of a set of access counts: 0 = perfectly uniform,
/// → 1 = maximally concentrated. A standard skew statistic for embedding
/// popularity (long-tail ⇒ high Gini).
///
/// # Examples
///
/// ```
/// use recross_workload::stats::gini;
///
/// assert!(gini(&[1, 1, 1, 1]) < 1e-9);
/// assert!(gini(&[100, 1, 1, 1]) > 0.5);
/// ```
pub fn gini(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Shannon entropy (bits) of the normalized access distribution; the
/// maximum is `log2(n)` for a uniform distribution.
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Normalized entropy in `[0, 1]`: `entropy / log2(n)` over the nonzero
/// support; 1 = uniform.
pub fn normalized_entropy(counts: &[u64]) -> f64 {
    let support = counts.iter().filter(|&&c| c > 0).count();
    if support <= 1 {
        // A single-key (or empty) distribution carries no entropy.
        return 0.0;
    }
    entropy_bits(counts) / (support as f64).log2()
}

/// Distributes each op's lookups to `nodes` memory nodes via a hash of the
/// row index (the baselines' contiguous-allocation policy where the row index
/// is the memory offset, §3.1), then summarizes the imbalance.
pub fn trace_imbalance<F>(
    trace: &crate::trace::Trace,
    nodes: usize,
    mut node_of: F,
) -> ImbalanceSummary
where
    F: FnMut(usize, u64) -> usize,
{
    assert!(nodes > 0, "need at least one node");
    let mut ratios = Vec::new();
    for op in trace.iter_ops() {
        let mut loads = vec![0u64; nodes];
        for &idx in &op.indices {
            let n = node_of(op.table, idx);
            assert!(n < nodes, "node_of out of range");
            loads[n] += 1;
        }
        ratios.push(imbalance_ratio(&loads));
    }
    ImbalanceSummary::from_ratios(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(imbalance_ratio(&[]), 0.0);
        assert_eq!(imbalance_ratio(&[0, 0]), 0.0);
        assert_eq!(imbalance_ratio(&[4]), 1.0);
        assert_eq!(imbalance_ratio(&[8, 0, 0, 0]), 4.0);
    }

    #[test]
    fn summary_percentiles() {
        let ratios = vec![1.0, 1.0, 2.0, 4.0];
        let s = ImbalanceSummary::from_ratios(&ratios);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.0);
        assert!(s.p50 >= 1.0 && s.p50 <= 2.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        assert_eq!(
            ImbalanceSummary::from_ratios(&[]),
            ImbalanceSummary::default()
        );
    }

    #[test]
    fn gini_bounds_and_ordering() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert!(gini(&[5, 5, 5]) < 1e-9);
        let mild = gini(&[4, 3, 2, 1]);
        let harsh = gini(&[97, 1, 1, 1]);
        assert!(harsh > mild);
        assert!(harsh < 1.0);
    }

    #[test]
    fn entropy_uniform_is_log2n() {
        let e = entropy_bits(&[2, 2, 2, 2]);
        assert!((e - 2.0).abs() < 1e-12);
        assert!((normalized_entropy(&[2, 2, 2, 2]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(normalized_entropy(&[7]), 0.0);
    }

    #[test]
    fn skewed_counts_have_low_entropy_high_gini() {
        let skewed = [1000u64, 1, 1, 1, 1, 1, 1, 1];
        assert!(normalized_entropy(&skewed) < 0.3);
        assert!(gini(&skewed) > 0.7);
    }

    #[test]
    fn more_nodes_worse_imbalance() {
        // Paper Fig. 4: finer NMP granularity (more nodes) worsens imbalance.
        let trace = TraceGenerator::criteo_scaled(16, 100)
            .batch_size(8)
            .pooling(40)
            .generate(11);
        let hash = |t: usize, idx: u64, nodes: usize| {
            ((idx ^ (t as u64) << 7).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nodes
        };
        let coarse = trace_imbalance(&trace, 4, |t, i| hash(t, i, 4));
        let fine = trace_imbalance(&trace, 64, |t, i| hash(t, i, 64));
        assert!(
            fine.mean > coarse.mean,
            "fine {} should exceed coarse {}",
            fine.mean,
            coarse.mean
        );
    }

    #[test]
    #[should_panic(expected = "node_of out of range")]
    fn trace_imbalance_validates_node() {
        let trace = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(1)
            .generate(1);
        trace_imbalance(&trace, 2, |_, _| 5);
    }
}
