//! Embedding-operation trace generation.
//!
//! A *trace* is the unit of work every accelerator model consumes: a sequence
//! of batches, each batch holding one gather-reduce (pooling) operation per
//! (sample, table) pair. Defaults follow the paper's §5.1: pooling factor 80,
//! batch size 32, the 26-table Criteo workload, weighted-sum reduction.
//!
//! Hot rows must be *randomly distributed* inside each table (paper §3.1:
//! "these few frequently accessed rows are randomly distributed in the
//! arbitrarily large embedding tables"), so popularity rank `r` is mapped to
//! a row id through a pseudo-random permutation (a cycle-walking Feistel
//! network), not stored as a giant array.

use crate::distribution::AccessDistribution;
use crate::rng::{SplitMix64, Xoshiro256pp};
use crate::table::EmbeddingTableSpec;

/// A format-preserving pseudo-random permutation over `[0, n)`.
///
/// Implemented as a 4-round Feistel network over the smallest power-of-two
/// domain ≥ `n`, with cycle-walking to stay inside `[0, n)`. Deterministic
/// given the key; self-inverse is *not* required (we only need injectivity).
///
/// # Examples
///
/// ```
/// use recross_workload::trace::FeistelPermutation;
///
/// let p = FeistelPermutation::new(1000, 42);
/// let mut seen = std::collections::HashSet::new();
/// for i in 0..1000 {
///     assert!(seen.insert(p.permute(i)), "must be a bijection");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl FeistelPermutation {
    /// Creates a permutation of `[0, n)` keyed by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, key: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        let bits = 64 - (n - 1).leading_zeros();
        let bits = bits.max(2); // at least a 2-bit domain for the split
        let half_bits = bits.div_ceil(2);
        let mut sm = SplitMix64::new(key);
        let keys = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { n, half_bits, keys }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true; kept for API convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps `x ∈ [0, n)` to its image, also in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.n, "input outside permutation domain");
        let mask = (1u64 << self.half_bits) - 1;
        let mut v = x;
        // Cycle-walk until the value lands back inside [0, n).
        loop {
            let mut left = v >> self.half_bits;
            let mut right = v & mask;
            for &k in &self.keys {
                let f = round_fn(right, k) & mask;
                let new_left = right;
                let new_right = left ^ f;
                left = new_left;
                right = new_right;
            }
            v = (left << self.half_bits) | right;
            if v < self.n {
                return v;
            }
        }
    }

    /// Inverse mapping: `invert(permute(x)) == x`.
    ///
    /// Cycle-walking preserves invertibility because the walk stays within
    /// one cycle of the underlying power-of-two permutation.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn invert(&self, y: u64) -> u64 {
        assert!(y < self.n, "input outside permutation domain");
        let mask = (1u64 << self.half_bits) - 1;
        let mut v = y;
        loop {
            let mut left = v >> self.half_bits;
            let mut right = v & mask;
            for &k in self.keys.iter().rev() {
                // Forward: (L, R) -> (R, L ^ f(R)). Inverse: L = R' ^ f(L'),
                // R = L'.
                let f = round_fn(left, k) & mask;
                let new_right = left;
                let new_left = right ^ f;
                left = new_left;
                right = new_right;
            }
            v = (left << self.half_bits) | right;
            if v < self.n {
                return v;
            }
        }
    }
}

fn round_fn(x: u64, key: u64) -> u64 {
    let mut z = x.wrapping_add(key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 32)
}

/// One gather-reduce (pooling) operation on a single table.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingOp {
    /// Index of the target table in the workload's table list.
    pub table: usize,
    /// Row ids to gather (length = pooling factor).
    pub indices: Vec<u64>,
    /// Per-row weights for the weighted-sum reduction (paper §4.1).
    pub weights: Vec<f32>,
}

impl EmbeddingOp {
    /// Number of embedding vectors gathered by this op.
    pub fn pooling(&self) -> usize {
        self.indices.len()
    }
}

/// A batch of embedding operations processed together (throughput unit).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// Operations in this batch.
    pub ops: Vec<EmbeddingOp>,
}

impl Batch {
    /// Total lookups across all ops in the batch.
    pub fn lookups(&self) -> usize {
        self.ops.iter().map(EmbeddingOp::pooling).sum()
    }
}

/// A full trace: the workload description plus the generated batches.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Table specifications (shared with the generator).
    pub tables: Vec<EmbeddingTableSpec>,
    /// Batches in issue order.
    pub batches: Vec<Batch>,
}

impl Trace {
    /// Total number of lookups in the trace.
    pub fn lookups(&self) -> usize {
        self.batches.iter().map(Batch::lookups).sum()
    }

    /// Total number of operations in the trace.
    pub fn ops(&self) -> usize {
        self.batches.iter().map(|b| b.ops.len()).sum()
    }

    /// Total gathered bytes (before reduction) — what a CPU must move.
    pub fn gathered_bytes(&self) -> u64 {
        self.batches
            .iter()
            .flat_map(|b| &b.ops)
            .map(|op| op.pooling() as u64 * self.tables[op.table].vector_bytes())
            .sum()
    }

    /// Iterates over all ops in issue order.
    pub fn iter_ops(&self) -> impl Iterator<Item = &EmbeddingOp> {
        self.batches.iter().flat_map(|b| b.ops.iter())
    }
}

/// Builder for traces: configures the workload, then generates deterministic
/// traces from a seed.
///
/// # Examples
///
/// ```
/// use recross_workload::trace::TraceGenerator;
///
/// let trace = TraceGenerator::criteo_kaggle(64)
///     .batch_size(4)
///     .pooling(20)
///     .batches(2)
///     .generate(7);
/// assert_eq!(trace.batches.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    tables: Vec<EmbeddingTableSpec>,
    distributions: Vec<AccessDistribution>,
    table_prob: Vec<f64>,
    permutation_seed: u64,
    batch_size: usize,
    pooling: u32,
    batches: usize,
}

impl TraceGenerator {
    /// Creates a generator over explicit tables and per-table distributions.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or of mismatched length, or if a
    /// distribution's row count disagrees with its table spec.
    pub fn new(tables: Vec<EmbeddingTableSpec>, distributions: Vec<AccessDistribution>) -> Self {
        assert!(!tables.is_empty(), "need at least one table");
        assert_eq!(
            tables.len(),
            distributions.len(),
            "one distribution per table"
        );
        for (t, d) in tables.iter().zip(&distributions) {
            assert_eq!(t.rows, d.rows(), "distribution/table row mismatch");
        }
        let n = tables.len();
        Self {
            tables,
            distributions,
            table_prob: vec![1.0; n],
            permutation_seed: 0xC0FF_EE00,
            batch_size: 32,
            pooling: 80,
            batches: 1,
        }
    }

    /// The Criteo-Kaggle-like workload: 26 tables with realistic
    /// cardinalities and a spectrum of Zipf exponents (0.4–1.2) so the
    /// per-table CDFs span the spread seen in the paper's Figure 3.
    pub fn criteo_kaggle(dim: u32) -> Self {
        let tables = crate::table::criteo_kaggle_tables(dim);
        let dists = spread_distributions(&tables);
        Self::new(tables, dists)
    }

    /// The Criteo-Terabyte-like workload (larger hot tables, harder skew).
    pub fn criteo_terabyte(dim: u32) -> Self {
        let tables = crate::table::criteo_terabyte_tables(dim);
        let dists = spread_distributions(&tables);
        Self::new(tables, dists)
    }

    /// A scaled-down Criteo-like workload for fast tests and benches.
    pub fn criteo_scaled(dim: u32, factor: u64) -> Self {
        let tables = crate::table::scaled_criteo_tables(dim, factor);
        let dists = spread_distributions(&tables);
        Self::new(tables, dists)
    }

    /// Sets the number of samples per batch (paper default 32, swept 1–128).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the pooling factor — vectors gathered per op (paper default 80).
    pub fn pooling(mut self, pooling: u32) -> Self {
        assert!(pooling > 0, "pooling factor must be positive");
        self.pooling = pooling;
        self
    }

    /// Sets the number of batches to generate.
    pub fn batches(mut self, batches: usize) -> Self {
        assert!(batches > 0, "need at least one batch");
        self.batches = batches;
        self
    }

    /// Sets per-table access probabilities (`prob_i` in the paper's Table 1).
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any probability is outside [0, 1].
    pub fn table_probabilities(mut self, probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), self.tables.len());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        self.table_prob = probs;
        self
    }

    /// Table specifications.
    pub fn tables(&self) -> &[EmbeddingTableSpec] {
        &self.tables
    }

    /// Per-table access distributions.
    pub fn distributions(&self) -> &[AccessDistribution] {
        &self.distributions
    }

    /// Per-table access probabilities.
    pub fn table_prob(&self) -> &[f64] {
        &self.table_prob
    }

    /// Configured pooling factor.
    pub fn pooling_factor(&self) -> u32 {
        self.pooling
    }

    /// Configured batch size.
    pub fn batch_size_value(&self) -> usize {
        self.batch_size
    }

    /// The rank→row permutation used for table `t` (hot rows scattered
    /// randomly through the table). Exposed so placement code can invert the
    /// popularity order when profiling analytically.
    pub fn rank_permutation(&self, t: usize) -> FeistelPermutation {
        FeistelPermutation::new(
            self.tables[t].rows,
            self.permutation_seed ^ (t as u64).wrapping_mul(0x9E37_79B9),
        )
    }

    /// Generates a deterministic trace from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut master = Xoshiro256pp::seed_from_u64(seed);
        let perms: Vec<FeistelPermutation> = (0..self.tables.len())
            .map(|t| self.rank_permutation(t))
            .collect();
        let mut batches = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let mut ops = Vec::new();
            for _sample in 0..self.batch_size {
                for (t, dist) in self.distributions.iter().enumerate() {
                    if self.table_prob[t] < 1.0 && !master.next_bool(self.table_prob[t]) {
                        continue;
                    }
                    let pooling = (self.pooling as u64).min(self.tables[t].rows) as usize;
                    let mut indices = Vec::with_capacity(pooling);
                    let mut weights = Vec::with_capacity(pooling);
                    for _ in 0..pooling {
                        let rank = dist.sampler().sample(&mut master) - 1;
                        indices.push(perms[t].permute(rank));
                        // Weights in (0.5, 1.5) keep the weighted sum well
                        // conditioned for FP comparisons.
                        weights.push(0.5 + master.next_f64() as f32);
                    }
                    ops.push(EmbeddingOp {
                        table: t,
                        indices,
                        weights,
                    });
                }
            }
            batches.push(Batch { ops });
        }
        Trace {
            tables: self.tables.clone(),
            batches,
        }
    }
}

/// Assigns each table a Zipf exponent spread over [0.4, 1.2], larger tables
/// more skewed — mirroring the Figure 3 observation that the curves span a
/// wide band with big tables strongly long-tailed.
fn spread_distributions(tables: &[EmbeddingTableSpec]) -> Vec<AccessDistribution> {
    let n = tables.len().max(2);
    tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let base = 0.4 + 0.8 * (i as f64 / (n - 1) as f64);
            // Big tables are the strongly skewed ones in practice; tiny
            // tables are effectively uniform no matter the exponent.
            let alpha = if t.rows > 100_000 {
                base.max(0.9)
            } else {
                base
            };
            AccessDistribution::zipf(t.rows, alpha)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feistel_is_bijection_odd_domain() {
        let p = FeistelPermutation::new(1013, 9);
        let mut seen = vec![false; 1013];
        for i in 0..1013 {
            let y = p.permute(i) as usize;
            assert!(!seen[y], "duplicate image {y}");
            seen[y] = true;
        }
    }

    #[test]
    fn feistel_invert_roundtrip() {
        for &n in &[1u64, 2, 7, 1000, 1013, 65_536, 1_000_003] {
            let p = FeistelPermutation::new(n, 77);
            for x in (0..n).step_by((n as usize / 97).max(1)) {
                assert_eq!(p.invert(p.permute(x)), x, "n={n} x={x}");
            }
        }
    }

    #[test]
    fn feistel_domain_one() {
        let p = FeistelPermutation::new(1, 3);
        assert_eq!(p.permute(0), 0);
    }

    #[test]
    #[should_panic(expected = "outside permutation domain")]
    fn feistel_out_of_range_panics() {
        FeistelPermutation::new(10, 0).permute(10);
    }

    #[test]
    fn feistel_scatters_head() {
        // The hot head (ranks 0..100) should land all over a 1e6 domain, not
        // clustered at the front.
        let p = FeistelPermutation::new(1_000_000, 1);
        let in_front = (0..100).filter(|&r| p.permute(r) < 10_000).count();
        assert!(in_front < 10, "head should be scattered, got {in_front}");
    }

    #[test]
    fn terabyte_generator_works() {
        let g = TraceGenerator::criteo_terabyte(16).batch_size(1).pooling(4);
        let t = g.generate(1);
        assert_eq!(t.tables.len(), 26);
        assert!(t.lookups() > 0);
    }

    #[test]
    fn generate_is_deterministic() {
        let g = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(2)
            .batches(2);
        let a = g.generate(5);
        let b = g.generate(5);
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn different_seed_different_trace() {
        let g = TraceGenerator::criteo_scaled(16, 10_000).batch_size(2);
        assert_ne!(g.generate(1).batches, g.generate(2).batches);
    }

    #[test]
    fn trace_counts_consistent() {
        let g = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(3)
            .pooling(8)
            .batches(2);
        let t = g.generate(1);
        assert_eq!(t.ops(), 2 * 3 * 26);
        // Tables smaller than the pooling factor clamp it.
        assert!(t.lookups() <= 2 * 3 * 26 * 8);
        assert!(t.lookups() > 0);
    }

    #[test]
    fn indices_within_table_bounds() {
        let g = TraceGenerator::criteo_scaled(16, 1000).batch_size(4);
        let t = g.generate(3);
        for op in t.iter_ops() {
            let rows = t.tables[op.table].rows;
            assert!(op.indices.iter().all(|&i| i < rows));
            assert_eq!(op.indices.len(), op.weights.len());
        }
    }

    #[test]
    fn table_probability_filters_ops() {
        let g = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(16)
            .table_probabilities(vec![0.0; 26]);
        assert_eq!(g.generate(1).ops(), 0);
    }

    #[test]
    fn gathered_bytes_matches_manual() {
        let g = TraceGenerator::criteo_scaled(32, 10_000)
            .batch_size(1)
            .pooling(4)
            .batches(1);
        let t = g.generate(9);
        let manual: u64 = t
            .iter_ops()
            .map(|op| op.indices.len() as u64 * t.tables[op.table].vector_bytes())
            .sum();
        assert_eq!(t.gathered_bytes(), manual);
    }
}
