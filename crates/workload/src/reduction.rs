//! Reduction operations of the embedding layer.
//!
//! The paper's PEs support "various reduction operations, e.g., summation,
//! weighted summation, and quantized operation" (§4.1), selected by the
//! NMP instruction's 3-bit opcode. This module implements each reduction
//! functionally (the golden semantics every PE model is checked against)
//! and reports its per-vector arithmetic cost for the energy model.

use crate::model::embedding_value;
use crate::trace::EmbeddingOp;

/// A reduction operation over gathered embedding vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reduction {
    /// Plain element-wise summation.
    Sum,
    /// Weighted summation (the paper's evaluation default).
    #[default]
    WeightedSum,
    /// Element-wise mean over the gathered vectors.
    Average,
    /// Concatenation: no reduction; all vectors stream to the host.
    Concat,
    /// Int8-quantized summation: vectors are quantized with a shared scale,
    /// accumulated in i32, and dequantized once.
    QuantizedSum,
}

impl Reduction {
    /// FP32 additions per gathered vector of dimension `dim`.
    pub fn adds_per_vector(self, dim: u32) -> u64 {
        match self {
            Reduction::Sum | Reduction::WeightedSum | Reduction::Average => u64::from(dim),
            Reduction::Concat => 0,
            // Integer adds are ~4× cheaper than FP32; account them as a
            // quarter-cost FP add for the Table 2 energy model.
            Reduction::QuantizedSum => u64::from(dim).div_ceil(4),
        }
    }

    /// FP32 multiplications per gathered vector of dimension `dim`.
    pub fn muls_per_vector(self, dim: u32) -> u64 {
        match self {
            Reduction::WeightedSum => u64::from(dim),
            Reduction::Average | Reduction::Sum | Reduction::Concat => 0,
            // One dequantization multiply per output element, amortized
            // over the pooled vectors — charge one per vector for safety.
            Reduction::QuantizedSum => 1,
        }
    }

    /// Bytes returned to the host per op for vectors of `dim` dims and
    /// `pooling` gathered vectors.
    pub fn result_bytes(self, dim: u32, pooling: usize) -> u64 {
        match self {
            Reduction::Concat => u64::from(dim) * 4 * pooling as u64,
            _ => u64::from(dim) * 4,
        }
    }

    /// Applies the reduction to one op's gathered vectors; returns the
    /// result in f32 (Concat returns the concatenation).
    pub fn apply(self, op: &EmbeddingOp, dim: u32) -> Vec<f32> {
        let d = dim as usize;
        match self {
            Reduction::Sum => {
                let mut out = vec![0.0f32; d];
                for &row in &op.indices {
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot += embedding_value(op.table, row, i as u32);
                    }
                }
                out
            }
            Reduction::WeightedSum => {
                let mut out = vec![0.0f32; d];
                for (&row, &w) in op.indices.iter().zip(&op.weights) {
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot += w * embedding_value(op.table, row, i as u32);
                    }
                }
                out
            }
            Reduction::Average => {
                let mut out = Reduction::Sum.apply(op, dim);
                let n = op.indices.len().max(1) as f32;
                for v in &mut out {
                    *v /= n;
                }
                out
            }
            Reduction::Concat => {
                let mut out = Vec::with_capacity(d * op.indices.len());
                for &row in &op.indices {
                    for i in 0..dim {
                        out.push(embedding_value(op.table, row, i));
                    }
                }
                out
            }
            Reduction::QuantizedSum => {
                // Shared symmetric int8 quantization: scale = max|x| / 127.
                let mut max_abs = 0.0f32;
                for &row in &op.indices {
                    for i in 0..dim {
                        max_abs = max_abs.max(embedding_value(op.table, row, i).abs());
                    }
                }
                let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
                let mut acc = vec![0i32; d];
                for &row in &op.indices {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        let q = (embedding_value(op.table, row, i as u32) / scale)
                            .round()
                            .clamp(-127.0, 127.0) as i32;
                        *slot += q;
                    }
                }
                acc.into_iter().map(|q| q as f32 * scale).collect()
            }
        }
    }

    /// Worst-case absolute quantization error bound of [`Reduction::apply`]
    /// for `QuantizedSum` relative to the exact `Sum`: `pooling × scale/2`.
    pub fn quantization_error_bound(op: &EmbeddingOp, dim: u32) -> f32 {
        let mut max_abs = 0.0f32;
        for &row in &op.indices {
            for i in 0..dim {
                max_abs = max_abs.max(embedding_value(op.table, row, i).abs());
            }
        }
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        op.indices.len() as f32 * scale * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> EmbeddingOp {
        EmbeddingOp {
            table: 1,
            indices: vec![3, 99, 42, 7],
            weights: vec![1.0, 0.5, 2.0, 1.5],
        }
    }

    #[test]
    fn sum_is_unweighted() {
        let o = op();
        let sum = Reduction::Sum.apply(&o, 8);
        let mut expect = vec![0.0f32; 8];
        for &row in &o.indices {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += embedding_value(o.table, row, i as u32);
            }
        }
        assert_eq!(sum, expect);
    }

    #[test]
    fn average_is_sum_over_n() {
        let o = op();
        let sum = Reduction::Sum.apply(&o, 4);
        let avg = Reduction::Average.apply(&o, 4);
        for (s, a) in sum.iter().zip(&avg) {
            assert!((s / 4.0 - a).abs() < 1e-7);
        }
    }

    #[test]
    fn weighted_matches_golden_model() {
        let o = op();
        let got = Reduction::WeightedSum.apply(&o, 16);
        let want = crate::model::reduce_op(&o, 16);
        assert_eq!(got, want);
    }

    #[test]
    fn concat_preserves_every_vector() {
        let o = op();
        let cat = Reduction::Concat.apply(&o, 4);
        assert_eq!(cat.len(), 4 * 4);
        assert_eq!(cat[0], embedding_value(o.table, o.indices[0], 0));
        assert_eq!(cat[4], embedding_value(o.table, o.indices[1], 0));
    }

    #[test]
    fn quantized_close_to_exact_sum() {
        let o = op();
        let exact = Reduction::Sum.apply(&o, 32);
        let quant = Reduction::QuantizedSum.apply(&o, 32);
        let bound = Reduction::quantization_error_bound(&o, 32);
        for (e, q) in exact.iter().zip(&quant) {
            assert!(
                (e - q).abs() <= bound,
                "quantized {q} vs exact {e} (bound {bound})"
            );
        }
    }

    #[test]
    fn arithmetic_costs() {
        assert_eq!(Reduction::WeightedSum.adds_per_vector(64), 64);
        assert_eq!(Reduction::WeightedSum.muls_per_vector(64), 64);
        assert_eq!(Reduction::Sum.muls_per_vector(64), 0);
        assert_eq!(Reduction::Concat.adds_per_vector(64), 0);
        assert_eq!(Reduction::QuantizedSum.adds_per_vector(64), 16);
    }

    #[test]
    fn result_sizes() {
        assert_eq!(Reduction::WeightedSum.result_bytes(64, 80), 256);
        assert_eq!(Reduction::Concat.result_bytes(64, 80), 256 * 80);
    }

    #[test]
    fn empty_op_is_safe() {
        let o = EmbeddingOp {
            table: 0,
            indices: vec![],
            weights: vec![],
        };
        assert_eq!(Reduction::Average.apply(&o, 4), vec![0.0; 4]);
        assert_eq!(Reduction::QuantizedSum.apply(&o, 4), vec![0.0; 4]);
    }
}
