//! Trace import/export in a plain-text line format.
//!
//! Lets users bring real production traces (or archive generated ones for
//! exact cross-machine reproduction) without a serialization dependency.
//! The format is line-oriented and self-describing:
//!
//! ```text
//! # recross-trace v1
//! table <rows> <dim> <dtype_bytes>        (once per table, in order)
//! batch                                   (starts a new batch)
//! op <table> <idx:weight> <idx:weight> …  (one embedding op)
//! ```
//!
//! Weights use `{:e}` float formatting and round-trip exactly through
//! `f32::to_bits` precision.

use std::io::{BufRead, Write};

use crate::table::EmbeddingTableSpec;
use crate::trace::{Batch, EmbeddingOp, Trace};

/// Magic header of the format.
pub const HEADER: &str = "# recross-trace v1";

/// Errors parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// Missing or wrong header line.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    BadLine(usize),
    /// An op references an undeclared table, with the line number.
    UnknownTable(usize),
    /// A row index exceeds its table's rows, with the line number.
    RowOutOfRange(usize),
    /// Underlying I/O failure (message).
    Io(String),
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::BadHeader => write!(f, "missing `{HEADER}` header"),
            ParseTraceError::BadLine(n) => write!(f, "malformed line {n}"),
            ParseTraceError::UnknownTable(n) => {
                write!(f, "line {n}: op references an undeclared table")
            }
            ParseTraceError::RowOutOfRange(n) => {
                write!(f, "line {n}: row index out of table range")
            }
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Writes `trace` to `w` in the v1 text format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in &trace.tables {
        writeln!(w, "table {} {} {}", t.rows, t.dim, t.dtype_bytes)?;
    }
    for batch in &trace.batches {
        writeln!(w, "batch")?;
        for op in &batch.ops {
            write!(w, "op {}", op.table)?;
            for (&idx, &weight) in op.indices.iter().zip(&op.weights) {
                // Hex bits keep the f32 exact.
                write!(w, " {}:{:08x}", idx, weight.to_bits())?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Reads a trace from `r`.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut lines = r.lines().enumerate();
    let (_, first) = lines.next().ok_or(ParseTraceError::BadHeader)?;
    let first = first.map_err(|e| ParseTraceError::Io(e.to_string()))?;
    if first.trim() != HEADER {
        return Err(ParseTraceError::BadHeader);
    }
    let mut tables: Vec<EmbeddingTableSpec> = Vec::new();
    let mut batches: Vec<Batch> = Vec::new();
    for (i, line) in lines {
        let n = i + 1;
        let line = line.map_err(|e| ParseTraceError::Io(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("table") => {
                let rows: u64 = parse(parts.next(), n)?;
                let dim: u32 = parse(parts.next(), n)?;
                let dtype: u32 = parse(parts.next(), n)?;
                if rows == 0 || dim == 0 || dtype == 0 {
                    return Err(ParseTraceError::BadLine(n));
                }
                tables.push(EmbeddingTableSpec {
                    rows,
                    dim,
                    dtype_bytes: dtype,
                });
            }
            Some("batch") => batches.push(Batch::default()),
            Some("op") => {
                let table: usize = parse(parts.next(), n)?;
                if table >= tables.len() {
                    return Err(ParseTraceError::UnknownTable(n));
                }
                let mut indices = Vec::new();
                let mut weights = Vec::new();
                for tok in parts {
                    let (idx, bits) = tok.split_once(':').ok_or(ParseTraceError::BadLine(n))?;
                    let idx: u64 = idx.parse().map_err(|_| ParseTraceError::BadLine(n))?;
                    if idx >= tables[table].rows {
                        return Err(ParseTraceError::RowOutOfRange(n));
                    }
                    let bits =
                        u32::from_str_radix(bits, 16).map_err(|_| ParseTraceError::BadLine(n))?;
                    indices.push(idx);
                    weights.push(f32::from_bits(bits));
                }
                if batches.is_empty() {
                    batches.push(Batch::default());
                }
                batches
                    .last_mut()
                    .expect("just ensured non-empty")
                    .ops
                    .push(EmbeddingOp {
                        table,
                        indices,
                        weights,
                    });
            }
            _ => return Err(ParseTraceError::BadLine(n)),
        }
    }
    Ok(Trace { tables, batches })
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, line: usize) -> Result<T, ParseTraceError> {
    tok.ok_or(ParseTraceError::BadLine(line))?
        .parse()
        .map_err(|_| ParseTraceError::BadLine(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;

    #[test]
    fn roundtrip_exact() {
        let trace = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(3)
            .pooling(5)
            .batches(2)
            .generate(9);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.tables, trace.tables);
        assert_eq!(back.batches.len(), trace.batches.len());
        for (a, b) in trace.iter_ops().zip(back.iter_ops()) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.indices, b.indices);
            // Bit-exact weights.
            for (x, y) in a.weights.iter().zip(&b.weights) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            read_trace("table 10 4 4\n".as_bytes()).unwrap_err(),
            ParseTraceError::BadHeader
        );
    }

    #[test]
    fn rejects_unknown_table() {
        let text = format!("{HEADER}\ntable 10 4 4\nbatch\nop 3 1:3f800000\n");
        assert_eq!(
            read_trace(text.as_bytes()).unwrap_err(),
            ParseTraceError::UnknownTable(4)
        );
    }

    #[test]
    fn rejects_row_out_of_range() {
        let text = format!("{HEADER}\ntable 10 4 4\nbatch\nop 0 10:3f800000\n");
        assert_eq!(
            read_trace(text.as_bytes()).unwrap_err(),
            ParseTraceError::RowOutOfRange(4)
        );
    }

    #[test]
    fn rejects_malformed_pair() {
        let text = format!("{HEADER}\ntable 10 4 4\nbatch\nop 0 1=zz\n");
        assert!(matches!(
            read_trace(text.as_bytes()).unwrap_err(),
            ParseTraceError::BadLine(4)
        ));
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text =
            format!("{HEADER}\n# a comment\n\ntable 10 4 4\nbatch\nop 0 1:3f800000 2:40000000\n");
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.ops(), 1);
        let op = t.iter_ops().next().unwrap();
        assert_eq!(op.weights, vec![1.0, 2.0]);
    }

    #[test]
    fn op_before_batch_opens_one() {
        let text = format!("{HEADER}\ntable 10 4 4\nop 0 1:3f800000\n");
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.batches.len(), 1);
    }
}
