//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction must be bit-reproducible from a seed on every
//! platform, so instead of depending on an external RNG crate (whose stream
//! may change across versions) we implement the well-known
//! [xoshiro256++](https://prng.di.unimi.it/) generator seeded through
//! SplitMix64, exactly as recommended by its authors.
//!
//! # Examples
//!
//! ```
//! use recross_workload::rng::Xoshiro256pp;
//!
//! let mut a = Xoshiro256pp::seed_from_u64(42);
//! let mut b = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 step used to expand a single `u64` seed into xoshiro state.
///
/// This is a standalone generator in its own right; we expose it because the
/// trace generator uses it to derive independent per-table seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given starting state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the SplitMix64 sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator: fast, high quality, 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a single `u64` via SplitMix64, per the
    /// xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Returns the next 64 uniformly distributed random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached for the few values that would bias
            // the distribution.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// Values of `p` outside `[0, 1]` are clamped.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; used to give each embedding
    /// table its own stream so traces are stable under reordering.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 computed from the canonical C
        // implementation.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        // SplitMix64(0) first output is a fixed well-known constant.
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.next_bounded(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256pp::seed_from_u64(0).next_bounded(0);
    }

    #[test]
    fn bounded_mean_is_unbiased() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 200_000u64;
        let bound = 1000u64;
        let sum: u64 = (0..n).map(|_| r.next_bounded(bound)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (bound - 1) as f64 / 2.0;
        assert!((mean - expect).abs() < 2.0, "mean {mean} vs {expect}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256pp::seed_from_u64(3);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
