//! # recross-workload
//!
//! DLRM embedding-layer workload substrate for the ReCross reproduction
//! (Liu et al., *Accelerating Personalized Recommendation with Cross-level
//! Near-Memory Processing*, ISCA 2023).
//!
//! The paper evaluates on the Criteo Ad datasets; those are consumed purely
//! as *skewed index traces*, so this crate provides a synthetic equivalent:
//!
//! * [`table`] — the 26-table Criteo-Kaggle-like embedding layer with
//!   realistic row cardinalities;
//! * [`distribution`] — per-table long-tail (Zipfian) popularity with the
//!   cumulative-access curves of the paper's Figure 3;
//! * [`trace`] — deterministic batch/pooling trace generation, with hot rows
//!   scattered pseudo-randomly through each table;
//! * [`model`] — the golden functional gather-reduce every accelerator is
//!   checked against (plus a small DLRM MLP wrapper);
//! * [`stats`] — load-imbalance metrics (Figures 4/13);
//! * [`rng`]/[`zipf`] — bit-reproducible randomness built from scratch.
//!
//! # Examples
//!
//! ```
//! use recross_workload::trace::TraceGenerator;
//! use recross_workload::model::reduce_trace;
//!
//! let trace = TraceGenerator::criteo_scaled(64, 1000)
//!     .batch_size(4)
//!     .pooling(20)
//!     .generate(42);
//! let golden = reduce_trace(&trace);
//! assert_eq!(golden.len(), trace.ops());
//! ```

pub mod distribution;
pub mod io;
pub mod model;
pub mod reduction;
pub mod rng;
pub mod stats;
pub mod table;
pub mod trace;
pub mod zipf;

pub use distribution::AccessDistribution;
pub use reduction::Reduction;
pub use table::EmbeddingTableSpec;
pub use trace::{Batch, EmbeddingOp, Trace, TraceGenerator};
