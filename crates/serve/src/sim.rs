//! The event-driven serving simulator.
//!
//! One server per memory channel (channels are independent in DDR — see
//! `recross_nmp::multichannel`): each channel owns a batching queue and a
//! prepared accelerator [`ServiceSession`], requests are sharded across
//! channels by the table partition ([`ChannelPlan`]), and a request
//! completes when its last channel part does. The loop is a textbook
//! discrete-event simulation — two event sources (next arrival, next batch
//! trigger), always advance the earlier — and everything is integer
//! cycles, so runs are exactly reproducible.
//!
//! Sessions are opened once per channel ([`open_sessions`]) and can be
//! reused across many [`simulate_sessions`] runs over the same trace and
//! plan — that is what makes a QPS sweep or an SLO search affordable: the
//! session keeps its resolved layout/placement state *and* its memoized
//! service-time cache across runs, so a batch composition priced at one
//! offered rate is free at every other rate.

use recross_dram::Cycle;
use recross_nmp::accel::EmbeddingAccelerator;
use recross_nmp::multichannel::ChannelPlan;
use recross_nmp::session::{ServiceSession, SessionStats};
use recross_workload::{Batch, Trace};

use crate::batch::{Batcher, BatcherConfig, QueuedJob};
use crate::report::{ChannelReport, ServeReport};

/// What happened on one channel.
struct ChannelOutcome {
    /// Per-request completion cycle; `None` means shed (or never admitted).
    completions: Vec<Option<Cycle>>,
    /// Cycles the server spent servicing batches.
    busy: Cycle,
    /// Batches dispatched.
    dispatches: u64,
    /// Requests shed at this channel's queue.
    shed: u64,
    /// Queue depth sampled after each arrival (aligned across channels).
    depth_after_arrival: Vec<usize>,
    /// Service-time memo cache hits/misses charged during this run.
    cache: SessionStats,
}

/// Simulates one channel: `sub` is the per-channel trace with **one batch
/// per request** (possibly empty when the request touches no table on this
/// channel — those complete at their arrival instant, costing nothing).
fn simulate_channel(
    sub: &Trace,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    session: &mut dyn ServiceSession,
) -> ChannelOutcome {
    let n = arrivals.len();
    assert_eq!(sub.batches.len(), n, "one request per batch");
    let stats_before = session.stats();
    let mut batcher = Batcher::new(cfg);
    let mut completions: Vec<Option<Cycle>> = vec![None; n];
    let mut depth_after_arrival = Vec::with_capacity(n);
    let mut busy: Cycle = 0;
    let mut dispatches = 0u64;
    let mut server_free: Cycle = 0;
    let mut next = 0usize; // next arrival index

    loop {
        let trigger = batcher.next_trigger(server_free);
        // Admit the next arrival if it happens before (or at) the next
        // dispatch; otherwise dispatch. Ties favor admission so a request
        // arriving exactly at the trigger can still join the batch.
        let admit = match (trigger, arrivals.get(next)) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(td), Some(&ta)) => ta <= td,
        };
        if admit {
            let ops = &sub.batches[next].ops;
            if ops.is_empty() {
                // Nothing to do on this channel: done on arrival.
                completions[next] = Some(arrivals[next]);
            } else {
                batcher.offer(QueuedJob {
                    id: next,
                    arrival: arrivals[next],
                    cost: sub.batches[next].lookups() as u64,
                });
            }
            depth_after_arrival.push(batcher.len());
            next += 1;
        } else {
            let td = trigger.expect("dispatch arm requires a trigger");
            let jobs = batcher.take_batch();
            debug_assert!(!jobs.is_empty());
            let merged = Batch {
                ops: jobs
                    .iter()
                    .flat_map(|j| sub.batches[j.id].ops.iter().cloned())
                    .collect(),
            };
            let service = session.service(&merged);
            let done = td + service;
            for j in &jobs {
                completions[j.id] = Some(done);
            }
            busy += service;
            dispatches += 1;
            server_free = done;
        }
    }

    ChannelOutcome {
        completions,
        busy,
        dispatches,
        shed: batcher.shed(),
        depth_after_arrival,
        cache: session.stats().since(&stats_before),
    }
}

/// Opens one [`ServiceSession`] per channel of `plan` over `trace`: `make`
/// builds the accelerator for a channel from its id and sub-trace (same
/// contract as [`recross_nmp::multichannel::run_multichannel`]), and each
/// accelerator's session is prepared for that channel's table universe.
///
/// The sessions can then serve any number of [`simulate_sessions`] runs
/// over the same `(trace, plan)` pair.
pub fn open_sessions<A, F>(
    trace: &Trace,
    plan: &ChannelPlan,
    mut make: F,
) -> Vec<Box<dyn ServiceSession>>
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    plan.split(trace)
        .into_iter()
        .enumerate()
        .map(|(ch, (sub, _orig))| make(ch, &sub).open_session(&sub.tables))
        .collect()
}

/// Runs the full serving simulation against prepared per-channel sessions:
/// shards `trace` (one batch = one request) across `plan.channels()`
/// servers, feeds each the same arrival sequence, and merges per-channel
/// outcomes into a [`ServeReport`].
///
/// `sessions` must have been opened via [`open_sessions`] (or equivalent)
/// for the **same** `trace` and `plan`; it is borrowed mutably so the same
/// sessions — including their memoized service times — carry over to the
/// next run. The report's cache counters cover only this run.
///
/// A request is **shed** if any channel's queue dropped its part;
/// otherwise its latency is `max(channel completion) − arrival`.
///
/// # Panics
///
/// Panics if `arrivals` is not nondecreasing, its length differs from the
/// number of request batches in `trace`, or `sessions` does not hold one
/// session per channel.
pub fn simulate_sessions(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
) -> ServeReport {
    assert_eq!(
        arrivals.len(),
        trace.batches.len(),
        "one arrival per request batch"
    );
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    assert_eq!(
        sessions.len(),
        plan.channels(),
        "one session per channel (see open_sessions)"
    );

    let mut outcomes = Vec::with_capacity(plan.channels());
    for (ch, (sub, _orig)) in plan.split(trace).into_iter().enumerate() {
        outcomes.push(simulate_channel(
            &sub,
            arrivals,
            cfg,
            sessions[ch].as_mut(),
        ));
    }
    ServeReport::from_outcomes(name, arrivals, cycles_per_sec, &outcomes)
}

/// One-shot convenience: opens fresh sessions via [`open_sessions`] and
/// runs [`simulate_sessions`] once. Prefer holding the sessions yourself
/// when running several loads over the same trace (sweeps, SLO searches) —
/// reuse is where the per-session preparation and the memoized service
/// times pay off.
///
/// # Panics
///
/// Panics if `arrivals` is not nondecreasing or its length differs from
/// the number of request batches in `trace`.
pub fn simulate<A, F>(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    make: F,
) -> ServeReport
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    let mut sessions = open_sessions(trace, plan, make);
    simulate_sessions(name, trace, plan, arrivals, cfg, cycles_per_sec, &mut sessions)
}

impl ServeReport {
    fn from_outcomes(
        name: &str,
        arrivals: &[Cycle],
        cycles_per_sec: f64,
        outcomes: &[ChannelOutcome],
    ) -> ServeReport {
        let n = arrivals.len();
        let mut hist = crate::hist::LatencyHistogram::new();
        let mut shed_requests = 0u64;
        let mut makespan: Cycle = arrivals.last().copied().unwrap_or(0);
        for (i, &arrival) in arrivals.iter().enumerate() {
            let mut done: Option<Cycle> = Some(arrival);
            for o in outcomes {
                match (done, o.completions[i]) {
                    (Some(d), Some(c)) => done = Some(d.max(c)),
                    _ => done = None,
                }
            }
            match done {
                Some(d) => {
                    hist.record(d - arrival);
                    makespan = makespan.max(d);
                }
                None => shed_requests += 1,
            }
        }
        // Total queue depth across channels, sampled at each arrival.
        let depth_series: Vec<u64> = (0..n)
            .map(|i| {
                outcomes
                    .iter()
                    .map(|o| o.depth_after_arrival[i] as u64)
                    .sum()
            })
            .collect();
        let channels = outcomes
            .iter()
            .map(|o| ChannelReport {
                busy_cycles: o.busy,
                utilization: if makespan > 0 {
                    o.busy as f64 / makespan as f64
                } else {
                    0.0
                },
                dispatches: o.dispatches,
                shed: o.shed,
            })
            .collect();
        let mut service_cache = SessionStats::default();
        for o in outcomes {
            service_cache.hits += o.cache.hits;
            service_cache.misses += o.cache.misses;
        }
        let arrival_span_s = arrivals.last().copied().unwrap_or(0) as f64 / cycles_per_sec;
        ServeReport {
            name: name.to_string(),
            requests: n as u64,
            shed: shed_requests,
            makespan_cycles: makespan,
            cycles_per_sec,
            offered_qps: if arrival_span_s > 0.0 {
                n as f64 / arrival_span_s
            } else {
                0.0
            },
            latency: hist,
            depth_series,
            channels,
            service_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_dram::DramConfig;
    use recross_nmp::cpu::CpuBaseline;
    use recross_workload::TraceGenerator;

    fn serving_setup() -> (Trace, ChannelPlan, Vec<Cycle>, BatcherConfig, f64) {
        let dram = DramConfig::ddr5_4800();
        let trace = TraceGenerator::criteo_scaled(32, 200)
            .batch_size(1)
            .pooling(8)
            .batches(24)
            .generate(13)
;
        let plan = ChannelPlan::balance_by_load(&trace, 2);
        let arrivals = crate::arrival::ArrivalProcess::poisson(40_000.0).timestamps(
            trace.batches.len(),
            dram.cycles_per_sec(),
            13,
        );
        (trace, plan, arrivals, BatcherConfig::default(), dram.cycles_per_sec())
    }

    /// The memoized service-time cache is an exact cache: the same seed
    /// yields byte-identical reports with the cache enabled and disabled
    /// (the only divergence is the hit/miss accounting itself, which the
    /// comparison normalizes away after asserting it exactly).
    #[test]
    fn cache_on_and_off_reports_are_byte_identical() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        let mut cached = open_sessions(&trace, &plan, make);
        let mut uncached = open_sessions(&trace, &plan, make);
        for s in uncached.iter_mut() {
            s.set_cache_enabled(false);
        }

        // Two consecutive runs per variant: the second run is where the
        // cached sessions replay memoized service times.
        let run =
            |s: &mut Vec<Box<dyn ServiceSession>>| {
                simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, s)
            };
        let (a1, a2) = (run(&mut cached), run(&mut cached));
        let (b1, b2) = (run(&mut uncached), run(&mut uncached));

        // Exact accounting: every dispatch is a miss on the first cached
        // run, a hit on the identical replay; the uncached sessions only
        // ever miss.
        let dispatches: u64 = a1.channels.iter().map(|c| c.dispatches).sum();
        assert_eq!(a1.service_cache.hits, 0);
        assert_eq!(a1.service_cache.misses, dispatches);
        assert_eq!(a2.service_cache.hits, dispatches);
        assert_eq!(a2.service_cache.misses, 0);
        assert_eq!(b1.service_cache.hits, 0);
        assert_eq!(b1.service_cache.misses, dispatches);
        assert_eq!(b2.service_cache, b1.service_cache);
        assert!((a1.cache_hit_rate() - 0.0).abs() < 1e-12);
        assert!((a2.cache_hit_rate() - 1.0).abs() < 1e-12);

        // Byte-identical modulo the declared accounting fields.
        let mut a1n = a1.clone();
        let mut a2n = a2.clone();
        a1n.service_cache = b1.service_cache;
        a2n.service_cache = b2.service_cache;
        assert_eq!(a1n.to_json(), b1.to_json());
        assert_eq!(a2n.to_json(), b2.to_json());
    }

    /// The one-shot `simulate` wrapper and explicitly managed sessions
    /// agree: the wrapper is just open-then-run.
    #[test]
    fn simulate_wrapper_matches_explicit_sessions() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let wrapped = simulate("CPU", &trace, &plan, &arrivals, cfg, cps, |_, _| {
            CpuBaseline::new(dram.clone())
        });
        let mut sessions =
            open_sessions(&trace, &plan, |_, _| CpuBaseline::new(dram.clone()));
        let explicit =
            simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, &mut sessions);
        assert_eq!(wrapped.to_json(), explicit.to_json());
    }

    #[test]
    #[should_panic(expected = "one session per channel")]
    fn session_count_validated() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, &mut []);
    }
}
