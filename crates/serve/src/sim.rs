//! The event-driven serving simulator.
//!
//! One server per memory channel (channels are independent in DDR — see
//! `recross_nmp::multichannel`): each channel owns a batching queue and a
//! prepared accelerator [`ServiceSession`], requests are sharded across
//! channels by the table partition ([`ChannelPlan`]), and a request
//! completes when its last channel part does. The loop is a textbook
//! discrete-event simulation — two event sources (next arrival, next batch
//! trigger), always advance the earlier — and everything is integer
//! cycles, so runs are exactly reproducible.
//!
//! Sessions are opened once per channel ([`open_sessions`]) and can be
//! reused across many [`simulate_sessions`] runs over the same trace and
//! plan — that is what makes a QPS sweep or an SLO search affordable: the
//! session keeps its resolved layout/placement state *and* its memoized
//! service-time cache across runs, so a batch composition priced at one
//! offered rate is free at every other rate.
//!
//! The tenant-aware entry points ([`simulate_tenant_sessions`] /
//! [`simulate_tenants`]) run the same loop over a deadline-tagged
//! [`TenantRequest`] stream: jobs carry their tenant, priority, and
//! absolute deadline into the batcher (enabling
//! [`QueuePolicy::Edf`](crate::batch::QueuePolicy::Edf) and deadline
//! shedding), and the report gains a per-tenant section. The deadline-shed
//! service floor is learned online: it is the smallest per-request service
//! time any dispatch on that channel has observed so far (0 before the
//! first dispatch), so shedding is conservative — a request is only
//! dropped when even the cheapest service seen could not meet its
//! deadline.

use recross_dram::Cycle;
use recross_nmp::accel::EmbeddingAccelerator;
use recross_nmp::multichannel::ChannelPlan;
use recross_nmp::session::{ServiceSession, SessionStats};
use recross_workload::{Batch, Trace};

use crate::batch::{Batcher, BatcherConfig, QueuedJob};
use crate::obs::{RequestFate, ServeObs};
use crate::report::{ChannelReport, ServeReport, TenantReport};
use crate::tenant::{TenantMix, TenantRequest};

/// What happened on one channel.
struct ChannelOutcome {
    /// Per-request completion cycle; `None` means dropped at this channel
    /// (see `expired_flags` for which kind of drop).
    completions: Vec<Option<Cycle>>,
    /// Per-request flag: dropped by deadline shedding (as opposed to a
    /// full queue). Only meaningful where `completions` is `None`.
    expired_flags: Vec<bool>,
    /// Per-request dispatch cycle (`None` for dropped or empty-part
    /// requests).
    dispatched_at: Vec<Option<Cycle>>,
    /// Per-request drop cycle: arrival for queue drops, the dispatch
    /// trigger for deadline sheds. Only set where `completions` is `None`.
    dropped_at: Vec<Option<Cycle>>,
    /// Cycles the server spent servicing batches.
    busy: Cycle,
    /// Batches dispatched.
    dispatches: u64,
    /// Requests shed at this channel's queue (admission tail-drop).
    shed: u64,
    /// Requests shed at this channel by deadline shedding.
    expired: u64,
    /// Queue depth sampled after each arrival (aligned across channels).
    depth_after_arrival: Vec<usize>,
    /// `(cycle, depth)` after every queue transition — arrivals, deadline
    /// sheds, and batch dispatches. Feeds both the per-channel depth
    /// percentiles and the obs gauge (same samples, so they cannot
    /// disagree).
    depth_samples: Vec<(Cycle, usize)>,
    /// Service-time memo cache activity charged during this run.
    cache: SessionStats,
}

/// Simulates one channel: `sub` is the per-channel trace with **one batch
/// per request** (possibly empty when the request touches no table on this
/// channel — those complete at their arrival instant, costing nothing).
fn simulate_channel(
    sub: &Trace,
    requests: &[TenantRequest],
    cfg: BatcherConfig,
    session: &mut dyn ServiceSession,
    mut obs: Option<(&mut ServeObs, usize)>,
) -> ChannelOutcome {
    let n = requests.len();
    assert_eq!(sub.batches.len(), n, "one request per batch");
    let stats_before = session.stats();
    let mut batcher = Batcher::new(cfg);
    let mut completions: Vec<Option<Cycle>> = vec![None; n];
    let mut expired_flags = vec![false; n];
    let mut dispatched_at: Vec<Option<Cycle>> = vec![None; n];
    let mut dropped_at: Vec<Option<Cycle>> = vec![None; n];
    let mut depth_after_arrival = Vec::with_capacity(n);
    let mut depth_samples: Vec<(Cycle, usize)> = Vec::with_capacity(n);
    let mut busy: Cycle = 0;
    let mut dispatches = 0u64;
    let mut server_free: Cycle = 0;
    // Lower bound on per-request service time, learned from dispatches;
    // feeds the deadline-shed feasibility check.
    let mut service_floor: Cycle = 0;
    let mut next = 0usize; // next arrival index

    loop {
        let trigger = batcher.next_trigger(server_free);
        // Admit the next arrival if it happens before (or at) the next
        // dispatch; otherwise dispatch. Ties favor admission so a request
        // arriving exactly at the trigger can still join the batch.
        let admit = match (trigger, requests.get(next)) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(td), Some(r)) => r.arrival <= td,
        };
        if admit {
            let req = &requests[next];
            let ops = &sub.batches[next].ops;
            if ops.is_empty() {
                // Nothing to do on this channel: done on arrival.
                completions[next] = Some(req.arrival);
            } else if !batcher.offer(QueuedJob {
                id: next,
                arrival: req.arrival,
                cost: sub.batches[next].lookups() as u64,
                deadline: req.deadline,
                priority: req.priority,
                tenant: req.tenant,
            }) {
                // Tail-dropped by the full queue, at arrival time.
                dropped_at[next] = Some(req.arrival);
            }
            depth_after_arrival.push(batcher.len());
            depth_samples.push((req.arrival, batcher.len()));
            if let Some((o, ch)) = obs.as_mut() {
                o.depth_sample(*ch, req.arrival, batcher.len());
            }
            next += 1;
        } else {
            let td = trigger.expect("dispatch arm requires a trigger");
            let expired_jobs = batcher.shed_expired(td, service_floor);
            let had_expired = !expired_jobs.is_empty();
            for j in expired_jobs {
                expired_flags[j.id] = true;
                dropped_at[j.id] = Some(td);
            }
            if had_expired {
                depth_samples.push((td, batcher.len()));
                if let Some((o, ch)) = obs.as_mut() {
                    o.depth_sample(*ch, td, batcher.len());
                }
            }
            let jobs = batcher.take_batch();
            if jobs.is_empty() {
                // Shedding emptied the queue; re-evaluate events.
                continue;
            }
            depth_samples.push((td, batcher.len()));
            if let Some((o, ch)) = obs.as_mut() {
                o.depth_sample(*ch, td, batcher.len());
            }
            let merged = Batch {
                ops: jobs
                    .iter()
                    .flat_map(|j| sub.batches[j.id].ops.iter().cloned())
                    .collect(),
            };
            // The traced path prices through the same memo (asserted
            // identical in debug builds), so traced and untraced runs
            // produce byte-identical reports.
            let stats_at_dispatch = session.stats();
            let (service, commands) = match obs.as_mut() {
                Some((o, _)) if o.dram_trace() => {
                    let (service, commands) = session.service_traced(&merged);
                    (service, Some(commands))
                }
                _ => (session.service(&merged), None),
            };
            let done = td + service;
            for j in &jobs {
                completions[j.id] = Some(done);
                dispatched_at[j.id] = Some(td);
            }
            if let Some((o, ch)) = obs.as_mut() {
                let hit = session.stats().since(&stats_at_dispatch).hits > 0;
                o.service_span(*ch, dispatches, jobs.len(), td, done, hit);
                if let Some(commands) = commands {
                    o.batch_commands(*ch, td, &commands);
                }
            }
            let per_job = service / jobs.len() as Cycle;
            service_floor = if service_floor == 0 {
                per_job
            } else {
                service_floor.min(per_job)
            };
            busy += service;
            dispatches += 1;
            server_free = done;
        }
    }

    ChannelOutcome {
        completions,
        expired_flags,
        dispatched_at,
        dropped_at,
        busy,
        dispatches,
        shed: batcher.shed(),
        expired: batcher.expired(),
        depth_after_arrival,
        depth_samples,
        cache: session.stats().since(&stats_before),
    }
}

/// Replays the per-request outcomes into `obs` as lifecycle spans: one
/// span per request on its tenant group's lanes, from arrival to the
/// request's last resolution event, labeled with its fate and annotated
/// with per-channel dispatch/drop instants.
fn record_lifecycles(
    obs: &mut ServeObs,
    requests: &[TenantRequest],
    mix: Option<&TenantMix>,
    outcomes: &[ChannelOutcome],
) {
    for (i, req) in requests.iter().enumerate() {
        // Same merge rule as `ServeReport::from_outcomes`: done = max
        // completion; a queue drop on any channel outranks a deadline
        // drop on another.
        let mut done: Option<Cycle> = Some(req.arrival);
        let mut queue_shed = false;
        let mut end = req.arrival;
        let mut instants: Vec<(Cycle, String)> = Vec::new();
        for (ch, o) in outcomes.iter().enumerate() {
            match o.completions[i] {
                Some(c) => {
                    done = done.map(|d| d.max(c));
                    end = end.max(c);
                    if let Some(td) = o.dispatched_at[i] {
                        instants.push((td, format!("dispatch ch{ch}")));
                    }
                }
                None => {
                    done = None;
                    let t = o.dropped_at[i].unwrap_or(req.arrival);
                    end = end.max(t);
                    if o.expired_flags[i] {
                        instants.push((t, format!("deadline-shed ch{ch}")));
                    } else {
                        queue_shed = true;
                        instants.push((t, format!("queue-shed ch{ch}")));
                    }
                }
            }
        }
        let fate = match done {
            Some(d) if d <= req.deadline => RequestFate::Completed,
            Some(_) => RequestFate::Late,
            None if queue_shed => RequestFate::QueueShed,
            None => RequestFate::DeadlineShed,
        };
        instants.sort_by_key(|&(t, _)| t);
        let group = if mix.is_some() { req.tenant } else { 0 };
        obs.request_span(
            group,
            &format!("req#{i} {}", fate.label()),
            req.arrival,
            end,
            &instants,
        );
        obs.tally(fate);
    }
}

/// Opens one [`ServiceSession`] per channel of `plan` over `trace`: `make`
/// builds the accelerator for a channel from its id and sub-trace (same
/// contract as [`recross_nmp::multichannel::run_multichannel`]), and each
/// accelerator's session is prepared for that channel's table universe.
///
/// The sessions can then serve any number of [`simulate_sessions`] runs
/// over the same `(trace, plan)` pair.
pub fn open_sessions<A, F>(
    trace: &Trace,
    plan: &ChannelPlan,
    mut make: F,
) -> Vec<Box<dyn ServiceSession>>
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    plan.split(trace)
        .into_iter()
        .enumerate()
        .map(|(ch, (sub, _orig))| make(ch, &sub).open_session(&sub.tables))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_simulation(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    requests: &[TenantRequest],
    mix: Option<&TenantMix>,
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
    mut obs: Option<&mut ServeObs>,
) -> ServeReport {
    assert_eq!(
        requests.len(),
        trace.batches.len(),
        "one arrival per request batch"
    );
    assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "arrivals must be nondecreasing"
    );
    if let Some(mix) = mix {
        assert!(
            requests.iter().all(|r| r.tenant < mix.len()),
            "tenant indices must address the mix"
        );
    }
    assert_eq!(
        sessions.len(),
        plan.channels(),
        "one session per channel (see open_sessions)"
    );

    if let Some(o) = obs.as_deref_mut() {
        let groups: Vec<String> = match mix {
            Some(m) => m.classes().iter().map(|c| c.name.clone()).collect(),
            None => vec!["requests".to_string()],
        };
        o.begin(plan.channels(), &groups);
    }
    let mut outcomes = Vec::with_capacity(plan.channels());
    for (ch, (sub, _orig)) in plan.split(trace).into_iter().enumerate() {
        outcomes.push(simulate_channel(
            &sub,
            requests,
            cfg,
            sessions[ch].as_mut(),
            obs.as_deref_mut().map(|o| (o, ch)),
        ));
    }
    if let Some(o) = obs {
        record_lifecycles(o, requests, mix, &outcomes);
        debug_assert_eq!(o.recorder().validate(), Ok(()));
    }
    ServeReport::from_outcomes(name, requests, mix, cycles_per_sec, &outcomes)
}

/// Runs the full serving simulation against prepared per-channel sessions:
/// shards `trace` (one batch = one request) across `plan.channels()`
/// servers, feeds each the same arrival sequence, and merges per-channel
/// outcomes into a [`ServeReport`].
///
/// `sessions` must have been opened via [`open_sessions`] (or equivalent)
/// for the **same** `trace` and `plan`; it is borrowed mutably so the same
/// sessions — including their memoized service times — carry over to the
/// next run. The report's cache counters cover only this run.
///
/// A request is **shed** if any channel's queue dropped its part;
/// otherwise its latency is `max(channel completion) − arrival`.
///
/// Requests carry no deadlines here (the single-tenant surface); use
/// [`simulate_tenant_sessions`] for deadline-tagged multi-tenant streams.
///
/// # Panics
///
/// Panics if `arrivals` is not nondecreasing, its length differs from the
/// number of request batches in `trace`, or `sessions` does not hold one
/// session per channel.
pub fn simulate_sessions(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
) -> ServeReport {
    let requests: Vec<TenantRequest> = arrivals
        .iter()
        .map(|&arrival| TenantRequest {
            arrival,
            tenant: 0,
            deadline: Cycle::MAX,
            priority: 0,
        })
        .collect();
    run_simulation(
        name,
        trace,
        plan,
        &requests,
        None,
        cfg,
        cycles_per_sec,
        sessions,
        None,
    )
}

/// [`simulate_sessions`] with cross-layer tracing: identical simulation
/// and report (byte-for-byte — tracing never perturbs pricing), but every
/// event is also recorded into `obs` — request lifecycle spans, server
/// batch spans, queue-depth gauges, and (unless disabled via
/// [`ServeObs::set_dram_trace`]) per-dispatch DRAM command tracks.
///
/// `obs` must be freshly created ([`ServeObs::new`]); after the call,
/// export the timeline with [`ServeObs::write_chrome_trace`] and the
/// attribution summary with [`ServeObs::obs_report`].
///
/// # Panics
///
/// Same contract as [`simulate_sessions`], plus panics if `obs` already
/// observed a simulation.
#[allow(clippy::too_many_arguments)]
pub fn simulate_sessions_obs(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
    obs: &mut ServeObs,
) -> ServeReport {
    let requests: Vec<TenantRequest> = arrivals
        .iter()
        .map(|&arrival| TenantRequest {
            arrival,
            tenant: 0,
            deadline: Cycle::MAX,
            priority: 0,
        })
        .collect();
    run_simulation(
        name,
        trace,
        plan,
        &requests,
        None,
        cfg,
        cycles_per_sec,
        sessions,
        Some(obs),
    )
}

/// Runs the serving simulation over a deadline-tagged multi-tenant request
/// stream (see [`TenantMix::requests`]): identical event loop and sharding
/// as [`simulate_sessions`], but jobs carry tenant, priority, and absolute
/// deadline into each channel's batcher — so
/// [`QueuePolicy::Edf`](crate::batch::QueuePolicy::Edf),
/// [`BatcherConfig::shed_expired`], and
/// [`BatcherConfig::adaptive_linger`] all take effect — and the returned
/// report carries one [`TenantReport`] per class of `mix`
/// (`ServeReport::tenants`), in class order.
///
/// Per tenant, the counters partition exactly:
/// `requests = completed + missed + queue_shed + deadline_shed`.
///
/// # Panics
///
/// Panics if `requests` is not sorted by arrival, its length differs from
/// the number of request batches in `trace`, a request's tenant index is
/// out of range for `mix`, or `sessions` does not hold one session per
/// channel.
#[allow(clippy::too_many_arguments)]
pub fn simulate_tenant_sessions(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    requests: &[TenantRequest],
    mix: &TenantMix,
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
) -> ServeReport {
    run_simulation(
        name,
        trace,
        plan,
        requests,
        Some(mix),
        cfg,
        cycles_per_sec,
        sessions,
        None,
    )
}

/// [`simulate_tenant_sessions`] with cross-layer tracing — the tenant
/// counterpart of [`simulate_sessions_obs`]: one lane group per tenant
/// class, request lifecycle spans labeled completed / late / queue-shed /
/// deadline-shed, and the same channel-level and DRAM-level tracks.
///
/// # Panics
///
/// Same contract as [`simulate_tenant_sessions`], plus panics if `obs`
/// already observed a simulation.
#[allow(clippy::too_many_arguments)]
pub fn simulate_tenant_sessions_obs(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    requests: &[TenantRequest],
    mix: &TenantMix,
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
    obs: &mut ServeObs,
) -> ServeReport {
    run_simulation(
        name,
        trace,
        plan,
        requests,
        Some(mix),
        cfg,
        cycles_per_sec,
        sessions,
        Some(obs),
    )
}

/// One-shot convenience: opens fresh sessions via [`open_sessions`] and
/// runs [`simulate_sessions`] once. Prefer holding the sessions yourself
/// when running several loads over the same trace (sweeps, SLO searches) —
/// reuse is where the per-session preparation and the memoized service
/// times pay off.
///
/// # Panics
///
/// Panics if `arrivals` is not nondecreasing or its length differs from
/// the number of request batches in `trace`.
pub fn simulate<A, F>(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    make: F,
) -> ServeReport
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    let mut sessions = open_sessions(trace, plan, make);
    simulate_sessions(name, trace, plan, arrivals, cfg, cycles_per_sec, &mut sessions)
}

/// One-shot convenience for the tenant-aware path: opens fresh sessions
/// and runs [`simulate_tenant_sessions`] once.
///
/// # Panics
///
/// Same contract as [`simulate_tenant_sessions`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_tenants<A, F>(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    requests: &[TenantRequest],
    mix: &TenantMix,
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    make: F,
) -> ServeReport
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    let mut sessions = open_sessions(trace, plan, make);
    simulate_tenant_sessions(
        name,
        trace,
        plan,
        requests,
        mix,
        cfg,
        cycles_per_sec,
        &mut sessions,
    )
}

/// Nearest-rank p50/p99/max over one channel's queue-depth transition
/// samples (all zero when no transitions were sampled).
fn depth_percentiles(samples: &[(Cycle, usize)]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut depths: Vec<u64> = samples.iter().map(|&(_, d)| d as u64).collect();
    depths.sort_unstable();
    let pick = |q: f64| depths[((q * depths.len() as f64).ceil() as usize).clamp(1, depths.len()) - 1];
    (pick(0.5), pick(0.99), *depths.last().expect("nonempty"))
}

impl ServeReport {
    fn from_outcomes(
        name: &str,
        requests: &[TenantRequest],
        mix: Option<&TenantMix>,
        cycles_per_sec: f64,
        outcomes: &[ChannelOutcome],
    ) -> ServeReport {
        let n = requests.len();
        let mut hist = crate::hist::LatencyHistogram::new();
        let mut tenants: Vec<TenantReport> = mix
            .map(|m| {
                m.classes().iter().map(TenantReport::new).collect()
            })
            .unwrap_or_default();
        let mut shed_requests = 0u64;
        let mut makespan: Cycle = requests.last().map(|r| r.arrival).unwrap_or(0);
        for (i, req) in requests.iter().enumerate() {
            // Merge the channel parts: done = max completion; a queue drop
            // on any channel outranks a deadline drop on another.
            let mut done: Option<Cycle> = Some(req.arrival);
            let mut queue_shed = false;
            let mut deadline_shed = false;
            for o in outcomes {
                match o.completions[i] {
                    Some(c) => done = done.map(|d| d.max(c)),
                    None => {
                        done = None;
                        if o.expired_flags[i] {
                            deadline_shed = true;
                        } else {
                            queue_shed = true;
                        }
                    }
                }
            }
            let tenant = tenants.get_mut(req.tenant);
            match done {
                Some(d) => {
                    let latency = d - req.arrival;
                    hist.record(latency);
                    makespan = makespan.max(d);
                    if let Some(t) = tenant {
                        t.requests += 1;
                        t.latency.record(latency);
                        if d <= req.deadline {
                            t.completed += 1;
                        } else {
                            t.missed += 1;
                        }
                    }
                }
                None => {
                    shed_requests += 1;
                    if let Some(t) = tenant {
                        t.requests += 1;
                        if queue_shed {
                            t.queue_shed += 1;
                        } else {
                            debug_assert!(deadline_shed);
                            t.deadline_shed += 1;
                        }
                    }
                }
            }
        }
        // Total queue depth across channels, sampled at each arrival.
        let depth_series: Vec<u64> = (0..n)
            .map(|i| {
                outcomes
                    .iter()
                    .map(|o| o.depth_after_arrival[i] as u64)
                    .sum()
            })
            .collect();
        let channels = outcomes
            .iter()
            .map(|o| {
                let (depth_p50, depth_p99, depth_max) = depth_percentiles(&o.depth_samples);
                ChannelReport {
                    busy_cycles: o.busy,
                    utilization: if makespan > 0 {
                        o.busy as f64 / makespan as f64
                    } else {
                        0.0
                    },
                    dispatches: o.dispatches,
                    shed: o.shed,
                    expired: o.expired,
                    depth_p50,
                    depth_p99,
                    depth_max,
                }
            })
            .collect();
        let mut service_cache = SessionStats::default();
        for o in outcomes {
            service_cache.hits += o.cache.hits;
            service_cache.misses += o.cache.misses;
            service_cache.evictions += o.cache.evictions;
        }
        let arrival_span_s = requests.last().map(|r| r.arrival).unwrap_or(0) as f64 / cycles_per_sec;
        ServeReport {
            name: name.to_string(),
            requests: n as u64,
            shed: shed_requests,
            makespan_cycles: makespan,
            cycles_per_sec,
            offered_qps: if arrival_span_s > 0.0 {
                n as f64 / arrival_span_s
            } else {
                0.0
            },
            latency: hist,
            depth_series,
            channels,
            service_cache,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::QueuePolicy;
    use crate::tenant::{Priority, TenantClass, TenantProcess};
    use recross_dram::DramConfig;
    use recross_nmp::cpu::CpuBaseline;
    use recross_workload::TraceGenerator;

    fn serving_setup() -> (Trace, ChannelPlan, Vec<Cycle>, BatcherConfig, f64) {
        let dram = DramConfig::ddr5_4800();
        let trace = TraceGenerator::criteo_scaled(32, 200)
            .batch_size(1)
            .pooling(8)
            .batches(24)
            .generate(13)
;
        let plan = ChannelPlan::balance_by_load(&trace, 2);
        let arrivals = crate::arrival::ArrivalProcess::poisson(40_000.0).timestamps(
            trace.batches.len(),
            dram.cycles_per_sec(),
            13,
        );
        (trace, plan, arrivals, BatcherConfig::default(), dram.cycles_per_sec())
    }

    /// The memoized service-time cache is an exact cache: the same seed
    /// yields byte-identical reports with the cache enabled and disabled
    /// (the only divergence is the hit/miss accounting itself, which the
    /// comparison normalizes away after asserting it exactly).
    #[test]
    fn cache_on_and_off_reports_are_byte_identical() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        let mut cached = open_sessions(&trace, &plan, make);
        let mut uncached = open_sessions(&trace, &plan, make);
        for s in uncached.iter_mut() {
            s.set_cache_enabled(false);
        }

        // Two consecutive runs per variant: the second run is where the
        // cached sessions replay memoized service times.
        let run =
            |s: &mut Vec<Box<dyn ServiceSession>>| {
                simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, s)
            };
        let (a1, a2) = (run(&mut cached), run(&mut cached));
        let (b1, b2) = (run(&mut uncached), run(&mut uncached));

        // Exact accounting: every dispatch is a miss on the first cached
        // run, a hit on the identical replay; the uncached sessions only
        // ever miss.
        let dispatches: u64 = a1.channels.iter().map(|c| c.dispatches).sum();
        assert_eq!(a1.service_cache.hits, 0);
        assert_eq!(a1.service_cache.misses, dispatches);
        assert_eq!(a2.service_cache.hits, dispatches);
        assert_eq!(a2.service_cache.misses, 0);
        assert_eq!(b1.service_cache.hits, 0);
        assert_eq!(b1.service_cache.misses, dispatches);
        assert_eq!(b2.service_cache, b1.service_cache);
        assert!((a1.cache_hit_rate() - 0.0).abs() < 1e-12);
        assert!((a2.cache_hit_rate() - 1.0).abs() < 1e-12);

        // Byte-identical modulo the declared accounting fields.
        let mut a1n = a1.clone();
        let mut a2n = a2.clone();
        a1n.service_cache = b1.service_cache;
        a2n.service_cache = b2.service_cache;
        assert_eq!(a1n.to_json(), b1.to_json());
        assert_eq!(a2n.to_json(), b2.to_json());
    }

    /// Bounding the memo to a single entry changes only the cache
    /// accounting, never the modeled timing: reports from capacity-1
    /// sessions are byte-identical to unbounded ones modulo the
    /// `service_cache` counters (satellite check for the LRU-bounded
    /// session cache).
    #[test]
    fn capacity_one_memo_reports_are_byte_identical() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        let mut unbounded = open_sessions(&trace, &plan, make);
        let mut tiny = open_sessions(&trace, &plan, make);
        for s in tiny.iter_mut() {
            s.set_cache_capacity(1);
        }

        let run =
            |s: &mut Vec<Box<dyn ServiceSession>>| {
                simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, s)
            };
        // Two runs each: the second run exercises replay (hits for the
        // unbounded memo, evictions for the capacity-1 one).
        let (a1, a2) = (run(&mut unbounded), run(&mut unbounded));
        let (t1, t2) = (run(&mut tiny), run(&mut tiny));

        assert!(
            t1.service_cache.evictions + t2.service_cache.evictions > 0,
            "capacity-1 memo must evict under multiple distinct batches"
        );
        assert_eq!(a1.service_cache.evictions, 0, "default capacity never evicts here");

        let mut t1n = t1.clone();
        let mut t2n = t2.clone();
        t1n.service_cache = a1.service_cache;
        t2n.service_cache = a2.service_cache;
        assert_eq!(t1n.to_json(), a1.to_json());
        assert_eq!(t2n.to_json(), a2.to_json());
    }

    /// The one-shot `simulate` wrapper and explicitly managed sessions
    /// agree: the wrapper is just open-then-run.
    #[test]
    fn simulate_wrapper_matches_explicit_sessions() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let wrapped = simulate("CPU", &trace, &plan, &arrivals, cfg, cps, |_, _| {
            CpuBaseline::new(dram.clone())
        });
        let mut sessions =
            open_sessions(&trace, &plan, |_, _| CpuBaseline::new(dram.clone()));
        let explicit =
            simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, &mut sessions);
        assert_eq!(wrapped.to_json(), explicit.to_json());
    }

    #[test]
    #[should_panic(expected = "one session per channel")]
    fn session_count_validated() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, &mut []);
    }

    fn tenant_setup(
        n: usize,
        qps: f64,
        seed: u64,
    ) -> (Trace, ChannelPlan, TenantMix, Vec<TenantRequest>, f64) {
        let dram = DramConfig::ddr5_4800();
        let cps = dram.cycles_per_sec();
        let trace = TraceGenerator::criteo_scaled(32, 200)
            .batch_size(1)
            .pooling(8)
            .batches(n)
            .generate(seed);
        let plan = ChannelPlan::balance_by_load(&trace, 2);
        let mix = TenantMix::new(vec![
            TenantClass::new("rt", 0.7, TenantProcess::Poisson, 10.0, Priority::High),
            TenantClass::new("batch", 0.3, TenantProcess::Bursty, 10_000.0, Priority::Low),
        ]);
        let requests = mix.requests(n, qps, cps, seed);
        (trace, plan, mix, requests, cps)
    }

    /// Per-tenant counters partition the tenant's requests exactly, and
    /// the per-tenant totals sum to the report-level totals.
    #[test]
    fn tenant_counters_balance_exactly() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (trace, plan, mix, requests, cps) = tenant_setup(96, 4_800_000.0, 7);
            let dram = DramConfig::ddr5_4800();
            let cfg = BatcherConfig {
                max_batch: 8,
                max_linger: 5_000,
                queue_depth: 16,
                policy,
                shed_expired: policy == QueuePolicy::Edf,
                adaptive_linger: policy == QueuePolicy::Edf,
            };
            let report = simulate_tenants(
                "CPU", &trace, &plan, &requests, &mix, cfg, cps,
                |_: usize, _: &Trace| CpuBaseline::new(dram.clone()),
            );
            assert_eq!(report.tenants.len(), 2);
            let mut total = 0u64;
            let mut total_shed = 0u64;
            for t in &report.tenants {
                assert_eq!(
                    t.requests,
                    t.completed + t.missed + t.queue_shed + t.deadline_shed,
                    "counters must partition tenant {} under {policy:?}",
                    t.name
                );
                total += t.requests;
                total_shed += t.queue_shed + t.deadline_shed;
            }
            assert_eq!(total, report.requests);
            assert_eq!(total_shed, report.shed);
        }
    }

    /// The headline multi-tenant claim: under overload, EDF dequeue plus
    /// deadline shedding gives the deadline-tight tenant strictly lower
    /// p99 latency AND a strictly lower deadline-miss rate than the same
    /// mix served FIFO with no shedding — and both runs stay perfectly
    /// reproducible.
    #[test]
    fn edf_with_shedding_beats_fifo_for_tight_tenant() {
        let run = |policy: QueuePolicy, shed: bool| {
            let (trace, plan, mix, requests, cps) = tenant_setup(96, 4_800_000.0, 11);
            let dram = DramConfig::ddr5_4800();
            let cfg = BatcherConfig {
                max_batch: 8,
                max_linger: 5_000,
                queue_depth: 64,
                policy,
                shed_expired: shed,
                adaptive_linger: shed,
            };
            simulate_tenants(
                "CPU", &trace, &plan, &requests, &mix, cfg, cps,
                |_: usize, _: &Trace| CpuBaseline::new(dram.clone()),
            )
        };
        let fifo = run(QueuePolicy::Fifo, false);
        let edf = run(QueuePolicy::Edf, true);

        let (rt_fifo, rt_edf) = (&fifo.tenants[0], &edf.tenants[0]);
        assert_eq!(rt_fifo.name, "rt");
        assert!(rt_fifo.requests > 0 && rt_edf.requests > 0);
        let p99_fifo = rt_fifo.latency.quantile(0.99);
        let p99_edf = rt_edf.latency.quantile(0.99);
        assert!(
            p99_edf < p99_fifo,
            "EDF should cut the tight tenant's p99: edf={p99_edf} fifo={p99_fifo}"
        );
        assert!(
            rt_edf.deadline_miss_rate() < rt_fifo.deadline_miss_rate(),
            "EDF+shedding should cut the miss rate: edf={} fifo={}",
            rt_edf.deadline_miss_rate(),
            rt_fifo.deadline_miss_rate()
        );
        // Determinism: same inputs, byte-identical reports.
        assert_eq!(run(QueuePolicy::Edf, true).to_json(), edf.to_json());
        assert_eq!(run(QueuePolicy::Fifo, false).to_json(), fifo.to_json());
    }

    /// The tentpole consistency claims: a traced run produces a
    /// byte-identical `ServeReport` to the untraced run on the same seed,
    /// the recorded request-lifecycle spans partition exactly into
    /// completed + late + queue-shed + deadline-shed matching the report's
    /// counters, the timeline validates (balanced, monotone per track),
    /// and both exports are byte-identical across reruns.
    #[test]
    fn traced_run_matches_untraced_and_lifecycle_spans_balance() {
        let (trace, plan, mix, requests, cps) = tenant_setup(96, 4_800_000.0, 7);
        let dram = DramConfig::ddr5_4800();
        let cfg = BatcherConfig {
            max_batch: 8,
            max_linger: 5_000,
            queue_depth: 32,
            policy: QueuePolicy::Edf,
            shed_expired: true,
            adaptive_linger: true,
        };
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        let mut plain_sessions = open_sessions(&trace, &plan, make);
        let plain = simulate_tenant_sessions(
            "CPU", &trace, &plan, &requests, &mix, cfg, cps, &mut plain_sessions,
        );

        let traced_run = || {
            let mut sessions = open_sessions(&trace, &plan, make);
            let mut obs = ServeObs::new(dram.clone());
            let report = simulate_tenant_sessions_obs(
                "CPU", &trace, &plan, &requests, &mix, cfg, cps, &mut sessions, &mut obs,
            );
            (report, obs)
        };
        let (traced, obs) = traced_run();

        // Tracing never perturbs the simulation.
        assert_eq!(traced.to_json(), plain.to_json());

        // One lifecycle span per request; fates partition exactly and
        // agree with the report's own accounting.
        let t = obs.lifecycle_totals();
        assert_eq!(t.spans, traced.requests);
        assert_eq!(t.completed + t.late + t.queue_shed + t.deadline_shed, t.spans);
        assert_eq!(t.queue_shed + t.deadline_shed, traced.shed);
        assert_eq!(t.completed, traced.tenants.iter().map(|x| x.completed).sum());
        assert_eq!(t.late, traced.tenants.iter().map(|x| x.missed).sum());
        assert_eq!(t.queue_shed, traced.tenants.iter().map(|x| x.queue_shed).sum());
        assert_eq!(
            t.deadline_shed,
            traced.tenants.iter().map(|x| x.deadline_shed).sum()
        );
        // This configuration exercises both drop paths and real traffic.
        assert!(t.queue_shed > 0, "queue_depth=32 should tail-drop under overload");
        assert!(t.deadline_shed > 0, "EDF shedding should fire");
        assert!(t.completed > 0);

        // The timeline is well-formed and carries DRAM-level spans.
        assert_eq!(obs.recorder().validate(), Ok(()));
        let perfetto = obs.chrome_trace_string();
        assert!(perfetto.contains("\"ph\":\"X\""));
        assert!(perfetto.contains("rank 0 / bg 0 / bank 0"));
        assert!(perfetto.contains("tenant: rt"));
        assert!(perfetto.contains("cache "));

        // ObsReport is consistent with the ServeReport…
        let summary = obs.obs_report(&traced);
        assert_eq!(summary.requests, traced.requests);
        for (oc, cr) in summary.channels.iter().zip(&traced.channels) {
            assert_eq!(oc.busy_fraction, cr.utilization);
            assert_eq!(oc.depth_max, cr.depth_max);
            let a = oc.attribution.as_ref().expect("dram tracing on");
            // `from_commands` widens the window to the last command's
            // display end, so it can only meet or exceed the makespan.
            assert!(a.span >= traced.makespan_cycles);
            assert!(a.reads > 0);
        }

        // …and both exports are byte-identical across reruns.
        let (traced2, obs2) = traced_run();
        assert_eq!(obs2.chrome_trace_string(), perfetto);
        assert_eq!(obs2.obs_report(&traced2).to_json(), summary.to_json());
    }

    /// Streaming export and online aggregation on a two-tenant EDF run:
    /// the streamed trace is byte-identical to the in-memory export, the
    /// online aggregates equal a recompute from the full retained trace,
    /// and the ObsReport tenant blocks agree with the aggregation engine.
    #[test]
    fn streamed_trace_and_online_aggregates_match_in_memory_recompute() {
        use recross_obs::agg::Aggregates;
        use recross_obs::SharedWriter;

        let (trace, plan, mix, requests, cps) = tenant_setup(96, 4_800_000.0, 7);
        let dram = DramConfig::ddr5_4800();
        let cfg = BatcherConfig {
            max_batch: 8,
            max_linger: 5_000,
            queue_depth: 32,
            policy: QueuePolicy::Edf,
            shed_expired: true,
            adaptive_linger: true,
        };
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        // Stream + aggregate live while ALSO retaining the in-memory
        // buffer, so the same run provides both sides of the comparison.
        let out = SharedWriter::new();
        let mut sessions = open_sessions(&trace, &plan, make);
        let mut obs = ServeObs::new(dram.clone());
        obs.stream_to(out.clone());
        obs.enable_agg();
        let report = simulate_tenant_sessions_obs(
            "CPU", &trace, &plan, &requests, &mix, cfg, cps, &mut sessions, &mut obs,
        );
        obs.finish().unwrap();

        // Byte identity: live-streamed file == in-memory export.
        assert_eq!(out.contents(), obs.chrome_trace_string());

        // Equivalence: online aggregates == recompute from the full trace.
        let live = obs.aggregates().expect("agg enabled");
        let replayed = Aggregates::from_recorder(obs.recorder());
        assert_eq!(live, replayed);
        assert_eq!(live.to_json(), replayed.to_json());

        // The aggregation engine's view matches both the report and the
        // ObsReport per-tenant blocks (same evidence, two consumers). The
        // aggregate makespan tracks the last event's display end, which
        // can only meet or exceed the report's makespan (DRAM command
        // spans widen past the last completion, as with attribution).
        assert!(live.makespan_cycles >= report.makespan_cycles);
        let summary = obs.obs_report(&report);
        assert_eq!(live.tenants.len(), summary.tenants.len());
        for (a, t) in live.tenants.iter().zip(&summary.tenants) {
            assert_eq!(a.name, t.name);
            assert_eq!(a.completed, t.completed);
            assert_eq!(a.late, t.late);
            assert_eq!(a.queue_shed, t.queue_shed);
            assert_eq!(a.deadline_shed, t.deadline_shed);
            assert_eq!(a.time_in_queue, t.time_in_queue);
            assert_eq!(a.time_in_service, t.time_in_service);
        }
        for (a, r) in live.tenants.iter().zip(&report.tenants) {
            assert_eq!(a.completed, r.completed);
            assert_eq!(a.late, r.missed);
            assert_eq!(a.queue_shed, r.queue_shed);
            assert_eq!(a.deadline_shed, r.deadline_shed);
        }

        // Drop-free run: every sink saw every event.
        assert_eq!(obs.recorder().dropped_events(), 0);
    }

    /// Timeline-only mode (DRAM tracing off) still matches the untraced
    /// report and records no bank tracks or attribution.
    #[test]
    fn timeline_only_tracing_matches_untraced_report() {
        let (trace, plan, arrivals, cfg, cps) = serving_setup();
        let dram = DramConfig::ddr5_4800();
        let make = |_: usize, _: &Trace| CpuBaseline::new(dram.clone());

        let mut plain_sessions = open_sessions(&trace, &plan, make);
        let plain =
            simulate_sessions("CPU", &trace, &plan, &arrivals, cfg, cps, &mut plain_sessions);

        let mut sessions = open_sessions(&trace, &plan, make);
        let mut obs = ServeObs::new(dram.clone());
        obs.set_dram_trace(false);
        let traced = simulate_sessions_obs(
            "CPU", &trace, &plan, &arrivals, cfg, cps, &mut sessions, &mut obs,
        );
        assert_eq!(traced.to_json(), plain.to_json());
        assert_eq!(obs.lifecycle_totals().spans, traced.requests);
        let summary = obs.obs_report(&traced);
        assert!(summary.channels.iter().all(|c| c.attribution.is_none()));
        assert!(!obs.chrome_trace_string().contains("bank 0"));
    }
}

