//! The event-driven serving simulator.
//!
//! One server per memory channel (channels are independent in DDR — see
//! `recross_nmp::multichannel`): each channel owns a batching queue and an
//! accelerator instance, requests are sharded across channels by the table
//! partition ([`ChannelPlan`]), and a request completes when its last
//! channel part does. The loop is a textbook discrete-event simulation —
//! two event sources (next arrival, next batch trigger), always advance the
//! earlier — and everything is integer cycles, so runs are exactly
//! reproducible.

use recross_dram::Cycle;
use recross_nmp::accel::EmbeddingAccelerator;
use recross_nmp::multichannel::ChannelPlan;
use recross_workload::{Batch, Trace};

use crate::batch::{Batcher, BatcherConfig, QueuedJob};
use crate::report::{ChannelReport, ServeReport};

/// What happened on one channel.
struct ChannelOutcome {
    /// Per-request completion cycle; `None` means shed (or never admitted).
    completions: Vec<Option<Cycle>>,
    /// Cycles the server spent servicing batches.
    busy: Cycle,
    /// Batches dispatched.
    dispatches: u64,
    /// Requests shed at this channel's queue.
    shed: u64,
    /// Queue depth sampled after each arrival (aligned across channels).
    depth_after_arrival: Vec<usize>,
}

/// Simulates one channel: `sub` is the per-channel trace with **one batch
/// per request** (possibly empty when the request touches no table on this
/// channel — those complete at their arrival instant, costing nothing).
fn simulate_channel<A: EmbeddingAccelerator>(
    sub: &Trace,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    accel: &mut A,
) -> ChannelOutcome {
    let n = arrivals.len();
    assert_eq!(sub.batches.len(), n, "one request per batch");
    let mut batcher = Batcher::new(cfg);
    let mut completions: Vec<Option<Cycle>> = vec![None; n];
    let mut depth_after_arrival = Vec::with_capacity(n);
    let mut busy: Cycle = 0;
    let mut dispatches = 0u64;
    let mut server_free: Cycle = 0;
    let mut next = 0usize; // next arrival index

    loop {
        let trigger = batcher.next_trigger(server_free);
        // Admit the next arrival if it happens before (or at) the next
        // dispatch; otherwise dispatch. Ties favor admission so a request
        // arriving exactly at the trigger can still join the batch.
        let admit = match (trigger, arrivals.get(next)) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(td), Some(&ta)) => ta <= td,
        };
        if admit {
            let ops = &sub.batches[next].ops;
            if ops.is_empty() {
                // Nothing to do on this channel: done on arrival.
                completions[next] = Some(arrivals[next]);
            } else {
                batcher.offer(QueuedJob {
                    id: next,
                    arrival: arrivals[next],
                    cost: sub.batches[next].lookups() as u64,
                });
            }
            depth_after_arrival.push(batcher.len());
            next += 1;
        } else {
            let td = trigger.expect("dispatch arm requires a trigger");
            let jobs = batcher.take_batch();
            debug_assert!(!jobs.is_empty());
            let merged = Batch {
                ops: jobs
                    .iter()
                    .flat_map(|j| sub.batches[j.id].ops.iter().cloned())
                    .collect(),
            };
            let service = accel.service_time(&sub.tables, &merged);
            let done = td + service;
            for j in &jobs {
                completions[j.id] = Some(done);
            }
            busy += service;
            dispatches += 1;
            server_free = done;
        }
    }

    ChannelOutcome {
        completions,
        busy,
        dispatches,
        shed: batcher.shed(),
        depth_after_arrival,
    }
}

/// Runs the full serving simulation: shards `trace` (one batch = one
/// request) across `plan.channels()` servers, feeds each the same arrival
/// sequence, and merges per-channel outcomes into a [`ServeReport`].
///
/// `make` builds the accelerator for a channel from its id and sub-trace
/// (same contract as [`recross_nmp::multichannel::run_multichannel`]).
/// A request is **shed** if any channel's queue dropped its part;
/// otherwise its latency is `max(channel completion) − arrival`.
///
/// # Panics
///
/// Panics if `arrivals` is not nondecreasing or its length differs from
/// the number of request batches in `trace`.
pub fn simulate<A, F>(
    name: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    arrivals: &[Cycle],
    cfg: BatcherConfig,
    cycles_per_sec: f64,
    mut make: F,
) -> ServeReport
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    assert_eq!(
        arrivals.len(),
        trace.batches.len(),
        "one arrival per request batch"
    );
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );

    let mut outcomes = Vec::with_capacity(plan.channels());
    for (ch, (sub, _orig)) in plan.split(trace).into_iter().enumerate() {
        let mut accel = make(ch, &sub);
        outcomes.push(simulate_channel(&sub, arrivals, cfg, &mut accel));
    }
    ServeReport::from_outcomes(name, arrivals, cycles_per_sec, &outcomes)
}

impl ServeReport {
    fn from_outcomes(
        name: &str,
        arrivals: &[Cycle],
        cycles_per_sec: f64,
        outcomes: &[ChannelOutcome],
    ) -> ServeReport {
        let n = arrivals.len();
        let mut hist = crate::hist::LatencyHistogram::new();
        let mut shed_requests = 0u64;
        let mut makespan: Cycle = arrivals.last().copied().unwrap_or(0);
        for (i, &arrival) in arrivals.iter().enumerate() {
            let mut done: Option<Cycle> = Some(arrival);
            for o in outcomes {
                match (done, o.completions[i]) {
                    (Some(d), Some(c)) => done = Some(d.max(c)),
                    _ => done = None,
                }
            }
            match done {
                Some(d) => {
                    hist.record(d - arrival);
                    makespan = makespan.max(d);
                }
                None => shed_requests += 1,
            }
        }
        // Total queue depth across channels, sampled at each arrival.
        let depth_series: Vec<u64> = (0..n)
            .map(|i| {
                outcomes
                    .iter()
                    .map(|o| o.depth_after_arrival[i] as u64)
                    .sum()
            })
            .collect();
        let channels = outcomes
            .iter()
            .map(|o| ChannelReport {
                busy_cycles: o.busy,
                utilization: if makespan > 0 {
                    o.busy as f64 / makespan as f64
                } else {
                    0.0
                },
                dispatches: o.dispatches,
                shed: o.shed,
            })
            .collect();
        let arrival_span_s = arrivals.last().copied().unwrap_or(0) as f64 / cycles_per_sec;
        ServeReport {
            name: name.to_string(),
            requests: n as u64,
            shed: shed_requests,
            makespan_cycles: makespan,
            cycles_per_sec,
            offered_qps: if arrival_span_s > 0.0 {
                n as f64 / arrival_span_s
            } else {
                0.0
            },
            latency: hist,
            depth_series,
            channels,
        }
    }
}
