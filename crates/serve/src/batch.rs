//! The batching queue.
//!
//! Inference servers amortize per-dispatch overheads by grouping queued
//! requests into batches. The standard discipline is *size-or-timeout*: a
//! batch fires as soon as `max_batch` requests are waiting, or when the
//! oldest waiting request has lingered `max_linger` cycles — whichever
//! comes first. The queue is bounded; offers past `queue_depth` are shed
//! (tail-drop admission control), which is what keeps p99 finite past
//! saturation in an open-loop world.
//!
//! # Dequeue policies
//!
//! Three [`QueuePolicy`] variants decide *which* waiting requests a fired
//! batch picks up:
//!
//! * [`Fifo`](QueuePolicy::Fifo) — strict arrival order; the fairness
//!   baseline.
//! * [`ShortestJobFirst`](QueuePolicy::ShortestJobFirst) — fewest
//!   embedding lookups first; minimizes mean latency under mixed request
//!   sizes at the cost of worst-case fairness. Ties break by
//!   `(cost, arrival, id)`.
//! * [`Edf`](QueuePolicy::Edf) — earliest absolute deadline first; the
//!   multi-tenant policy. For **equal deadlines** the tie-break order is:
//!   higher [`priority`](QueuedJob::priority) first, then earlier
//!   `arrival`, then lower `id`. The full sort key is therefore
//!   `(deadline, priority descending, arrival, id)`, which is total, so
//!   dequeue order is deterministic for any input.
//!
//! All policies return the picked set in arrival order (the batch's
//! service cost does not depend on intra-batch order; keeping arrival
//! order makes reports stable across policies).
//!
//! # Deadline shedding and adaptive linger
//!
//! Two optional knobs support deadline-aware serving
//! ([`BatcherConfig::shed_expired`] / [`BatcherConfig::adaptive_linger`]):
//! [`Batcher::shed_expired`] drops, at dequeue time, every waiting request
//! whose deadline has already passed or provably cannot be met
//! (`deadline < now + service_floor`), so a doomed request never occupies
//! a batch slot; and when `adaptive_linger` is set the linger timeout
//! shrinks linearly as the queue fills, trading batching efficiency for
//! latency exactly when the backlog (and thus deadline pressure) grows.
//! Shrinking never violates causality: [`Batcher::next_trigger`] floors
//! the fire time at the newest queued arrival, so a batch cannot be
//! dispatched before every job it may carry exists.

use recross_dram::Cycle;

/// Which waiting requests a fired batch picks up.
///
/// See the [module docs](self) for the full semantics and tie-break
/// order of each policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Oldest first (arrival order).
    #[default]
    Fifo,
    /// Cheapest (fewest lookups) first; ties broken by arrival, then id.
    /// Trades worst-case fairness for mean latency under mixed sizes.
    ShortestJobFirst,
    /// Earliest absolute deadline first; equal deadlines break by higher
    /// priority, then arrival, then id. Requests without a deadline
    /// ([`Cycle::MAX`]) sort last.
    Edf,
}

impl QueuePolicy {
    /// Short lowercase label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::ShortestJobFirst => "sjf",
            Self::Edf => "edf",
        }
    }
}

/// Batching-queue parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum requests per dispatched batch (> 0).
    pub max_batch: usize,
    /// Maximum cycles the oldest request may wait before a (possibly
    /// partial) batch fires.
    pub max_linger: Cycle,
    /// Bound on waiting requests; offers beyond this are shed (> 0).
    pub queue_depth: usize,
    /// Dequeue order.
    pub policy: QueuePolicy,
    /// When set, [`Batcher::shed_expired`] drops waiting requests that
    /// can no longer meet their deadline; when clear it is a no-op.
    pub shed_expired: bool,
    /// When set, the linger timeout shrinks linearly with queue depth:
    /// with `len` jobs waiting the effective linger is
    /// `max_linger × (max_batch − len) / max_batch`. A nearly full batch
    /// fires almost immediately; a lone request still waits close to the
    /// full `max_linger` for company.
    pub adaptive_linger: bool,
}

impl Default for BatcherConfig {
    /// 16-request batches, 50 k cycles (~20.8 µs at DDR5-4800) linger, a
    /// 256-deep queue, FIFO order, no deadline shedding, fixed linger.
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_linger: 50_000,
            queue_depth: 256,
            policy: QueuePolicy::Fifo,
            shed_expired: false,
            adaptive_linger: false,
        }
    }
}

/// A request waiting in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Request id (index into the request trace).
    pub id: usize,
    /// Arrival time in cycles.
    pub arrival: Cycle,
    /// Service-cost proxy (embedding lookups) used as the SJF key.
    pub cost: u64,
    /// Absolute completion deadline in cycles; [`Cycle::MAX`] means none.
    pub deadline: Cycle,
    /// Tenant priority weight (higher is more urgent); breaks EDF ties.
    pub priority: u8,
    /// Tenant index of the owning traffic class (0 when untenanted).
    pub tenant: usize,
}

impl QueuedJob {
    /// A job with no deadline, default priority, and tenant 0 — the
    /// single-tenant case.
    pub fn untimed(id: usize, arrival: Cycle, cost: u64) -> Self {
        Self {
            id,
            arrival,
            cost,
            deadline: Cycle::MAX,
            priority: 0,
            tenant: 0,
        }
    }
}

/// A bounded size-or-timeout batching queue.
#[derive(Debug, Clone)]
pub struct Batcher {
    cfg: BatcherConfig,
    /// Waiting jobs in arrival order (offers append).
    queue: Vec<QueuedJob>,
    shed: u64,
    expired: u64,
    offered: u64,
}

impl Batcher {
    /// An empty queue with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `queue_depth` is zero.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        Self {
            cfg,
            queue: Vec::new(),
            shed: 0,
            expired: 0,
            offered: 0,
        }
    }

    /// Offers a job; returns `false` (and sheds it) when the queue is full.
    pub fn offer(&mut self, job: QueuedJob) -> bool {
        self.offered += 1;
        if self.queue.len() >= self.cfg.queue_depth {
            self.shed += 1;
            return false;
        }
        debug_assert!(
            self.queue.last().is_none_or(|last| last.arrival <= job.arrival),
            "offers must arrive in time order"
        );
        self.queue.push(job);
        true
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs shed at admission (queue full) so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Jobs shed at dequeue because their deadline was unreachable.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Jobs offered so far (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The linger timeout in effect for the current queue depth (see
    /// [`BatcherConfig::adaptive_linger`]).
    fn effective_linger(&self) -> Cycle {
        if !self.cfg.adaptive_linger || self.queue.len() >= self.cfg.max_batch {
            return self.cfg.max_linger;
        }
        let gap = (self.cfg.max_batch - self.queue.len()) as u128;
        (self.cfg.max_linger as u128 * gap / self.cfg.max_batch as u128) as Cycle
    }

    /// Earliest cycle at which a batch can be dispatched, given the server
    /// frees up at `server_free`: when `max_batch` jobs are waiting the
    /// batch is full from the moment the `max_batch`-th arrived; otherwise
    /// the linger clock (fixed or adaptive) runs from the oldest waiting
    /// job. The trigger never precedes the newest queued arrival, so a
    /// batch can only fire once every job it may carry exists. `None` when
    /// the queue is empty.
    pub fn next_trigger(&self, server_free: Cycle) -> Option<Cycle> {
        let newest = self.queue.last()?.arrival;
        let fire = if self.queue.len() >= self.cfg.max_batch {
            self.queue[self.cfg.max_batch - 1].arrival
        } else {
            self.queue[0].arrival.saturating_add(self.effective_linger())
        };
        // Causality clamp: an admission shrinks the adaptive linger, so
        // the recomputed trigger could otherwise precede the arrival of a
        // job admitted against the longer, pre-shrink timeout. Fixed
        // linger is unaffected (admission already guarantees arrival ≤
        // trigger, so the clamp is a no-op there).
        Some(fire.max(newest).max(server_free))
    }

    /// Drops and returns every waiting job whose deadline can no longer be
    /// met: `deadline < now + service_floor`, where `service_floor` is the
    /// caller's lower bound on remaining service time (pass 0 to shed only
    /// already-expired jobs). Counts the drops into
    /// [`expired`](Self::expired). No-op (returns empty) unless
    /// [`BatcherConfig::shed_expired`] is set.
    pub fn shed_expired(&mut self, now: Cycle, service_floor: Cycle) -> Vec<QueuedJob> {
        if !self.cfg.shed_expired {
            return Vec::new();
        }
        let horizon = now.saturating_add(service_floor);
        let mut dropped = Vec::new();
        self.queue.retain(|job| {
            if job.deadline < horizon {
                dropped.push(*job);
                false
            } else {
                true
            }
        });
        self.expired += dropped.len() as u64;
        dropped
    }

    /// Removes and returns up to `max_batch` jobs per the dequeue policy.
    /// Returns an empty vec when nothing is waiting. The picked set is
    /// always returned in arrival order.
    pub fn take_batch(&mut self) -> Vec<QueuedJob> {
        let take = self.queue.len().min(self.cfg.max_batch);
        match self.cfg.policy {
            QueuePolicy::Fifo => self.queue.drain(..take).collect(),
            QueuePolicy::ShortestJobFirst => {
                self.take_by_key(take, |j| (j.cost, 0, j.arrival, j.id))
            }
            QueuePolicy::Edf => self.take_by_key(take, |j| {
                // Documented tie-break for equal deadlines: higher
                // priority first, then arrival, then id.
                (j.deadline, u8::MAX - j.priority, j.arrival, j.id)
            }),
        }
    }

    /// Removes the `take` jobs minimizing `key`, returned in arrival
    /// order. Keys must be total (include `id`) for determinism.
    fn take_by_key<K: Ord>(
        &mut self,
        take: usize,
        key: impl Fn(&QueuedJob) -> K,
    ) -> Vec<QueuedJob> {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| key(&self.queue[i]));
        let mut picked: Vec<usize> = order[..take].to_vec();
        picked.sort_unstable();
        let mut out = Vec::with_capacity(take);
        for &i in picked.iter().rev() {
            out.push(self.queue.remove(i));
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, arrival: Cycle, cost: u64) -> QueuedJob {
        QueuedJob::untimed(id, arrival, cost)
    }

    fn timed(id: usize, arrival: Cycle, deadline: Cycle, priority: u8) -> QueuedJob {
        QueuedJob {
            id,
            arrival,
            cost: 1,
            deadline,
            priority,
            tenant: 0,
        }
    }

    #[test]
    fn full_batch_fires_at_kth_arrival() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 3,
            max_linger: 1_000_000,
            queue_depth: 10,
            ..BatcherConfig::default()
        });
        b.offer(job(0, 10, 1));
        b.offer(job(1, 20, 1));
        assert_eq!(b.next_trigger(0), Some(1_000_010), "partial: linger");
        b.offer(job(2, 30, 1));
        assert_eq!(b.next_trigger(0), Some(30), "full: 3rd arrival");
        // A busy server delays the dispatch.
        assert_eq!(b.next_trigger(500), Some(500));
        let batch = b.take_batch();
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(b.is_empty());
        assert_eq!(b.next_trigger(0), None);
    }

    #[test]
    fn linger_fires_partial_batch() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 8,
            max_linger: 100,
            queue_depth: 10,
            ..BatcherConfig::default()
        });
        b.offer(job(0, 40, 1));
        b.offer(job(1, 70, 1));
        // Linger runs from the *oldest* job.
        assert_eq!(b.next_trigger(0), Some(140));
        assert_eq!(b.take_batch().len(), 2);
    }

    #[test]
    fn bounded_queue_sheds_overflow() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 4,
            max_linger: 100,
            queue_depth: 2,
            ..BatcherConfig::default()
        });
        assert!(b.offer(job(0, 1, 1)));
        assert!(b.offer(job(1, 2, 1)));
        assert!(!b.offer(job(2, 3, 1)), "third offer exceeds depth 2");
        assert_eq!(b.shed(), 1);
        assert_eq!(b.offered(), 3);
        assert_eq!(b.len(), 2);
        // Draining reopens admission.
        b.take_batch();
        assert!(b.offer(job(3, 4, 1)));
        assert_eq!(b.shed(), 1);
    }

    #[test]
    fn sjf_picks_cheapest_with_stable_ties() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 2,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::ShortestJobFirst,
            ..BatcherConfig::default()
        });
        b.offer(job(0, 1, 50));
        b.offer(job(1, 2, 10));
        b.offer(job(2, 3, 10));
        b.offer(job(3, 4, 5));
        let batch = b.take_batch();
        // Cheapest two: cost 5 (id 3) and the earlier of the two cost-10s
        // (id 1), returned in arrival order.
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(b.len(), 2);
        let rest = b.take_batch();
        assert_eq!(rest.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    fn edf_orders_by_deadline_with_priority_tiebreak() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 2,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::Edf,
            ..BatcherConfig::default()
        });
        b.offer(timed(0, 1, 900, 0)); // loose deadline
        b.offer(timed(1, 2, 500, 0)); // tight, low priority
        b.offer(timed(2, 3, 500, 2)); // tight, high priority — wins the tie
        b.offer(job(3, 4, 1)); // no deadline: sorts last
        let batch = b.take_batch();
        // Both 500-deadline jobs beat 900; within the batch, arrival order.
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [1, 2]);
        // Priority decides who'd go first if only one slot existed.
        let mut one = Batcher::new(BatcherConfig {
            max_batch: 1,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::Edf,
            ..BatcherConfig::default()
        });
        one.offer(timed(0, 1, 500, 0));
        one.offer(timed(1, 2, 500, 2));
        assert_eq!(one.take_batch()[0].id, 1, "high priority wins the tie");
        assert_eq!(one.take_batch()[0].id, 0);
    }

    #[test]
    fn edf_equal_deadline_equal_priority_falls_back_to_arrival_then_id() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 1,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::Edf,
            ..BatcherConfig::default()
        });
        b.offer(timed(5, 10, 500, 1));
        b.offer(timed(2, 10, 500, 1)); // same arrival: lower id wins
        b.offer(timed(7, 20, 500, 1));
        assert_eq!(b.take_batch()[0].id, 2);
        assert_eq!(b.take_batch()[0].id, 5);
        assert_eq!(b.take_batch()[0].id, 7);
    }

    #[test]
    fn shed_expired_drops_unreachable_deadlines() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 4,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::Edf,
            shed_expired: true,
            ..BatcherConfig::default()
        });
        b.offer(timed(0, 1, 50, 0)); // already expired at now=100
        b.offer(timed(1, 2, 120, 0)); // can't finish: 100 + floor 30 > 120
        b.offer(timed(2, 3, 130, 0)); // feasible: 130 ≥ 100 + 30
        b.offer(job(3, 4, 1)); // no deadline: never shed
        let dropped = b.shed_expired(100, 30);
        assert_eq!(dropped.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(b.expired(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.take_batch().iter().map(|j| j.id).collect::<Vec<_>>(),
            [2, 3]
        );
    }

    #[test]
    fn shed_expired_disabled_is_noop() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 4,
            max_linger: 100,
            queue_depth: 10,
            ..BatcherConfig::default()
        });
        b.offer(timed(0, 1, 50, 0));
        assert!(b.shed_expired(100, 0).is_empty());
        assert_eq!(b.expired(), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn adaptive_linger_shrinks_with_depth() {
        let cfg = BatcherConfig {
            max_batch: 4,
            max_linger: 1_000,
            queue_depth: 10,
            adaptive_linger: true,
            ..BatcherConfig::default()
        };
        let mut b = Batcher::new(cfg);
        b.offer(job(0, 0, 1));
        // 1 of 4 waiting: linger = 1000 × 3/4 = 750.
        assert_eq!(b.next_trigger(0), Some(750));
        b.offer(job(1, 0, 1));
        assert_eq!(b.next_trigger(0), Some(500));
        b.offer(job(2, 0, 1));
        assert_eq!(b.next_trigger(0), Some(250));
        b.offer(job(3, 0, 1));
        // Full batch: fires at the 4th arrival.
        assert_eq!(b.next_trigger(0), Some(0));
    }

    #[test]
    fn adaptive_trigger_never_precedes_a_queued_arrival() {
        // Regression: admitting a job shrinks the adaptive linger, and the
        // recomputed trigger used to land *before* the admitted job's
        // arrival — dispatching a batch containing a request that did not
        // exist yet.
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 4,
            max_linger: 1_000,
            queue_depth: 10,
            adaptive_linger: true,
            ..BatcherConfig::default()
        });
        b.offer(job(0, 0, 1));
        assert_eq!(b.next_trigger(0), Some(750));
        // Job 1 arrives at 700 ≤ 750 and is admitted; the shrunk linger
        // alone would say 500, but the batch cannot fire before 700.
        b.offer(job(1, 700, 1));
        let t = b.next_trigger(0);
        assert_eq!(t, Some(700), "trigger must not precede the newest arrival");
        // Deeper queues shrink the linger further; the floor holds.
        b.offer(job(2, 700, 1));
        assert_eq!(b.next_trigger(0), Some(700));
        // And a full batch fires at the max_batch-th arrival as before.
        b.offer(job(3, 701, 1));
        assert_eq!(b.next_trigger(0), Some(701));
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        Batcher::new(BatcherConfig {
            max_batch: 0,
            ..BatcherConfig::default()
        });
    }
}
