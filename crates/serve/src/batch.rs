//! The batching queue.
//!
//! Inference servers amortize per-dispatch overheads by grouping queued
//! requests into batches. The standard discipline is *size-or-timeout*: a
//! batch fires as soon as `max_batch` requests are waiting, or when the
//! oldest waiting request has lingered `max_linger` cycles — whichever
//! comes first. The queue is bounded; offers past `queue_depth` are shed
//! (tail-drop admission control), which is what keeps p99 finite past
//! saturation in an open-loop world.

use recross_dram::Cycle;

/// Which waiting requests a fired batch picks up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Oldest first (arrival order).
    #[default]
    Fifo,
    /// Cheapest (fewest lookups) first; ties broken by arrival, then id.
    /// Trades worst-case fairness for mean latency under mixed sizes.
    ShortestJobFirst,
}

impl QueuePolicy {
    /// Short lowercase label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::ShortestJobFirst => "sjf",
        }
    }
}

/// Batching-queue parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum requests per dispatched batch (> 0).
    pub max_batch: usize,
    /// Maximum cycles the oldest request may wait before a (possibly
    /// partial) batch fires.
    pub max_linger: Cycle,
    /// Bound on waiting requests; offers beyond this are shed (> 0).
    pub queue_depth: usize,
    /// Dequeue order.
    pub policy: QueuePolicy,
}

impl Default for BatcherConfig {
    /// 16-request batches, 50 k cycles (~20.8 µs at DDR5-4800) linger, a
    /// 256-deep queue, FIFO order.
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_linger: 50_000,
            queue_depth: 256,
            policy: QueuePolicy::Fifo,
        }
    }
}

/// A request waiting in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Request id (index into the request trace).
    pub id: usize,
    /// Arrival time in cycles.
    pub arrival: Cycle,
    /// Service-cost proxy (embedding lookups) used as the SJF key.
    pub cost: u64,
}

/// A bounded size-or-timeout batching queue.
#[derive(Debug, Clone)]
pub struct Batcher {
    cfg: BatcherConfig,
    /// Waiting jobs in arrival order (offers append).
    queue: Vec<QueuedJob>,
    shed: u64,
    offered: u64,
}

impl Batcher {
    /// An empty queue with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `queue_depth` is zero.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        Self {
            cfg,
            queue: Vec::new(),
            shed: 0,
            offered: 0,
        }
    }

    /// Offers a job; returns `false` (and sheds it) when the queue is full.
    pub fn offer(&mut self, job: QueuedJob) -> bool {
        self.offered += 1;
        if self.queue.len() >= self.cfg.queue_depth {
            self.shed += 1;
            return false;
        }
        debug_assert!(
            self.queue.last().is_none_or(|last| last.arrival <= job.arrival),
            "offers must arrive in time order"
        );
        self.queue.push(job);
        true
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Jobs offered so far (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Earliest cycle at which a batch can be dispatched, given the server
    /// frees up at `server_free`: when `max_batch` jobs are waiting the
    /// batch is full from the moment the `max_batch`-th arrived; otherwise
    /// the linger clock runs from the oldest waiting job. `None` when the
    /// queue is empty.
    pub fn next_trigger(&self, server_free: Cycle) -> Option<Cycle> {
        let fire = if self.queue.len() >= self.cfg.max_batch {
            self.queue[self.cfg.max_batch - 1].arrival
        } else {
            self.queue.first()?.arrival.saturating_add(self.cfg.max_linger)
        };
        Some(fire.max(server_free))
    }

    /// Removes and returns up to `max_batch` jobs per the dequeue policy.
    /// Returns an empty vec when nothing is waiting.
    pub fn take_batch(&mut self) -> Vec<QueuedJob> {
        let take = self.queue.len().min(self.cfg.max_batch);
        match self.cfg.policy {
            QueuePolicy::Fifo => self.queue.drain(..take).collect(),
            QueuePolicy::ShortestJobFirst => {
                // Pick the `take` cheapest; stable keys keep it
                // deterministic.
                let mut order: Vec<usize> = (0..self.queue.len()).collect();
                order.sort_by_key(|&i| {
                    let j = &self.queue[i];
                    (j.cost, j.arrival, j.id)
                });
                let mut picked: Vec<usize> = order[..take].to_vec();
                picked.sort_unstable();
                let mut out = Vec::with_capacity(take);
                for &i in picked.iter().rev() {
                    out.push(self.queue.remove(i));
                }
                out.reverse();
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, arrival: Cycle, cost: u64) -> QueuedJob {
        QueuedJob { id, arrival, cost }
    }

    #[test]
    fn full_batch_fires_at_kth_arrival() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 3,
            max_linger: 1_000_000,
            queue_depth: 10,
            policy: QueuePolicy::Fifo,
        });
        b.offer(job(0, 10, 1));
        b.offer(job(1, 20, 1));
        assert_eq!(b.next_trigger(0), Some(1_000_010), "partial: linger");
        b.offer(job(2, 30, 1));
        assert_eq!(b.next_trigger(0), Some(30), "full: 3rd arrival");
        // A busy server delays the dispatch.
        assert_eq!(b.next_trigger(500), Some(500));
        let batch = b.take_batch();
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(b.is_empty());
        assert_eq!(b.next_trigger(0), None);
    }

    #[test]
    fn linger_fires_partial_batch() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 8,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::Fifo,
        });
        b.offer(job(0, 40, 1));
        b.offer(job(1, 70, 1));
        // Linger runs from the *oldest* job.
        assert_eq!(b.next_trigger(0), Some(140));
        assert_eq!(b.take_batch().len(), 2);
    }

    #[test]
    fn bounded_queue_sheds_overflow() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 4,
            max_linger: 100,
            queue_depth: 2,
            policy: QueuePolicy::Fifo,
        });
        assert!(b.offer(job(0, 1, 1)));
        assert!(b.offer(job(1, 2, 1)));
        assert!(!b.offer(job(2, 3, 1)), "third offer exceeds depth 2");
        assert_eq!(b.shed(), 1);
        assert_eq!(b.offered(), 3);
        assert_eq!(b.len(), 2);
        // Draining reopens admission.
        b.take_batch();
        assert!(b.offer(job(3, 4, 1)));
        assert_eq!(b.shed(), 1);
    }

    #[test]
    fn sjf_picks_cheapest_with_stable_ties() {
        let mut b = Batcher::new(BatcherConfig {
            max_batch: 2,
            max_linger: 100,
            queue_depth: 10,
            policy: QueuePolicy::ShortestJobFirst,
        });
        b.offer(job(0, 1, 50));
        b.offer(job(1, 2, 10));
        b.offer(job(2, 3, 10));
        b.offer(job(3, 4, 5));
        let batch = b.take_batch();
        // Cheapest two: cost 5 (id 3) and the earlier of the two cost-10s
        // (id 1), returned in arrival order.
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(b.len(), 2);
        let rest = b.take_batch();
        assert_eq!(rest.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        Batcher::new(BatcherConfig {
            max_batch: 0,
            ..BatcherConfig::default()
        });
    }
}
