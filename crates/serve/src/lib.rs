//! # recross-serve — online request-serving simulation
//!
//! The paper's figures (and the rest of this reproduction) measure
//! *closed-loop throughput*: run a fixed trace as fast as the hardware
//! allows. Production recommendation inference is the opposite regime —
//! an **open loop** where user requests arrive on their own schedule and
//! the system is judged on tail latency at a given offered load (the
//! framing of the RecNMP and UpDLRM serving studies). This crate adds that
//! missing serving layer on top of the cycle-accurate accelerator models:
//!
//! * [`arrival`] — Poisson and bursty (MMPP-2) arrival processes that turn
//!   a [`recross_workload::TraceGenerator`] trace into timestamped
//!   requests, deterministically from a seed;
//! * [`tenant`] — multi-tenant traffic classes: a [`TenantMix`] of named
//!   [`TenantClass`]es (share of load, arrival shape, per-request
//!   deadline, [`Priority`]) generating one merged stream of
//!   deadline-tagged [`TenantRequest`]s;
//! * [`batch`] — a bounded size-or-timeout batching queue with FIFO,
//!   shortest-job-first, or earliest-deadline-first dequeue, tail-drop
//!   load shedding, optional deadline shedding, and optional adaptive
//!   linger (the timeout shrinks as the queue fills);
//! * [`sim`] — a discrete-event loop running one server (queue + prepared
//!   accelerator [`ServiceSession`](recross_nmp::session::ServiceSession))
//!   per memory channel, sharded by
//!   [`recross_nmp::multichannel::ChannelPlan`], charging each dispatched
//!   batch its cycle-accurate session
//!   [`service`](recross_nmp::session::ServiceSession::service) time;
//!   sessions opened once ([`open_sessions`]) carry their resolved layout
//!   state and memoized service times across runs;
//! * [`obs`] — cross-layer tracing ([`ServeObs`]): run the same
//!   simulation through [`simulate_sessions_obs`] /
//!   [`simulate_tenant_sessions_obs`] (byte-identical reports — tracing
//!   never perturbs pricing) and get a unified Perfetto timeline from
//!   tenant request lanes down to per-bank DRAM commands, plus a
//!   deterministic [`ObsReport`] with bottleneck attribution;
//! * [`slo`] — closed-loop SLO throughput searches: deterministic
//!   bisection over offered QPS for the highest rate whose p99 latency
//!   meets a bound ([`slo_search`]) or at which every tenant of a mix
//!   meets its own deadline ([`slo_search_tenants`]);
//! * [`hist`] / [`report`] — a mergeable log-scale latency histogram
//!   (p50…p999 within ~3 % relative error) and a JSON [`ServeReport`]
//!   with goodput, shed rate, queue-depth series, service-cache stats,
//!   per-channel utilization, and per-tenant [`TenantReport`] sections.
//!
//! Everything is integer cycles and in-repo PRNG, so identical seeds give
//! byte-identical reports on any platform.
//!
//! # Example: a two-tenant deadline-aware run
//!
//! Serve a 70/30 mix of a deadline-tight interactive tenant and a lax
//! bulk tenant through EDF dequeue with deadline shedding, then read the
//! per-tenant outcome:
//!
//! ```
//! use recross_nmp::cpu::CpuBaseline;
//! use recross_nmp::multichannel::ChannelPlan;
//! use recross_serve::{
//!     simulate_tenants, BatcherConfig, Priority, QueuePolicy, TenantClass,
//!     TenantMix, TenantProcess,
//! };
//! use recross_workload::TraceGenerator;
//!
//! let dram = recross_dram::DramConfig::ddr5_4800();
//! let cps = dram.cycles_per_sec();
//! // 48 single-request batches = 48 requests.
//! let trace = TraceGenerator::criteo_scaled(32, 100)
//!     .batch_size(1)
//!     .pooling(8)
//!     .batches(48)
//!     .generate(7);
//! let plan = ChannelPlan::balance_by_load(&trace, 2);
//!
//! let mix = TenantMix::new(vec![
//!     TenantClass::new("rt", 0.7, TenantProcess::Poisson, 200.0, Priority::High),
//!     TenantClass::new("batch", 0.3, TenantProcess::Bursty, 5_000.0, Priority::Low),
//! ]);
//! let requests = mix.requests(trace.batches.len(), 50_000.0, cps, 7);
//!
//! let cfg = BatcherConfig {
//!     policy: QueuePolicy::Edf,
//!     shed_expired: true,
//!     adaptive_linger: true,
//!     ..BatcherConfig::default()
//! };
//! let report = simulate_tenants(
//!     "CPU", &trace, &plan, &requests, &mix, cfg, cps,
//!     |_, _| CpuBaseline::new(dram.clone()),
//! );
//!
//! assert_eq!(report.tenants.len(), 2);
//! let rt = &report.tenants[0];
//! // Counters partition the tenant's traffic exactly.
//! assert_eq!(
//!     rt.requests,
//!     rt.completed + rt.missed + rt.queue_shed + rt.deadline_shed
//! );
//! // Per-tenant p99 latency, in microseconds.
//! let p99_us = report.cycles_to_us(rt.latency.quantile(0.99));
//! assert!(p99_us >= 0.0);
//! println!("rt p99 = {p99_us} µs");
//! ```

#![deny(missing_docs)]

pub mod arrival;
pub mod batch;
pub mod hist;
pub mod obs;
pub mod report;
pub mod sim;
pub mod slo;
pub mod tenant;

pub use arrival::ArrivalProcess;
pub use batch::{Batcher, BatcherConfig, QueuePolicy, QueuedJob};
pub use hist::LatencyHistogram;
pub use obs::{LifecycleTotals, ObsChannel, ObsReport, ObsTenant, ServeObs};
pub use report::{ChannelReport, ServeReport, TenantReport};
pub use sim::{
    open_sessions, simulate, simulate_sessions, simulate_sessions_obs, simulate_tenant_sessions,
    simulate_tenant_sessions_obs, simulate_tenants,
};
pub use slo::{
    search as slo_search, search_tenants as slo_search_tenants, SloProbe, SloReport,
    TenantSloProbe, TenantSloReport, TenantVerdict,
};
pub use tenant::{Priority, TenantClass, TenantMix, TenantProcess, TenantRequest};
