//! # recross-serve — online request-serving simulation
//!
//! The paper's figures (and the rest of this reproduction) measure
//! *closed-loop throughput*: run a fixed trace as fast as the hardware
//! allows. Production recommendation inference is the opposite regime —
//! an **open loop** where user requests arrive on their own schedule and
//! the system is judged on tail latency at a given offered load (the
//! framing of the RecNMP and UpDLRM serving studies). This crate adds that
//! missing serving layer on top of the cycle-accurate accelerator models:
//!
//! * [`arrival`] — Poisson and bursty (MMPP-2) arrival processes that turn
//!   a [`recross_workload::TraceGenerator`] trace into timestamped
//!   requests, deterministically from a seed;
//! * [`batch`] — a bounded size-or-timeout batching queue with FIFO or
//!   shortest-job-first dequeue and tail-drop load shedding;
//! * [`sim`] — a discrete-event loop running one server (queue + prepared
//!   accelerator [`ServiceSession`](recross_nmp::session::ServiceSession))
//!   per memory channel, sharded by
//!   [`recross_nmp::multichannel::ChannelPlan`], charging each dispatched
//!   batch its cycle-accurate session
//!   [`service`](recross_nmp::session::ServiceSession::service) time;
//!   sessions opened once ([`open_sessions`]) carry their resolved layout
//!   state and memoized service times across runs;
//! * [`slo`] — a closed-loop SLO throughput search: deterministic
//!   bisection over offered QPS for the highest rate whose p99 latency
//!   meets a bound with nothing shed, emitting a JSON [`SloReport`];
//! * [`hist`] / [`report`] — a mergeable log-scale latency histogram
//!   (p50…p999 within ~3 % relative error) and a JSON [`ServeReport`]
//!   with goodput, shed rate, queue-depth series, service-cache hit rate,
//!   and per-channel utilization.
//!
//! Everything is integer cycles and in-repo PRNG, so identical seeds give
//! byte-identical reports on any platform.
//!
//! ```
//! use recross_nmp::cpu::CpuBaseline;
//! use recross_nmp::multichannel::ChannelPlan;
//! use recross_serve::{ArrivalProcess, BatcherConfig, simulate};
//! use recross_workload::TraceGenerator;
//!
//! let dram = recross_dram::DramConfig::ddr5_4800();
//! // 32 single-request batches = 32 requests.
//! let trace = TraceGenerator::criteo_scaled(32, 100)
//!     .batch_size(1)
//!     .pooling(8)
//!     .batches(32)
//!     .generate(7);
//! let plan = ChannelPlan::balance_by_load(&trace, 2);
//! let arrivals = ArrivalProcess::poisson(50_000.0)
//!     .timestamps(trace.batches.len(), dram.cycles_per_sec(), 7);
//! let report = simulate(
//!     "CPU",
//!     &trace,
//!     &plan,
//!     &arrivals,
//!     BatcherConfig::default(),
//!     dram.cycles_per_sec(),
//!     |_, _| CpuBaseline::new(dram.clone()),
//! );
//! assert_eq!(report.requests, 32);
//! println!("{}", report.to_json());
//! ```

pub mod arrival;
pub mod batch;
pub mod hist;
pub mod report;
pub mod sim;
pub mod slo;

pub use arrival::ArrivalProcess;
pub use batch::{Batcher, BatcherConfig, QueuePolicy, QueuedJob};
pub use hist::LatencyHistogram;
pub use report::{ChannelReport, ServeReport};
pub use sim::{open_sessions, simulate, simulate_sessions};
pub use slo::{search as slo_search, SloProbe, SloReport};
