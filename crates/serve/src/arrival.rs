//! Request arrival processes.
//!
//! Online recommendation inference is driven by user traffic, not by a
//! closed loop: requests arrive whether or not the server is ready
//! (open-loop load generation, as in the RecNMP and UpDLRM serving
//! studies). Two generators are provided: a memoryless Poisson process and
//! a bursty Markov-modulated Poisson process (MMPP-2) that alternates
//! between an elevated "burst" rate and a quiet background rate — the shape
//! that actually stresses a batching queue's tail.
//!
//! All timestamps are produced from the repo's deterministic PRNG, so a
//! `(process, seed)` pair always yields the same arrival sequence.

use recross_dram::Cycle;
use recross_workload::rng::Xoshiro256pp;

/// A stochastic arrival process generating request timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival times with
    /// mean `1 / qps` seconds.
    Poisson {
        /// Mean offered load in requests per second.
        qps: f64,
    },
    /// Two-state Markov-modulated Poisson process: an *on* (burst) state
    /// with rate `intensity × qps` and an *off* state whose rate is set so
    /// the long-run average stays `qps`. State dwell times are exponential.
    Bursty {
        /// Long-run mean offered load in requests per second.
        qps: f64,
        /// Burst-state rate multiplier (≥ 1). `intensity × on_fraction`
        /// must be ≤ 1 so the off-state rate stays non-negative.
        intensity: f64,
        /// Long-run fraction of time spent in the burst state (in (0, 1)).
        on_fraction: f64,
        /// Mean dwell time of the burst state, in seconds.
        on_dwell_s: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process at `qps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless `qps` is finite and positive.
    pub fn poisson(qps: f64) -> Self {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
        Self::Poisson { qps }
    }

    /// A bursty process with the default shape: 4× rate bursts covering
    /// 20 % of time (so the quiet rate is 0.25× qps), with burst dwells
    /// sized to hold ~16 arrivals on average.
    ///
    /// # Panics
    ///
    /// Panics unless `qps` is finite and positive.
    pub fn bursty(qps: f64) -> Self {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
        let intensity = 4.0;
        Self::Bursty {
            qps,
            intensity,
            on_fraction: 0.2,
            on_dwell_s: 16.0 / (intensity * qps),
        }
    }

    /// The long-run mean offered load in requests per second.
    pub fn qps(&self) -> f64 {
        match *self {
            Self::Poisson { qps } | Self::Bursty { qps, .. } => qps,
        }
    }

    /// Short lowercase label (`"poisson"` / `"bursty"`) for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Poisson { .. } => "poisson",
            Self::Bursty { .. } => "bursty",
        }
    }

    /// Generates `n` nondecreasing arrival timestamps in DRAM cycles
    /// (`cycles_per_sec` converts; use
    /// [`DramConfig::cycles_per_sec`](recross_dram::DramConfig::cycles_per_sec)).
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid (see the variant docs)
    /// or `cycles_per_sec` is not positive.
    pub fn timestamps(&self, n: usize, cycles_per_sec: f64, seed: u64) -> Vec<Cycle> {
        assert!(
            cycles_per_sec.is_finite() && cycles_per_sec > 0.0,
            "cycles_per_sec must be positive"
        );
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let seconds = match *self {
            Self::Poisson { qps } => {
                assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        t += exponential(&mut rng, qps);
                        t
                    })
                    .collect::<Vec<f64>>()
            }
            Self::Bursty {
                qps,
                intensity,
                on_fraction,
                on_dwell_s,
            } => {
                assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
                assert!(intensity >= 1.0, "burst intensity must be >= 1");
                assert!(
                    (0.0..1.0).contains(&on_fraction) && on_fraction > 0.0,
                    "on_fraction must be in (0, 1)"
                );
                assert!(
                    intensity * on_fraction <= 1.0,
                    "intensity x on_fraction must be <= 1 (off rate would go negative)"
                );
                assert!(on_dwell_s > 0.0, "on dwell must be positive");
                let rate_on = intensity * qps;
                let rate_off = qps * (1.0 - intensity * on_fraction) / (1.0 - on_fraction);
                // Mean off dwell chosen so the stationary on-time fraction
                // is exactly `on_fraction`.
                let off_dwell_s = on_dwell_s * (1.0 - on_fraction) / on_fraction;
                let mut t = 0.0;
                let mut on = rng.next_bool(on_fraction);
                let mut dwell_end = t + exponential(
                    &mut rng,
                    1.0 / if on { on_dwell_s } else { off_dwell_s },
                );
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let rate = if on { rate_on } else { rate_off };
                    let next = if rate > 0.0 {
                        t + exponential(&mut rng, rate)
                    } else {
                        f64::INFINITY
                    };
                    if next <= dwell_end {
                        // Arrival within the current dwell.
                        t = next;
                        out.push(t);
                    } else {
                        // Dwell expires first: switch state and (by
                        // memorylessness) resample the next arrival.
                        t = dwell_end;
                        on = !on;
                        dwell_end = t + exponential(
                            &mut rng,
                            1.0 / if on { on_dwell_s } else { off_dwell_s },
                        );
                    }
                }
                out
            }
        };
        let mut prev = 0u64;
        seconds
            .into_iter()
            .map(|s| {
                let c = (s * cycles_per_sec).round() as Cycle;
                prev = prev.max(c);
                prev
            })
            .collect()
    }
}

/// Exponential variate with the given rate (inverse-CDF method).
fn exponential(rng: &mut Xoshiro256pp, rate: f64) -> f64 {
    // next_f64 is in [0, 1); 1 - u is in (0, 1], so ln is finite.
    -(1.0 - rng.next_f64()).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPS: f64 = 2.4e9; // DDR5-4800 command clock

    #[test]
    fn poisson_mean_rate_matches_qps() {
        let n = 20_000;
        let ts = ArrivalProcess::poisson(1_000.0).timestamps(n, CPS, 1);
        assert_eq!(ts.len(), n);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        let span_s = *ts.last().unwrap() as f64 / CPS;
        let rate = n as f64 / span_s;
        assert!(
            (rate - 1_000.0).abs() / 1_000.0 < 0.05,
            "empirical rate {rate} vs 1000"
        );
    }

    #[test]
    fn bursty_mean_rate_matches_qps() {
        let n = 20_000;
        let ts = ArrivalProcess::bursty(1_000.0).timestamps(n, CPS, 2);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        let span_s = *ts.last().unwrap() as f64 / CPS;
        let rate = n as f64 / span_s;
        // Burst dwells add variance; allow a wider band than Poisson.
        assert!(
            (rate - 1_000.0).abs() / 1_000.0 < 0.15,
            "empirical rate {rate} vs 1000"
        );
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        // Index of dispersion of counts in fixed windows: ~1 for Poisson,
        // substantially larger for the MMPP.
        let dispersion = |proc: ArrivalProcess, seed: u64| {
            let ts = proc.timestamps(20_000, CPS, seed);
            let window = (0.01 * CPS) as u64; // 10 ms
            let mut counts = Vec::new();
            let mut edge = window;
            let mut c = 0u64;
            for &t in &ts {
                while t >= edge {
                    counts.push(c as f64);
                    c = 0;
                    edge += window;
                }
                c += 1;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var = counts.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / counts.len() as f64;
            var / mean
        };
        let poisson = dispersion(ArrivalProcess::poisson(1_000.0), 3);
        let bursty = dispersion(ArrivalProcess::bursty(1_000.0), 3);
        assert!(poisson < 2.0, "Poisson dispersion {poisson} should be ~1");
        assert!(
            bursty > 2.0 * poisson,
            "bursty dispersion {bursty} should exceed Poisson {poisson}"
        );
    }

    #[test]
    fn same_seed_is_identical_and_seeds_diverge() {
        let p = ArrivalProcess::poisson(500.0);
        assert_eq!(p.timestamps(100, CPS, 7), p.timestamps(100, CPS, 7));
        assert_ne!(p.timestamps(100, CPS, 7), p.timestamps(100, CPS, 8));
        let b = ArrivalProcess::bursty(500.0);
        assert_eq!(b.timestamps(100, CPS, 7), b.timestamps(100, CPS, 7));
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn zero_qps_rejected() {
        ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "off rate would go negative")]
    fn overloaded_burst_rejected() {
        ArrivalProcess::Bursty {
            qps: 100.0,
            intensity: 10.0,
            on_fraction: 0.5,
            on_dwell_s: 0.01,
        }
        .timestamps(10, CPS, 1);
    }
}
