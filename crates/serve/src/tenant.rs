//! Multi-tenant traffic classes.
//!
//! Production recommendation fleets multiplex tenants with very different
//! latency budgets on the same hardware — an interactive ranking path with
//! a sub-millisecond deadline next to bulk re-scoring traffic that only
//! cares about throughput (the co-located-inference framing that motivates
//! the RecNMP and TensorDIMM tail-latency studies). A [`TenantMix`]
//! describes that multiplex: each [`TenantClass`] owns a share of the
//! aggregate offered load, an arrival-process shape, a per-request
//! relative deadline, and a [`Priority`] used to break scheduling ties.
//!
//! [`TenantMix::requests`] turns the mix into one merged, time-ordered
//! request stream: every tenant draws its own seeded arrival process at
//! `share × aggregate` rate, the streams are merged by timestamp (ties
//! broken by tenant index), and each request is tagged with its tenant and
//! its **absolute** deadline (`arrival + deadline`). The merge is integer
//! cycles end to end, so a `(mix, qps, seed)` triple always yields the
//! same tagged stream — the property the byte-identical `TenantReport`
//! checks in CI rest on.

use recross_dram::Cycle;

use crate::arrival::ArrivalProcess;

/// Scheduling priority of a tenant class.
///
/// Priorities only break ties: the EDF dequeue order is
/// `(deadline, priority high-first, arrival, id)` — see
/// [`QueuePolicy::Edf`](crate::batch::QueuePolicy::Edf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Bulk / best-effort traffic.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-critical traffic; wins ties against lower classes.
    High,
}

impl Priority {
    /// Short lowercase label (`"low"` / `"normal"` / `"high"`) for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Low => "low",
            Self::Normal => "normal",
            Self::High => "high",
        }
    }

    /// Numeric urgency (higher = more urgent) used as the tie-break key.
    pub fn weight(&self) -> u8 {
        match self {
            Self::Low => 0,
            Self::Normal => 1,
            Self::High => 2,
        }
    }

    /// Parses a label as produced by [`kind`](Self::kind).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "low" => Some(Self::Low),
            "normal" | "mid" => Some(Self::Normal),
            "high" => Some(Self::High),
            _ => None,
        }
    }
}

/// Arrival-process shape of one tenant; the rate comes from the mix's
/// aggregate QPS times the tenant's share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantProcess {
    /// Memoryless Poisson arrivals.
    Poisson,
    /// Bursty MMPP-2 arrivals with the default burst shape
    /// ([`ArrivalProcess::bursty`]).
    Bursty,
}

impl TenantProcess {
    /// Short lowercase label (`"poisson"` / `"bursty"`) for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Bursty => "bursty",
        }
    }

    /// Parses a label (`"poisson"`, `"bursty"`, or the alias `"mmpp"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poisson" => Some(Self::Poisson),
            "bursty" | "mmpp" => Some(Self::Bursty),
            _ => None,
        }
    }

    /// The concrete arrival process at the given rate.
    fn at(&self, qps: f64) -> ArrivalProcess {
        match self {
            Self::Poisson => ArrivalProcess::poisson(qps),
            Self::Bursty => ArrivalProcess::bursty(qps),
        }
    }
}

/// One tenant traffic class of a [`TenantMix`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Tenant name as it appears in reports (e.g. `"rt"`).
    pub name: String,
    /// Fraction of the aggregate offered load this tenant generates
    /// (positive; the mix normalizes shares by their sum).
    pub share: f64,
    /// Arrival-process shape.
    pub process: TenantProcess,
    /// Per-request relative deadline in microseconds: a request arriving
    /// at `t` must complete by `t + deadline` or it counts as missed.
    pub deadline_us: f64,
    /// Tie-break priority (see [`Priority`]).
    pub priority: Priority,
}

impl TenantClass {
    /// A tenant class.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty, `share` is not finite and positive, or
    /// `deadline_us` is not finite and positive.
    pub fn new(
        name: impl Into<String>,
        share: f64,
        process: TenantProcess,
        deadline_us: f64,
        priority: Priority,
    ) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "tenant name must be non-empty");
        assert!(
            share.is_finite() && share > 0.0,
            "tenant share must be positive"
        );
        assert!(
            deadline_us.is_finite() && deadline_us > 0.0,
            "tenant deadline must be positive"
        );
        Self {
            name,
            share,
            process,
            deadline_us,
            priority,
        }
    }

    /// The relative deadline in DRAM cycles (rounded to the nearest
    /// cycle).
    pub fn deadline_cycles(&self, cycles_per_sec: f64) -> Cycle {
        (self.deadline_us * 1e-6 * cycles_per_sec).round() as Cycle
    }
}

/// One generated request of a tenant mix: when it arrived, whose it is,
/// and by when it must complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRequest {
    /// Arrival time in cycles.
    pub arrival: Cycle,
    /// Index into the mix's [`classes`](TenantMix::classes).
    pub tenant: usize,
    /// Absolute completion deadline in cycles
    /// (`arrival + class.deadline_cycles`, saturating).
    pub deadline: Cycle,
    /// The tenant's priority weight ([`Priority::weight`]).
    pub priority: u8,
}

/// A validated set of [`TenantClass`]es sharing one serving system.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    classes: Vec<TenantClass>,
}

impl TenantMix {
    /// A mix over the given classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or two classes share a name.
    pub fn new(classes: Vec<TenantClass>) -> Self {
        assert!(!classes.is_empty(), "tenant mix must have at least one class");
        for (i, a) in classes.iter().enumerate() {
            for b in &classes[..i] {
                assert!(a.name != b.name, "duplicate tenant name {:?}", a.name);
            }
        }
        Self { classes }
    }

    /// The classes, in declaration order (the order tenant indices refer
    /// to).
    pub fn classes(&self) -> &[TenantClass] {
        &self.classes
    }

    /// Number of tenant classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the mix has no classes (never true for a constructed mix).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Sum of the raw shares (shares are normalized by this).
    fn total_share(&self) -> f64 {
        self.classes.iter().map(|c| c.share).sum()
    }

    /// Generates `n` tagged requests at aggregate rate `qps`: each tenant
    /// draws its own arrival process at `share/total_share × qps` from a
    /// seed derived from `seed` and its index, and the per-tenant streams
    /// are merged by timestamp (ties broken by tenant index, so the merge
    /// is deterministic). Arrival timestamps are nondecreasing; each
    /// request carries its tenant index and absolute deadline.
    ///
    /// # Panics
    ///
    /// Panics unless `qps` and `cycles_per_sec` are finite and positive.
    pub fn requests(
        &self,
        n: usize,
        qps: f64,
        cycles_per_sec: f64,
        seed: u64,
    ) -> Vec<TenantRequest> {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
        let total = self.total_share();
        // Every tenant generates a full-length stream; the merge takes the
        // earliest n overall, so each tenant's realized share converges to
        // its normalized share without any quota bookkeeping.
        let streams: Vec<Vec<Cycle>> = self
            .classes
            .iter()
            .enumerate()
            .map(|(t, class)| {
                let rate = qps * class.share / total;
                // splitmix64-style odd-constant spread keeps per-tenant
                // seeds distinct for any base seed.
                let tenant_seed =
                    seed.wrapping_add((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                class.process.at(rate).timestamps(n, cycles_per_sec, tenant_seed)
            })
            .collect();
        let deadlines: Vec<Cycle> = self
            .classes
            .iter()
            .map(|c| c.deadline_cycles(cycles_per_sec))
            .collect();
        let mut cursor = vec![0usize; self.classes.len()];
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let t = (0..self.classes.len())
                .filter(|&t| cursor[t] < streams[t].len())
                .min_by_key(|&t| (streams[t][cursor[t]], t))
                .expect("per-tenant streams cover n requests");
            let arrival = streams[t][cursor[t]];
            cursor[t] += 1;
            out.push(TenantRequest {
                arrival,
                tenant: t,
                deadline: arrival.saturating_add(deadlines[t]),
                priority: self.classes[t].priority.weight(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPS: f64 = 2.4e9;

    fn two_tenants() -> TenantMix {
        TenantMix::new(vec![
            TenantClass::new("rt", 0.7, TenantProcess::Poisson, 200.0, Priority::High),
            TenantClass::new("batch", 0.3, TenantProcess::Bursty, 5_000.0, Priority::Low),
        ])
    }

    #[test]
    fn merged_stream_is_ordered_and_tagged() {
        let mix = two_tenants();
        let reqs = mix.requests(2_000, 50_000.0, CPS, 9);
        assert_eq!(reqs.len(), 2_000);
        assert!(
            reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrivals nondecreasing"
        );
        for r in &reqs {
            assert!(r.tenant < 2);
            let dl = mix.classes()[r.tenant].deadline_cycles(CPS);
            assert_eq!(r.deadline, r.arrival + dl);
            assert_eq!(r.priority, mix.classes()[r.tenant].priority.weight());
        }
    }

    #[test]
    fn realized_shares_track_declared_shares() {
        let mix = two_tenants();
        let reqs = mix.requests(4_000, 100_000.0, CPS, 3);
        let rt = reqs.iter().filter(|r| r.tenant == 0).count() as f64 / 4_000.0;
        assert!(
            (rt - 0.7).abs() < 0.05,
            "rt share {rt} should be near 0.7"
        );
    }

    #[test]
    fn same_seed_same_stream_and_seeds_diverge() {
        let mix = two_tenants();
        assert_eq!(
            mix.requests(500, 50_000.0, CPS, 7),
            mix.requests(500, 50_000.0, CPS, 7)
        );
        assert_ne!(
            mix.requests(500, 50_000.0, CPS, 7),
            mix.requests(500, 50_000.0, CPS, 8)
        );
    }

    #[test]
    fn shares_are_normalized() {
        // Shares 2:1 behave exactly like 0.667:0.333.
        let a = TenantMix::new(vec![
            TenantClass::new("x", 2.0, TenantProcess::Poisson, 100.0, Priority::Normal),
            TenantClass::new("y", 1.0, TenantProcess::Poisson, 100.0, Priority::Normal),
        ]);
        let b = TenantMix::new(vec![
            TenantClass::new("x", 2.0 / 3.0, TenantProcess::Poisson, 100.0, Priority::Normal),
            TenantClass::new("y", 1.0 / 3.0, TenantProcess::Poisson, 100.0, Priority::Normal),
        ]);
        assert_eq!(
            a.requests(200, 10_000.0, CPS, 5),
            b.requests(200, 10_000.0, CPS, 5)
        );
    }

    #[test]
    fn labels_roundtrip() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::parse(p.kind()), Some(p));
        }
        assert_eq!(Priority::parse("mid"), Some(Priority::Normal));
        assert_eq!(Priority::parse("urgent"), None);
        for p in [TenantProcess::Poisson, TenantProcess::Bursty] {
            assert_eq!(TenantProcess::parse(p.kind()), Some(p));
        }
        assert_eq!(TenantProcess::parse("mmpp"), Some(TenantProcess::Bursty));
        assert_eq!(TenantProcess::parse("uniform"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate tenant name")]
    fn duplicate_names_rejected() {
        TenantMix::new(vec![
            TenantClass::new("a", 0.5, TenantProcess::Poisson, 100.0, Priority::Normal),
            TenantClass::new("a", 0.5, TenantProcess::Poisson, 100.0, Priority::Normal),
        ]);
    }

    #[test]
    #[should_panic(expected = "tenant share must be positive")]
    fn zero_share_rejected() {
        TenantClass::new("a", 0.0, TenantProcess::Poisson, 100.0, Priority::Normal);
    }

    #[test]
    #[should_panic(expected = "tenant deadline must be positive")]
    fn zero_deadline_rejected() {
        TenantClass::new("a", 0.5, TenantProcess::Poisson, 0.0, Priority::Normal);
    }
}
