//! Cross-layer observability for serving runs.
//!
//! [`ServeObs`] carries a [`recross_obs::Recorder`] through one serving
//! simulation and assembles a single timeline spanning every layer of the
//! stack:
//!
//! * one **tenant group** per traffic class, holding request *lanes* —
//!   each request becomes a span from arrival to resolution (completion,
//!   queue shed, or deadline shed), with dispatch/drop instants per
//!   channel part, packed greedily onto the fewest non-overlapping lanes;
//! * one **channel group** per memory channel, holding the server track
//!   (one span per dispatched batch, with a cache hit/miss instant), the
//!   queue-depth counter (sampled on every queue transition), and — when
//!   DRAM tracing is on — the per-bank command tracks and PE occupancy
//!   tracks from [`recross_dram::traceviz`], offset to simulation time.
//!
//! The recorder exports to Perfetto/Chrome-trace JSON
//! ([`ServeObs::write_chrome_trace`]), and [`ServeObs::obs_report`]
//! distills the same evidence into a deterministic [`ObsReport`] with
//! bottleneck attribution: per-channel busy/idle split, queue-depth
//! percentiles, and the DRAM-level [`CommandAttribution`] (C/A vs data
//! bus, tRCD/tRP overhead, bank conflicts, PE utilization).
//!
//! Everything is integer cycles internally; timestamps scale to
//! microseconds only at export, so traced runs are byte-identical across
//! reruns — and the simulation itself is priced identically with tracing
//! on or off (asserted in `sim`'s tests).

use std::io::Write;

use recross_dram::traceviz::{dram_tracks, record_commands, DramTracks};
use recross_dram::{CommandAttribution, Cycle, DramConfig, IssuedCommand};
use recross_obs::{Recorder, TrackId};

use crate::report::{fmt_f64, json_string, ServeReport};

/// Request-fate tallies accumulated while synthesizing request lanes;
/// one count per lifecycle outcome, plus the span total the lifecycle
/// test checks against the [`ServeReport`] counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifecycleTotals {
    /// Requests that completed by their deadline.
    pub completed: u64,
    /// Requests that completed after their deadline.
    pub late: u64,
    /// Requests dropped by a full queue on some channel.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding.
    pub deadline_shed: u64,
    /// Request lifecycle spans recorded (one per request).
    pub spans: u64,
}

/// One request lane: the track and the cycle at which it frees up.
struct Lane {
    track: TrackId,
    free: Cycle,
}

/// Per-tenant lane group.
struct LaneGroup {
    root: TrackId,
    lanes: Vec<Lane>,
}

/// Per-channel observability tracks and accumulators.
struct ChannelTracks {
    server: TrackId,
    depth: TrackId,
    dram: Option<DramTracks>,
    /// Commands issued by this channel's dispatches, offset to
    /// simulation time (for post-hoc attribution).
    commands: Vec<IssuedCommand>,
}

/// The cross-layer trace recorder for one serving run.
///
/// Create one per traced simulation, pass it to
/// [`simulate_sessions_obs`](crate::sim::simulate_sessions_obs) or
/// [`simulate_tenant_sessions_obs`](crate::sim::simulate_tenant_sessions_obs),
/// then export the timeline ([`write_chrome_trace`](Self::write_chrome_trace))
/// and the attribution summary ([`obs_report`](Self::obs_report)).
pub struct ServeObs {
    rec: Recorder,
    dram: DramConfig,
    trace_dram: bool,
    begun: bool,
    groups: Vec<LaneGroup>,
    channels: Vec<ChannelTracks>,
    totals: LifecycleTotals,
}

impl ServeObs {
    /// A recorder with full tracing — request lanes, server spans, queue
    /// gauges, and per-dispatch DRAM command tracks (each dispatch re-runs
    /// the engine with command tracing; pricing is unchanged, asserted in
    /// debug builds).
    pub fn new(dram: DramConfig) -> Self {
        Self {
            rec: Recorder::new(),
            dram,
            trace_dram: true,
            begun: false,
            groups: Vec::new(),
            channels: Vec::new(),
            totals: LifecycleTotals::default(),
        }
    }

    /// Enables or disables the DRAM command layer (on by default). With
    /// it off, the timeline keeps the serve-level tracks only and
    /// [`ObsReport`] channels carry no [`CommandAttribution`].
    pub fn set_dram_trace(&mut self, on: bool) {
        self.trace_dram = on;
    }

    /// Whether dispatches should be traced down to DRAM commands.
    pub fn dram_trace(&self) -> bool {
        self.trace_dram
    }

    /// The underlying recorder (e.g. for [`Recorder::validate`]).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Request-fate tallies from the recorded lifecycle spans; all zero
    /// until a simulation has run.
    pub fn lifecycle_totals(&self) -> &LifecycleTotals {
        &self.totals
    }

    /// Writes the unified Perfetto/Chrome-trace timeline (open with
    /// `ui.perfetto.dev` or `chrome://tracing`). Timestamps are scaled
    /// from cycles to microseconds with the DRAM command clock.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        recross_obs::write_chrome_trace(&self.rec, self.dram.cycles_to_ns(1), w)
    }

    /// [`write_chrome_trace`](Self::write_chrome_trace) into a `String`.
    pub fn chrome_trace_string(&self) -> String {
        recross_obs::chrome_trace_string(&self.rec, self.dram.cycles_to_ns(1))
    }

    /// Distills the trace into a deterministic [`ObsReport`] consistent
    /// with `report` (same run's [`ServeReport`]): per-channel busy/idle
    /// fractions and queue-depth percentiles come straight from the
    /// report's channels, the lifecycle counts from the recorded request
    /// lanes, and — when DRAM tracing was on — each channel's command
    /// stream is attributed over the run's makespan.
    ///
    /// # Panics
    ///
    /// Panics if `report` has a different channel count than the traced
    /// run (i.e. it is not the report this recorder observed).
    pub fn obs_report(&self, report: &ServeReport) -> ObsReport {
        assert_eq!(
            report.channels.len(),
            self.channels.len(),
            "report must come from the traced run"
        );
        let channels = self
            .channels
            .iter()
            .zip(&report.channels)
            .map(|(ct, cr)| ObsChannel {
                busy_fraction: cr.utilization,
                idle_fraction: 1.0 - cr.utilization,
                depth_p50: cr.depth_p50,
                depth_p99: cr.depth_p99,
                depth_max: cr.depth_max,
                dispatches: cr.dispatches,
                queue_shed: cr.shed,
                deadline_shed: cr.expired,
                attribution: if self.trace_dram {
                    Some(CommandAttribution::from_commands(
                        &ct.commands,
                        &self.dram,
                        report.makespan_cycles,
                    ))
                } else {
                    None
                },
            })
            .collect();
        ObsReport {
            name: report.name.clone(),
            requests: report.requests,
            completed: self.totals.completed,
            late: self.totals.late,
            queue_shed: self.totals.queue_shed,
            deadline_shed: self.totals.deadline_shed,
            lifecycle_spans: self.totals.spans,
            makespan_cycles: report.makespan_cycles,
            channels,
        }
    }

    // ---- hooks used by the simulator (crate-private) ----

    /// Creates the track forest: one lane group per tenant class (or a
    /// single `"requests"` group), one channel group per channel.
    pub(crate) fn begin(&mut self, channels: usize, groups: &[String]) {
        assert!(!self.begun, "one ServeObs serves one simulation");
        self.begun = true;
        for g in groups {
            let root = self.rec.track(&format!("tenant: {g}"), None);
            self.groups.push(LaneGroup {
                root,
                lanes: Vec::new(),
            });
        }
        for ch in 0..channels {
            let root = self.rec.track(&format!("channel {ch}"), None);
            let server = self.rec.track("server", Some(root));
            let depth = self.rec.track("queue depth", Some(root));
            let dram = self
                .trace_dram
                .then(|| dram_tracks(&mut self.rec, root, &self.dram));
            self.channels.push(ChannelTracks {
                server,
                depth,
                dram,
                commands: Vec::new(),
            });
        }
    }

    /// Samples channel `ch`'s queue depth at cycle `t`.
    pub(crate) fn depth_sample(&mut self, ch: usize, t: Cycle, depth: usize) {
        self.rec
            .counter(self.channels[ch].depth, "depth", t, depth as f64);
    }

    /// Records one dispatched batch: a service span on the channel's
    /// server track plus a memo hit/miss instant at dispatch time.
    pub(crate) fn service_span(
        &mut self,
        ch: usize,
        batch_idx: u64,
        jobs: usize,
        td: Cycle,
        done: Cycle,
        cache_hit: bool,
    ) {
        let server = self.channels[ch].server;
        self.rec
            .span(server, &format!("batch#{batch_idx} ({jobs} req)"), td, done);
        let tag = if cache_hit { "cache hit" } else { "cache miss" };
        self.rec.instant(server, tag, td);
    }

    /// Records one dispatch's DRAM command stream (priced at batch-local
    /// cycle 0) offset to simulation time `td`: spans on the channel's
    /// bank/PE tracks plus the attribution accumulator.
    pub(crate) fn batch_commands(&mut self, ch: usize, td: Cycle, commands: &[IssuedCommand]) {
        let ct = &mut self.channels[ch];
        let Some(tracks) = ct.dram.as_mut() else {
            return;
        };
        record_commands(&mut self.rec, tracks, &self.dram, commands, td);
        ct.commands.extend(commands.iter().map(|c| IssuedCommand {
            command: c.command,
            cycle: c.cycle + td,
        }));
    }

    /// Records one request's lifecycle span on the first free lane of its
    /// tenant group (creating a lane when all are occupied), plus sorted
    /// per-channel instants, and tallies the outcome.
    pub(crate) fn request_span(
        &mut self,
        group: usize,
        name: &str,
        start: Cycle,
        end: Cycle,
        instants: &[(Cycle, String)],
    ) {
        let g = &mut self.groups[group];
        let lane = match g.lanes.iter_mut().find(|l| l.free <= start) {
            Some(l) => {
                l.free = end;
                l.track
            }
            None => {
                let idx = g.lanes.len();
                let track = self.rec.track(&format!("lane {idx}"), Some(g.root));
                g.lanes.push(Lane { track, free: end });
                track
            }
        };
        self.rec.span(lane, name, start, end);
        debug_assert!(instants.windows(2).all(|w| w[0].0 <= w[1].0));
        for (t, label) in instants {
            self.rec.instant(lane, label, *t);
        }
        self.totals.spans += 1;
    }

    /// Tallies one resolved request (called alongside
    /// [`request_span`](Self::request_span)).
    pub(crate) fn tally(&mut self, fate: RequestFate) {
        match fate {
            RequestFate::Completed => self.totals.completed += 1,
            RequestFate::Late => self.totals.late += 1,
            RequestFate::QueueShed => self.totals.queue_shed += 1,
            RequestFate::DeadlineShed => self.totals.deadline_shed += 1,
        }
    }
}

/// How one request's lifecycle resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestFate {
    /// Completed by its deadline.
    Completed,
    /// Completed after its deadline.
    Late,
    /// Dropped by a full queue on some channel.
    QueueShed,
    /// Dropped by deadline shedding.
    DeadlineShed,
}

impl RequestFate {
    /// Lifecycle-span label.
    pub(crate) fn label(self) -> &'static str {
        match self {
            RequestFate::Completed => "completed",
            RequestFate::Late => "late",
            RequestFate::QueueShed => "queue-shed",
            RequestFate::DeadlineShed => "deadline-shed",
        }
    }
}

/// Per-channel slice of an [`ObsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsChannel {
    /// Fraction of the makespan the channel's server spent servicing.
    pub busy_fraction: f64,
    /// `1 - busy_fraction`.
    pub idle_fraction: f64,
    /// Median sampled queue depth (see
    /// [`ChannelReport::depth_p50`](crate::report::ChannelReport::depth_p50)).
    pub depth_p50: u64,
    /// 99th-percentile sampled queue depth.
    pub depth_p99: u64,
    /// Maximum sampled queue depth.
    pub depth_max: u64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Requests shed at this channel's queue (admission tail-drop).
    pub queue_shed: u64,
    /// Requests shed at this channel by deadline shedding.
    pub deadline_shed: u64,
    /// DRAM-level bottleneck attribution over the run's makespan; `None`
    /// when DRAM tracing was off.
    pub attribution: Option<CommandAttribution>,
}

/// Deterministic bottleneck-attribution summary of one traced serving
/// run — the machine-readable counterpart of the Perfetto timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Architecture name, from the run's [`ServeReport`].
    pub name: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests completed by their deadline.
    pub completed: u64,
    /// Requests completed after their deadline.
    pub late: u64,
    /// Requests dropped by a full queue.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding.
    pub deadline_shed: u64,
    /// Request lifecycle spans recorded (one per request; the four fate
    /// counters partition it exactly).
    pub lifecycle_spans: u64,
    /// Run makespan in cycles (attribution window).
    pub makespan_cycles: Cycle,
    /// Per-channel busy/idle split, queue-depth percentiles, and DRAM
    /// attribution.
    pub channels: Vec<ObsChannel>,
}

impl ObsReport {
    /// The report as a JSON object string (no trailing newline), with the
    /// workspace's deterministic float formatting.
    pub fn to_json(&self) -> String {
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"busy_fraction\":{},\"idle_fraction\":{},",
                        "\"queue_depth\":{{\"p50\":{},\"p99\":{},\"max\":{}}},",
                        "\"dispatches\":{},\"queue_shed\":{},\"deadline_shed\":{},",
                        "\"dram\":{}}}"
                    ),
                    fmt_f64(c.busy_fraction),
                    fmt_f64(c.idle_fraction),
                    c.depth_p50,
                    c.depth_p99,
                    c.depth_max,
                    c.dispatches,
                    c.queue_shed,
                    c.deadline_shed,
                    c.attribution
                        .as_ref()
                        .map(|a| a.to_json())
                        .unwrap_or_else(|| "null".to_string()),
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"experiment\":\"serve_trace\",\"arch\":{},\"requests\":{},",
                "\"completed\":{},\"late\":{},\"queue_shed\":{},\"deadline_shed\":{},",
                "\"lifecycle_spans\":{},\"makespan_cycles\":{},\"channels\":[{}]}}"
            ),
            json_string(&self.name),
            self.requests,
            self.completed,
            self.late,
            self.queue_shed,
            self.deadline_shed,
            self.lifecycle_spans,
            self.makespan_cycles,
            channels.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_builds_the_track_forest() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.begin(2, &["rt".to_string(), "batch".to_string()]);
        let banks = DramConfig::ddr5_4800().topology.banks_per_channel() as usize;
        // 2 tenant roots + per channel: root + server + depth + banks.
        assert_eq!(obs.recorder().track_count(), 2 + 2 * (3 + banks));
        assert_eq!(obs.recorder().validate(), Ok(()));
    }

    #[test]
    fn timeline_only_mode_skips_bank_tracks() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.begin(1, &["requests".to_string()]);
        assert_eq!(obs.recorder().track_count(), 1 + 3);
        obs.batch_commands(0, 100, &[]);
        assert!(obs.channels[0].commands.is_empty());
    }

    #[test]
    fn request_spans_pack_onto_fewest_lanes() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.begin(1, &["requests".to_string()]);
        // Two overlapping requests need two lanes; a third starting after
        // the first ends reuses lane 0.
        obs.request_span(0, "req#0 completed", 0, 100, &[]);
        obs.request_span(0, "req#1 completed", 50, 150, &[(60, "dispatch ch0".into())]);
        obs.request_span(0, "req#2 completed", 120, 200, &[]);
        assert_eq!(obs.groups[0].lanes.len(), 2);
        assert_eq!(obs.lifecycle_totals().spans, 3);
        assert_eq!(obs.recorder().validate(), Ok(()));
    }

    #[test]
    fn obs_report_json_is_deterministic_and_balanced() {
        let report = ObsReport {
            name: "CPU".into(),
            requests: 4,
            completed: 2,
            late: 1,
            queue_shed: 1,
            deadline_shed: 0,
            lifecycle_spans: 4,
            makespan_cycles: 1000,
            channels: vec![ObsChannel {
                busy_fraction: 0.25,
                idle_fraction: 0.75,
                depth_p50: 1,
                depth_p99: 3,
                depth_max: 3,
                dispatches: 2,
                queue_shed: 1,
                deadline_shed: 0,
                attribution: None,
            }],
        };
        let json = report.to_json();
        assert_eq!(json, report.clone().to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"experiment\":\"serve_trace\"",
            "\"lifecycle_spans\":4",
            "\"queue_depth\":{\"p50\":1,\"p99\":3,\"max\":3}",
            "\"dram\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
