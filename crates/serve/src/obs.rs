//! Cross-layer observability for serving runs.
//!
//! [`ServeObs`] carries a [`recross_obs::Recorder`] through one serving
//! simulation and assembles a single timeline spanning every layer of the
//! stack:
//!
//! * one **tenant group** per traffic class, holding request *lanes* —
//!   each request becomes a span from arrival to resolution (completion,
//!   queue shed, or deadline shed), with dispatch/drop instants per
//!   channel part, packed greedily onto the fewest non-overlapping lanes;
//! * one **channel group** per memory channel, holding the server track
//!   (one span per dispatched batch, with a cache hit/miss instant), the
//!   queue-depth counter (sampled on every queue transition), and — when
//!   DRAM tracing is on — the per-bank command tracks and PE occupancy
//!   tracks from [`recross_dram::traceviz`], offset to simulation time.
//!
//! The recorder exports to Perfetto/Chrome-trace JSON
//! ([`ServeObs::write_chrome_trace`]), and [`ServeObs::obs_report`]
//! distills the same evidence into a deterministic [`ObsReport`] with
//! bottleneck attribution: per-channel busy/idle split, queue-depth
//! percentiles, and the DRAM-level [`CommandAttribution`] (C/A vs data
//! bus, tRCD/tRP overhead, bank conflicts, PE utilization).
//!
//! Everything is integer cycles internally; timestamps scale to
//! microseconds only at export, so traced runs are byte-identical across
//! reruns — and the simulation itself is priced identically with tracing
//! on or off (asserted in `sim`'s tests).
//!
//! # Long runs: streaming and online aggregation
//!
//! By default the recorder buffers every event for after-the-fact export.
//! For long runs, configure the sinks *before* the simulation instead:
//! [`ServeObs::stream_to`] attaches a bounded-memory streaming Perfetto
//! exporter (byte-identical output to the in-memory path),
//! [`ServeObs::unbuffer`] drops the in-memory buffer,
//! [`ServeObs::ring_buffer`] keeps only the newest N events with an
//! explicit drop counter, and [`ServeObs::enable_agg`] folds the stream
//! into [`Aggregates`] online. Call [`ServeObs::finish`] after the run to
//! flush streamed output. The [`ObsReport`] carries the recorder's heap
//! high-water mark and per-sink drop counters, so capped captures are
//! visibly capped.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use recross_dram::attribution::AttributionBuilder;
use recross_dram::traceviz::{dram_tracks, record_commands, DramTracks};
use recross_dram::{CommandAttribution, Cycle, DramConfig, IssuedCommand};
use recross_obs::agg::{parse_fate, Aggregates, Aggregator};
use recross_obs::{ChromeStreamSink, Recorder, RingSink, SinkStats, TrackId};

use crate::hist::LatencyHistogram;
use crate::report::{fmt_f64, json_string, ServeReport};

/// Request-fate tallies accumulated while synthesizing request lanes;
/// one count per lifecycle outcome, plus the span total the lifecycle
/// test checks against the [`ServeReport`] counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifecycleTotals {
    /// Requests that completed by their deadline.
    pub completed: u64,
    /// Requests that completed after their deadline.
    pub late: u64,
    /// Requests dropped by a full queue on some channel.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding.
    pub deadline_shed: u64,
    /// Request lifecycle spans recorded (one per request).
    pub spans: u64,
}

/// One request lane: the track and the cycle at which it frees up.
struct Lane {
    track: TrackId,
    free: Cycle,
}

/// Per-tenant lane group.
struct LaneGroup {
    root: TrackId,
    lanes: Vec<Lane>,
}

/// Per-channel observability tracks and accumulators.
struct ChannelTracks {
    server: TrackId,
    depth: TrackId,
    dram: Option<DramTracks>,
    /// Incremental attribution over this channel's dispatched command
    /// streams (folded batch-by-batch, so no command is retained).
    attr: Option<AttributionBuilder>,
}

/// Per-tenant lifecycle accumulators (fates + queue/service timing),
/// filled as request spans are recorded.
#[derive(Debug, Clone, Default)]
struct TenantStats {
    completed: u64,
    late: u64,
    queue_shed: u64,
    deadline_shed: u64,
    queue: LatencyHistogram,
    service: LatencyHistogram,
}

/// The cross-layer trace recorder for one serving run.
///
/// Create one per traced simulation, pass it to
/// [`simulate_sessions_obs`](crate::sim::simulate_sessions_obs) or
/// [`simulate_tenant_sessions_obs`](crate::sim::simulate_tenant_sessions_obs),
/// then export the timeline ([`write_chrome_trace`](Self::write_chrome_trace))
/// and the attribution summary ([`obs_report`](Self::obs_report)).
pub struct ServeObs {
    rec: Recorder,
    dram: DramConfig,
    trace_dram: bool,
    begun: bool,
    groups: Vec<LaneGroup>,
    group_names: Vec<String>,
    channels: Vec<ChannelTracks>,
    totals: LifecycleTotals,
    tenant_stats: Vec<TenantStats>,
    agg: Option<Rc<RefCell<Aggregator>>>,
}

impl ServeObs {
    /// A recorder with full tracing — request lanes, server spans, queue
    /// gauges, and per-dispatch DRAM command tracks (each dispatch re-runs
    /// the engine with command tracing; pricing is unchanged, asserted in
    /// debug builds).
    pub fn new(dram: DramConfig) -> Self {
        Self {
            rec: Recorder::new(),
            dram,
            trace_dram: true,
            begun: false,
            groups: Vec::new(),
            group_names: Vec::new(),
            channels: Vec::new(),
            totals: LifecycleTotals::default(),
            tenant_stats: Vec::new(),
            agg: None,
        }
    }

    /// Attaches a bounded-memory streaming Perfetto exporter writing to
    /// `w`: events are rendered to Chrome-trace JSON as they are recorded
    /// and flushed in fixed chunks, producing bytes identical to
    /// [`chrome_trace_string`](Self::chrome_trace_string) of a buffered
    /// run. Combine with [`unbuffer`](Self::unbuffer) to keep the
    /// resident footprint bounded, and call [`finish`](Self::finish)
    /// after the run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn stream_to<W: Write + 'static>(&mut self, w: W) {
        assert!(!self.begun, "configure sinks before the simulation");
        let ns = self.dram.cycles_to_ns(1);
        self.rec.attach(Box::new(ChromeStreamSink::new(w, ns)));
    }

    /// Drops the in-memory event buffer: nothing is retained, only
    /// attached streaming/aggregation sinks see the events. After this,
    /// [`chrome_trace_string`](Self::chrome_trace_string) exports an
    /// empty trace — stream instead.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn unbuffer(&mut self) {
        assert!(!self.begun, "configure sinks before the simulation");
        self.rec.unbuffer();
    }

    /// Replaces the unbounded in-memory buffer with a ring retaining only
    /// the newest `capacity` events; evictions are counted and surfaced
    /// in the [`ObsReport`]'s sink stats (never silent).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started or `capacity` is 0.
    pub fn ring_buffer(&mut self, capacity: usize) {
        assert!(!self.begun, "configure sinks before the simulation");
        self.rec.unbuffer();
        self.rec.attach(Box::new(RingSink::new(capacity)));
    }

    /// Attaches the online aggregation engine: per-tenant queue/service
    /// histograms, channel busy fractions, span stats and gauge
    /// percentiles computed incrementally, readable afterwards via
    /// [`aggregates`](Self::aggregates).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn enable_agg(&mut self) {
        assert!(!self.begun, "configure sinks before the simulation");
        let agg = Rc::new(RefCell::new(Aggregator::new()));
        self.rec.attach(Box::new(Rc::clone(&agg)));
        self.agg = Some(agg);
    }

    /// The online aggregates (`None` unless [`enable_agg`](Self::enable_agg)
    /// was called before the run).
    pub fn aggregates(&self) -> Option<Aggregates> {
        self.agg.as_ref().map(|a| a.borrow().snapshot())
    }

    /// Finalizes all attached sinks (flushes streamed trace files). Call
    /// once after the simulation; returns the first sink I/O error.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.rec.finish()
    }

    /// Enables or disables the DRAM command layer (on by default). With
    /// it off, the timeline keeps the serve-level tracks only and
    /// [`ObsReport`] channels carry no [`CommandAttribution`].
    pub fn set_dram_trace(&mut self, on: bool) {
        self.trace_dram = on;
    }

    /// Whether dispatches should be traced down to DRAM commands.
    pub fn dram_trace(&self) -> bool {
        self.trace_dram
    }

    /// The underlying recorder (e.g. for [`Recorder::validate`]).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Request-fate tallies from the recorded lifecycle spans; all zero
    /// until a simulation has run.
    pub fn lifecycle_totals(&self) -> &LifecycleTotals {
        &self.totals
    }

    /// Writes the unified Perfetto/Chrome-trace timeline (open with
    /// `ui.perfetto.dev` or `chrome://tracing`). Timestamps are scaled
    /// from cycles to microseconds with the DRAM command clock.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        recross_obs::write_chrome_trace(&self.rec, self.dram.cycles_to_ns(1), w)
    }

    /// [`write_chrome_trace`](Self::write_chrome_trace) into a `String`.
    pub fn chrome_trace_string(&self) -> String {
        recross_obs::chrome_trace_string(&self.rec, self.dram.cycles_to_ns(1))
    }

    /// Distills the trace into a deterministic [`ObsReport`] consistent
    /// with `report` (same run's [`ServeReport`]): per-channel busy/idle
    /// fractions and queue-depth percentiles come straight from the
    /// report's channels, the lifecycle counts from the recorded request
    /// lanes, and — when DRAM tracing was on — each channel's command
    /// stream is attributed over the run's makespan.
    ///
    /// # Panics
    ///
    /// Panics if `report` has a different channel count than the traced
    /// run (i.e. it is not the report this recorder observed).
    pub fn obs_report(&self, report: &ServeReport) -> ObsReport {
        assert_eq!(
            report.channels.len(),
            self.channels.len(),
            "report must come from the traced run"
        );
        let channels = self
            .channels
            .iter()
            .zip(&report.channels)
            .map(|(ct, cr)| ObsChannel {
                busy_fraction: cr.utilization,
                idle_fraction: 1.0 - cr.utilization,
                depth_p50: cr.depth_p50,
                depth_p99: cr.depth_p99,
                depth_max: cr.depth_max,
                dispatches: cr.dispatches,
                queue_shed: cr.shed,
                deadline_shed: cr.expired,
                attribution: ct
                    .attr
                    .as_ref()
                    .map(|b| b.snapshot(report.makespan_cycles)),
            })
            .collect();
        let tenants = self
            .group_names
            .iter()
            .zip(&self.tenant_stats)
            .map(|(name, s)| ObsTenant {
                name: name.clone(),
                completed: s.completed,
                late: s.late,
                queue_shed: s.queue_shed,
                deadline_shed: s.deadline_shed,
                time_in_queue: s.queue.clone(),
                time_in_service: s.service.clone(),
            })
            .collect();
        ObsReport {
            name: report.name.clone(),
            requests: report.requests,
            completed: self.totals.completed,
            late: self.totals.late,
            queue_shed: self.totals.queue_shed,
            deadline_shed: self.totals.deadline_shed,
            lifecycle_spans: self.totals.spans,
            makespan_cycles: report.makespan_cycles,
            heap_capacity: self.rec.heap_capacity(),
            sinks: self.rec.sink_stats(),
            tenants,
            channels,
        }
    }

    // ---- hooks used by the simulator (crate-private) ----

    /// Creates the track forest: one lane group per tenant class (or a
    /// single `"requests"` group), one channel group per channel.
    pub(crate) fn begin(&mut self, channels: usize, groups: &[String]) {
        assert!(!self.begun, "one ServeObs serves one simulation");
        self.begun = true;
        for g in groups {
            let root = self.rec.track(&format!("tenant: {g}"), None);
            self.groups.push(LaneGroup {
                root,
                lanes: Vec::new(),
            });
            self.group_names.push(g.clone());
            self.tenant_stats.push(TenantStats::default());
        }
        for ch in 0..channels {
            let root = self.rec.track(&format!("channel {ch}"), None);
            let server = self.rec.track("server", Some(root));
            let depth = self.rec.track("queue depth", Some(root));
            let dram = self
                .trace_dram
                .then(|| dram_tracks(&mut self.rec, root, &self.dram));
            let attr = self
                .trace_dram
                .then(|| AttributionBuilder::new(&self.dram));
            self.channels.push(ChannelTracks {
                server,
                depth,
                dram,
                attr,
            });
        }
    }

    /// Samples channel `ch`'s queue depth at cycle `t`.
    pub(crate) fn depth_sample(&mut self, ch: usize, t: Cycle, depth: usize) {
        self.rec
            .counter(self.channels[ch].depth, "depth", t, depth as f64);
    }

    /// Records one dispatched batch: a service span on the channel's
    /// server track plus a memo hit/miss instant at dispatch time.
    pub(crate) fn service_span(
        &mut self,
        ch: usize,
        batch_idx: u64,
        jobs: usize,
        td: Cycle,
        done: Cycle,
        cache_hit: bool,
    ) {
        let server = self.channels[ch].server;
        self.rec
            .span(server, &format!("batch#{batch_idx} ({jobs} req)"), td, done);
        let tag = if cache_hit { "cache hit" } else { "cache miss" };
        self.rec.instant(server, tag, td);
    }

    /// Records one dispatch's DRAM command stream (priced at batch-local
    /// cycle 0) offset to simulation time `td`: spans on the channel's
    /// bank/PE tracks plus an incremental fold into the channel's
    /// attribution builder — no command is retained.
    pub(crate) fn batch_commands(&mut self, ch: usize, td: Cycle, commands: &[IssuedCommand]) {
        let ct = &mut self.channels[ch];
        let Some(tracks) = ct.dram.as_mut() else {
            return;
        };
        record_commands(&mut self.rec, tracks, &self.dram, commands, td);
        if let Some(attr) = ct.attr.as_mut() {
            attr.fold(commands, td);
        }
    }

    /// Records one request's lifecycle span on the first free lane of its
    /// tenant group (creating a lane when all are occupied), plus sorted
    /// per-channel instants, and tallies the outcome.
    pub(crate) fn request_span(
        &mut self,
        group: usize,
        name: &str,
        start: Cycle,
        end: Cycle,
        instants: &[(Cycle, String)],
    ) {
        let g = &mut self.groups[group];
        let lane = match g.lanes.iter_mut().find(|l| l.free <= start) {
            Some(l) => {
                l.free = end;
                l.track
            }
            None => {
                let idx = g.lanes.len();
                let track = self.rec.track(&format!("lane {idx}"), Some(g.root));
                g.lanes.push(Lane { track, free: end });
                track
            }
        };
        self.rec.span(lane, name, start, end);
        debug_assert!(instants.windows(2).all(|w| w[0].0 <= w[1].0));
        for (t, label) in instants {
            self.rec.instant(lane, label, *t);
        }
        self.totals.spans += 1;
        // Per-tenant accounting, derived from exactly the evidence the
        // trace records (fate suffix + dispatch instants) so the report's
        // tenant block and `obs::agg`'s streamed aggregates agree by
        // construction.
        if let Some(fate) = parse_fate(name) {
            let stats = &mut self.tenant_stats[group];
            match fate {
                "completed" => stats.completed += 1,
                "late" => stats.late += 1,
                "queue-shed" => stats.queue_shed += 1,
                _ => stats.deadline_shed += 1,
            }
            let mut first = None;
            let mut last = None;
            for (t, label) in instants {
                if label.starts_with("dispatch") {
                    first.get_or_insert(*t);
                    last = Some(*t);
                }
            }
            if let Some(fd) = first {
                stats.queue.record(fd.saturating_sub(start));
            }
            if let Some(ld) = last {
                stats.service.record(end.saturating_sub(ld));
            }
        }
    }

    /// Tallies one resolved request (called alongside
    /// [`request_span`](Self::request_span)).
    pub(crate) fn tally(&mut self, fate: RequestFate) {
        match fate {
            RequestFate::Completed => self.totals.completed += 1,
            RequestFate::Late => self.totals.late += 1,
            RequestFate::QueueShed => self.totals.queue_shed += 1,
            RequestFate::DeadlineShed => self.totals.deadline_shed += 1,
        }
    }
}

/// How one request's lifecycle resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestFate {
    /// Completed by its deadline.
    Completed,
    /// Completed after its deadline.
    Late,
    /// Dropped by a full queue on some channel.
    QueueShed,
    /// Dropped by deadline shedding.
    DeadlineShed,
}

impl RequestFate {
    /// Lifecycle-span label.
    pub(crate) fn label(self) -> &'static str {
        match self {
            RequestFate::Completed => "completed",
            RequestFate::Late => "late",
            RequestFate::QueueShed => "queue-shed",
            RequestFate::DeadlineShed => "deadline-shed",
        }
    }
}

/// Per-channel slice of an [`ObsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsChannel {
    /// Fraction of the makespan the channel's server spent servicing.
    pub busy_fraction: f64,
    /// `1 - busy_fraction`.
    pub idle_fraction: f64,
    /// Median sampled queue depth (see
    /// [`ChannelReport::depth_p50`](crate::report::ChannelReport::depth_p50)).
    pub depth_p50: u64,
    /// 99th-percentile sampled queue depth.
    pub depth_p99: u64,
    /// Maximum sampled queue depth.
    pub depth_max: u64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Requests shed at this channel's queue (admission tail-drop).
    pub queue_shed: u64,
    /// Requests shed at this channel by deadline shedding.
    pub deadline_shed: u64,
    /// DRAM-level bottleneck attribution over the run's makespan; `None`
    /// when DRAM tracing was off.
    pub attribution: Option<CommandAttribution>,
}

/// Per-tenant slice of an [`ObsReport`]: the four fate counters (which
/// partition the tenant's requests exactly) and the time-in-queue /
/// time-in-service histograms. Timing definitions match
/// [`recross_obs::agg`]: time-in-queue is first dispatch minus arrival,
/// time-in-service is lifecycle end minus last dispatch, and requests
/// that never dispatched contribute to counters only.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsTenant {
    /// Tenant class name (`requests` for single-class runs).
    pub name: String,
    /// Requests that completed by their deadline.
    pub completed: u64,
    /// Requests that completed after their deadline.
    pub late: u64,
    /// Requests dropped by a full queue.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding.
    pub deadline_shed: u64,
    /// First-dispatch minus arrival, per dispatched request (cycles).
    pub time_in_queue: LatencyHistogram,
    /// Lifecycle end minus last dispatch, per dispatched request
    /// (cycles).
    pub time_in_service: LatencyHistogram,
}

impl ObsTenant {
    /// Total requests across the four fates.
    pub fn requests(&self) -> u64 {
        self.completed + self.late + self.queue_shed + self.deadline_shed
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"requests\":{},\"completed\":{},\"late\":{},",
                "\"queue_shed\":{},\"deadline_shed\":{},",
                "\"time_in_queue\":{},\"time_in_service\":{}}}"
            ),
            json_string(&self.name),
            self.requests(),
            self.completed,
            self.late,
            self.queue_shed,
            self.deadline_shed,
            self.time_in_queue.summary_json(),
            self.time_in_service.summary_json()
        )
    }
}

/// Deterministic bottleneck-attribution summary of one traced serving
/// run — the machine-readable counterpart of the Perfetto timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Architecture name, from the run's [`ServeReport`].
    pub name: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests completed by their deadline.
    pub completed: u64,
    /// Requests completed after their deadline.
    pub late: u64,
    /// Requests dropped by a full queue.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding.
    pub deadline_shed: u64,
    /// Request lifecycle spans recorded (one per request; the four fate
    /// counters partition it exactly).
    pub lifecycle_spans: u64,
    /// Run makespan in cycles (attribution window).
    pub makespan_cycles: Cycle,
    /// Per-channel busy/idle split, queue-depth percentiles, and DRAM
    /// attribution.
    pub channels: Vec<ObsChannel>,
    /// Per-tenant fate counters and queue/service histograms, in tenant
    /// declaration order. Fate counters sum to `requests` across tenants.
    pub tenants: Vec<ObsTenant>,
    /// Recorder heap high-water mark in bytes (string table, track
    /// forest, and all attached sinks) at report time.
    pub heap_capacity: usize,
    /// Per-sink drop counters and heap footprints at report time. Empty
    /// for an unbuffered recorder with no sinks attached.
    pub sinks: Vec<SinkStats>,
}

impl ObsReport {
    /// The report as a JSON object string (no trailing newline), with the
    /// workspace's deterministic float formatting.
    pub fn to_json(&self) -> String {
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"busy_fraction\":{},\"idle_fraction\":{},",
                        "\"queue_depth\":{{\"p50\":{},\"p99\":{},\"max\":{}}},",
                        "\"dispatches\":{},\"queue_shed\":{},\"deadline_shed\":{},",
                        "\"dram\":{}}}"
                    ),
                    fmt_f64(c.busy_fraction),
                    fmt_f64(c.idle_fraction),
                    c.depth_p50,
                    c.depth_p99,
                    c.depth_max,
                    c.dispatches,
                    c.queue_shed,
                    c.deadline_shed,
                    c.attribution
                        .as_ref()
                        .map(|a| a.to_json())
                        .unwrap_or_else(|| "null".to_string()),
                )
            })
            .collect();
        let tenants: Vec<String> = self.tenants.iter().map(|t| t.to_json()).collect();
        let sinks: Vec<String> = self.sinks.iter().map(|s| s.to_json()).collect();
        format!(
            concat!(
                "{{\"experiment\":\"serve_trace\",\"arch\":{},\"requests\":{},",
                "\"completed\":{},\"late\":{},\"queue_shed\":{},\"deadline_shed\":{},",
                "\"lifecycle_spans\":{},\"makespan_cycles\":{},",
                "\"recorder\":{{\"heap_capacity\":{},\"sinks\":[{}]}},",
                "\"tenants\":[{}],\"channels\":[{}]}}"
            ),
            json_string(&self.name),
            self.requests,
            self.completed,
            self.late,
            self.queue_shed,
            self.deadline_shed,
            self.lifecycle_spans,
            self.makespan_cycles,
            self.heap_capacity,
            sinks.join(","),
            tenants.join(","),
            channels.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ChannelReport;

    /// Minimal ServeReport consistent with a hand-driven ServeObs.
    fn sample_report(channels: usize) -> ServeReport {
        ServeReport {
            name: "CPU".into(),
            requests: 2,
            shed: 1,
            makespan_cycles: 100,
            cycles_per_sec: 2.4e9,
            offered_qps: 1000.0,
            latency: LatencyHistogram::new(),
            depth_series: Vec::new(),
            channels: vec![
                ChannelReport {
                    busy_cycles: 60,
                    utilization: 0.6,
                    dispatches: 1,
                    shed: 1,
                    expired: 0,
                    depth_p50: 1,
                    depth_p99: 1,
                    depth_max: 1,
                };
                channels
            ],
            service_cache: Default::default(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn begin_builds_the_track_forest() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.begin(2, &["rt".to_string(), "batch".to_string()]);
        let banks = DramConfig::ddr5_4800().topology.banks_per_channel() as usize;
        // 2 tenant roots + per channel: root + server + depth + banks.
        assert_eq!(obs.recorder().track_count(), 2 + 2 * (3 + banks));
        assert_eq!(obs.recorder().validate(), Ok(()));
    }

    #[test]
    fn timeline_only_mode_skips_bank_tracks() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.begin(1, &["requests".to_string()]);
        assert_eq!(obs.recorder().track_count(), 1 + 3);
        obs.batch_commands(0, 100, &[]);
        assert!(obs.channels[0].attr.is_none());
    }

    #[test]
    fn request_spans_pack_onto_fewest_lanes() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.begin(1, &["requests".to_string()]);
        // Two overlapping requests need two lanes; a third starting after
        // the first ends reuses lane 0.
        obs.request_span(0, "req#0 completed", 0, 100, &[]);
        obs.request_span(0, "req#1 completed", 50, 150, &[(60, "dispatch ch0".into())]);
        obs.request_span(0, "req#2 completed", 120, 200, &[]);
        assert_eq!(obs.groups[0].lanes.len(), 2);
        assert_eq!(obs.lifecycle_totals().spans, 3);
        assert_eq!(obs.recorder().validate(), Ok(()));
    }

    #[test]
    fn obs_report_json_is_deterministic_and_balanced() {
        let report = ObsReport {
            name: "CPU".into(),
            requests: 4,
            completed: 2,
            late: 1,
            queue_shed: 1,
            deadline_shed: 0,
            lifecycle_spans: 4,
            makespan_cycles: 1000,
            channels: vec![ObsChannel {
                busy_fraction: 0.25,
                idle_fraction: 0.75,
                depth_p50: 1,
                depth_p99: 3,
                depth_max: 3,
                dispatches: 2,
                queue_shed: 1,
                deadline_shed: 0,
                attribution: None,
            }],
            tenants: vec![ObsTenant {
                name: "requests".into(),
                completed: 2,
                late: 1,
                queue_shed: 1,
                deadline_shed: 0,
                time_in_queue: LatencyHistogram::new(),
                time_in_service: LatencyHistogram::new(),
            }],
            heap_capacity: 4096,
            sinks: vec![SinkStats {
                kind: "memory",
                dropped: 0,
                heap_capacity: 4096,
            }],
        };
        let json = report.to_json();
        assert_eq!(json, report.clone().to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"experiment\":\"serve_trace\"",
            "\"lifecycle_spans\":4",
            "\"queue_depth\":{\"p50\":1,\"p99\":3,\"max\":3}",
            "\"dram\":null",
            "\"recorder\":{\"heap_capacity\":4096,\"sinks\":[{\"kind\":\"memory\",\"dropped\":0,\"heap_capacity\":4096}]}",
            "\"tenants\":[{\"name\":\"requests\",\"requests\":4,\"completed\":2,\"late\":1,\"queue_shed\":1,\"deadline_shed\":0,",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn request_spans_feed_per_tenant_histograms() {
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.begin(1, &["rt".to_string(), "batch".to_string()]);
        // Tenant 0: dispatched once at 40, completes at 100 → queue 40,
        // service 60. Tenant 1: shed without ever dispatching.
        obs.request_span(0, "req#0 completed", 0, 100, &[(40, "dispatch ch0".into())]);
        obs.request_span(1, "req#1 queue-shed", 10, 10, &[]);
        obs.tally(RequestFate::Completed);
        obs.tally(RequestFate::QueueShed);
        let report = obs.obs_report(&sample_report(obs.channels.len()));
        assert_eq!(report.tenants.len(), 2);
        let rt = &report.tenants[0];
        assert_eq!((rt.completed, rt.requests()), (1, 1));
        assert_eq!(rt.time_in_queue.quantile(1.0), 40);
        assert_eq!(rt.time_in_service.quantile(1.0), 60);
        let batch = &report.tenants[1];
        assert_eq!((batch.queue_shed, batch.requests()), (1, 1));
        assert_eq!(batch.time_in_queue.count(), 0);
        assert_eq!(batch.time_in_service.count(), 0);
        // The recorder block is populated: buffered recorder retains heap.
        assert!(report.heap_capacity > 0);
        assert_eq!(report.sinks.len(), 1);
        assert_eq!(report.sinks[0].kind, "memory");
    }

    #[test]
    fn streaming_sinks_can_replace_the_memory_buffer() {
        use recross_obs::SharedWriter;
        let out = SharedWriter::new();
        let mut obs = ServeObs::new(DramConfig::ddr5_4800());
        obs.set_dram_trace(false);
        obs.stream_to(out.clone());
        obs.unbuffer();
        obs.enable_agg();
        obs.begin(1, &["requests".to_string()]);
        obs.request_span(0, "req#0 completed", 0, 100, &[(40, "dispatch ch0".into())]);
        obs.finish().unwrap();
        let bytes = out.contents();
        assert!(bytes.starts_with("[\n"), "not a chrome trace: {bytes}");
        assert!(bytes.contains("req#0 completed"));
        let agg = obs.aggregates().unwrap();
        assert_eq!(agg.tenants.len(), 1);
        assert_eq!(agg.tenants[0].completed, 1);
        // Unbuffered: no memory sink retained, so no replayable events.
        assert!(obs.recorder().events().is_empty());
    }
}
