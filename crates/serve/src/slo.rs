//! Closed-loop SLO throughput search.
//!
//! Production capacity planning asks the inverse of a QPS sweep: not "what
//! is the tail latency at this offered load" but "what is the highest
//! offered load whose tail latency still meets the SLO". [`search`]
//! answers it with a deterministic bisection over offered QPS: each probe
//! runs a full serving simulation ([`crate::sim::simulate_sessions`] via
//! the caller-supplied closure), a rate **meets** the SLO when the run
//! shed nothing and its p99 latency is within the bound, and the bracket
//! halves a fixed number of times — so the same seed converges to the
//! same rate, bit for bit, every run (checked in CI).
//!
//! The probe closure is where the [`ServiceSession`] API pays off: every
//! probe replays the same request set at a different rate, so sessions
//! opened once serve all probes and later probes price most batch
//! compositions straight from the memo cache.
//!
//! [`ServiceSession`]: recross_nmp::session::ServiceSession

use recross_nmp::session::SessionStats;

use crate::report::{fmt_f64, json_string, ServeReport};

/// One evaluated rate of an SLO search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloProbe {
    /// Offered rate evaluated (requests/s).
    pub qps: f64,
    /// Whether the rate met the SLO (no shed, p99 within bound).
    pub met: bool,
    /// Measured p99 latency in microseconds.
    pub p99_us: f64,
    /// Requests shed at this rate.
    pub shed: u64,
    /// Service-time memo cache counters of this probe's run.
    pub cache: SessionStats,
}

/// Outcome of one architecture's SLO throughput search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Architecture name (e.g. `"ReCross"`).
    pub arch: String,
    /// The p99 latency bound, microseconds.
    pub slo_p99_us: f64,
    /// Initial bracket low end (requests/s).
    pub bracket_lo_qps: f64,
    /// Initial bracket high end (requests/s).
    pub bracket_hi_qps: f64,
    /// Bisection iterations performed (excludes the two bracket probes).
    pub iterations: u32,
    /// Highest probed rate that met the SLO; `0` when even the bracket's
    /// low end missed it.
    pub max_qps: f64,
    /// Every evaluated rate, in probe order.
    pub probes: Vec<SloProbe>,
}

impl SloReport {
    /// Service-cache counters summed over all probes.
    pub fn cache_total(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for p in &self.probes {
            total.hits += p.cache.hits;
            total.misses += p.cache.misses;
        }
        total
    }

    /// The report as a JSON object string (no trailing newline).
    pub fn to_json(&self) -> String {
        let probes: Vec<String> = self
            .probes
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"qps\":{},\"met\":{},\"p99_us\":{},\"shed\":{},",
                        "\"cache\":{{\"hits\":{},\"misses\":{}}}}}"
                    ),
                    fmt_f64(p.qps),
                    p.met,
                    fmt_f64(p.p99_us),
                    p.shed,
                    p.cache.hits,
                    p.cache.misses
                )
            })
            .collect();
        let total = self.cache_total();
        format!(
            concat!(
                "{{\"arch\":{},\"slo_p99_us\":{},",
                "\"bracket_qps\":[{},{}],\"iterations\":{},",
                "\"max_qps\":{},",
                "\"service_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{}}},",
                "\"probes\":[{}]}}"
            ),
            json_string(&self.arch),
            fmt_f64(self.slo_p99_us),
            fmt_f64(self.bracket_lo_qps),
            fmt_f64(self.bracket_hi_qps),
            self.iterations,
            fmt_f64(self.max_qps),
            total.hits,
            total.misses,
            fmt_f64(total.hit_rate()),
            probes.join(",")
        )
    }
}

/// Extracts the SLO verdict from one serving run.
fn judge(report: &ServeReport, slo_p99_us: f64, qps: f64) -> SloProbe {
    let p99_cycles = report.latency.quantile(0.99);
    let p99_us = report.cycles_to_us(p99_cycles);
    SloProbe {
        qps,
        met: report.shed == 0 && p99_us <= slo_p99_us,
        p99_us,
        shed: report.shed,
        cache: report.service_cache,
    }
}

/// Finds the highest offered QPS meeting a p99 latency SLO by bisection.
///
/// `probe` runs one serving simulation at the given offered rate and
/// returns its [`ServeReport`]; a rate meets the SLO when the run shed no
/// requests and its p99 latency is at most `slo_p99_us` microseconds.
///
/// The search first evaluates both bracket ends, then runs exactly
/// `iterations` bisection steps on `[lo, hi]` (skipped when the bracket
/// ends already decide the answer: `lo` failing means capacity is below
/// the bracket and `max_qps` is 0; `hi` passing means capacity is above
/// it and `max_qps` is `hi`). With `probe` deterministic in its rate, the
/// whole search — probe sequence included — is deterministic.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and both are finite.
pub fn search<F>(
    arch: &str,
    slo_p99_us: f64,
    lo: f64,
    hi: f64,
    iterations: u32,
    mut probe: F,
) -> SloReport
where
    F: FnMut(f64) -> ServeReport,
{
    assert!(
        lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi,
        "SLO search bracket must satisfy 0 < lo < hi, got [{lo}, {hi}]"
    );
    assert!(
        slo_p99_us.is_finite() && slo_p99_us > 0.0,
        "SLO bound must be a positive latency, got {slo_p99_us}"
    );
    let mut probes = Vec::with_capacity(iterations as usize + 2);
    let mut eval = |qps: f64, probes: &mut Vec<SloProbe>| -> bool {
        let p = judge(&probe(qps), slo_p99_us, qps);
        let met = p.met;
        probes.push(p);
        met
    };

    let lo_met = eval(lo, &mut probes);
    if !lo_met {
        return SloReport {
            arch: arch.to_string(),
            slo_p99_us,
            bracket_lo_qps: lo,
            bracket_hi_qps: hi,
            iterations: 0,
            max_qps: 0.0,
            probes,
        };
    }
    let hi_met = eval(hi, &mut probes);
    if hi_met {
        return SloReport {
            arch: arch.to_string(),
            slo_p99_us,
            bracket_lo_qps: lo,
            bracket_hi_qps: hi,
            iterations: 0,
            max_qps: hi,
            probes,
        };
    }

    // Invariant: `best` met, `worst` did not.
    let (mut best, mut worst) = (lo, hi);
    for _ in 0..iterations {
        let mid = 0.5 * (best + worst);
        if eval(mid, &mut probes) {
            best = mid;
        } else {
            worst = mid;
        }
    }
    SloReport {
        arch: arch.to_string(),
        slo_p99_us,
        bracket_lo_qps: lo,
        bracket_hi_qps: hi,
        iterations,
        max_qps: best,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::report::ChannelReport;

    /// A fake serving run: p99 latency grows linearly with offered rate
    /// and the queue sheds past a hard capacity.
    fn fake_run(qps: f64, capacity: f64) -> ServeReport {
        let cycles_per_sec = 2.4e9;
        let p99_us = 10.0 + qps / 1000.0;
        let mut latency = LatencyHistogram::new();
        latency.record((p99_us * 1e-6 * cycles_per_sec) as u64);
        ServeReport {
            name: "fake".into(),
            requests: 100,
            shed: if qps > capacity { 7 } else { 0 },
            makespan_cycles: 1_000_000,
            cycles_per_sec,
            offered_qps: qps,
            latency,
            depth_series: vec![0],
            channels: vec![ChannelReport {
                busy_cycles: 0,
                utilization: 0.0,
                dispatches: 1,
                shed: 0,
            }],
            service_cache: SessionStats { hits: 2, misses: 3 },
        }
    }

    #[test]
    fn converges_to_latency_bound() {
        // p99(q) = 10 + q/1000 µs; bound 50 µs → capacity 40 000 qps
        // (shedding capacity far above, so latency binds).
        let r = search("fake", 50.0, 1_000.0, 100_000.0, 20, |q| {
            fake_run(q, 1e12)
        });
        // The log-scale histogram quantizes latencies within ~3 %, which
        // shifts the apparent latency knee by a few percent of QPS.
        assert!(
            (r.max_qps - 40_000.0).abs() < 40_000.0 * 0.05,
            "bisection converged near capacity: {}",
            r.max_qps
        );
        assert_eq!(r.probes.len(), 22, "2 bracket probes + 20 bisections");
        assert!(r.probes[0].met && !r.probes[1].met);
        assert_eq!(r.cache_total(), SessionStats { hits: 44, misses: 66 });
    }

    #[test]
    fn shedding_binds_before_latency() {
        // Latency alone would allow 40 000 qps, but the queue sheds past
        // 20 000 — shed == 0 is part of "meets".
        let r = search("fake", 50.0, 1_000.0, 100_000.0, 20, |q| {
            fake_run(q, 20_000.0)
        });
        assert!(r.max_qps <= 20_000.0);
        assert!((r.max_qps - 20_000.0).abs() < 20_000.0 * 1e-3);
    }

    #[test]
    fn degenerate_brackets_short_circuit() {
        // Even the low end misses the SLO.
        let r = search("fake", 5.0, 1_000.0, 2_000.0, 8, |q| fake_run(q, 1e12));
        assert_eq!(r.max_qps, 0.0);
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.iterations, 0);
        // The high end already meets it.
        let r = search("fake", 1e6, 1_000.0, 2_000.0, 8, |q| fake_run(q, 1e12));
        assert_eq!(r.max_qps, 2_000.0);
        assert_eq!(r.probes.len(), 2);
    }

    #[test]
    fn search_is_deterministic() {
        let go = || {
            search("fake", 50.0, 1_000.0, 100_000.0, 12, |q| {
                fake_run(q, 30_000.0)
            })
            .to_json()
        };
        assert_eq!(go(), go(), "same inputs, same bytes");
    }

    #[test]
    fn json_is_wellformed() {
        let r = search("fa\"ke", 50.0, 1_000.0, 100_000.0, 4, |q| {
            fake_run(q, 1e12)
        });
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        for key in [
            "\"arch\":\"fa\\\"ke\"",
            "\"slo_p99_us\":50.0",
            "\"bracket_qps\":[1000.0,100000.0]",
            "\"max_qps\":",
            "\"service_cache\":",
            "\"probes\":[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    #[should_panic(expected = "bracket must satisfy")]
    fn rejects_bad_bracket() {
        search("x", 50.0, 10.0, 10.0, 4, |q| fake_run(q, 1e12));
    }

    #[test]
    #[should_panic(expected = "SLO bound must be a positive latency")]
    fn rejects_bad_bound() {
        search("x", 0.0, 10.0, 20.0, 4, |q| fake_run(q, 1e12));
    }
}
