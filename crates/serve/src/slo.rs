//! Closed-loop SLO throughput search.
//!
//! Production capacity planning asks the inverse of a QPS sweep: not "what
//! is the tail latency at this offered load" but "what is the highest
//! offered load whose tail latency still meets the SLO". [`search`]
//! answers it with a deterministic bisection over offered QPS: each probe
//! runs a full serving simulation ([`crate::sim::simulate_sessions`] via
//! the caller-supplied closure), a rate **meets** the SLO when the run
//! shed nothing and its p99 latency is within the bound, and the bracket
//! halves a fixed number of times — so the same seed converges to the
//! same rate, bit for bit, every run (checked in CI).
//!
//! [`search_tenants`] is the multi-tenant variant: a rate meets the SLO
//! only when **every** tenant class sheds nothing and keeps its p99
//! latency within its **own** deadline — the answer is the max aggregate
//! QPS the mix can sustain without any class falling over.
//!
//! The probe closure is where the [`ServiceSession`] API pays off: every
//! probe replays the same request set at a different rate, so sessions
//! opened once serve all probes and later probes price most batch
//! compositions straight from the memo cache.
//!
//! [`ServiceSession`]: recross_nmp::session::ServiceSession

use recross_nmp::session::SessionStats;

use crate::report::{fmt_f64, json_string, ServeReport};

/// One evaluated rate of an SLO search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloProbe {
    /// Offered rate evaluated (requests/s).
    pub qps: f64,
    /// Whether the rate met the SLO (no shed, p99 within bound).
    pub met: bool,
    /// Measured p99 latency in microseconds.
    pub p99_us: f64,
    /// Requests shed at this rate.
    pub shed: u64,
    /// Service-time memo cache counters of this probe's run.
    pub cache: SessionStats,
}

/// Outcome of one architecture's SLO throughput search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Architecture name (e.g. `"ReCross"`).
    pub arch: String,
    /// The p99 latency bound, microseconds.
    pub slo_p99_us: f64,
    /// Initial bracket low end (requests/s).
    pub bracket_lo_qps: f64,
    /// Initial bracket high end (requests/s).
    pub bracket_hi_qps: f64,
    /// Bisection iterations performed (excludes the two bracket probes).
    pub iterations: u32,
    /// Highest probed rate that met the SLO; `0` when even the bracket's
    /// low end missed it.
    pub max_qps: f64,
    /// Every evaluated rate, in probe order.
    pub probes: Vec<SloProbe>,
}

impl SloReport {
    /// Service-cache counters summed over all probes.
    pub fn cache_total(&self) -> SessionStats {
        cache_sum(self.probes.iter().map(|p| &p.cache))
    }

    /// The report as a JSON object string (no trailing newline).
    pub fn to_json(&self) -> String {
        let probes: Vec<String> = self
            .probes
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"qps\":{},\"met\":{},\"p99_us\":{},\"shed\":{},",
                        "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}}}"
                    ),
                    fmt_f64(p.qps),
                    p.met,
                    fmt_f64(p.p99_us),
                    p.shed,
                    p.cache.hits,
                    p.cache.misses,
                    p.cache.evictions
                )
            })
            .collect();
        let total = self.cache_total();
        format!(
            concat!(
                "{{\"arch\":{},\"slo_p99_us\":{},",
                "\"bracket_qps\":[{},{}],\"iterations\":{},",
                "\"max_qps\":{},",
                "\"service_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{}}},",
                "\"probes\":[{}]}}"
            ),
            json_string(&self.arch),
            fmt_f64(self.slo_p99_us),
            fmt_f64(self.bracket_lo_qps),
            fmt_f64(self.bracket_hi_qps),
            self.iterations,
            fmt_f64(self.max_qps),
            total.hits,
            total.misses,
            total.evictions,
            fmt_f64(total.hit_rate()),
            probes.join(",")
        )
    }
}

/// One tenant's verdict at one probed rate of [`search_tenants`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantVerdict {
    /// Tenant name.
    pub name: String,
    /// Measured p99 latency of this tenant's finished requests, µs.
    pub p99_us: f64,
    /// The tenant's own deadline (its p99 bound), µs.
    pub deadline_us: f64,
    /// Requests dropped by full queues at this rate.
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding at this rate.
    pub deadline_shed: u64,
    /// Requests that finished after their deadline.
    pub missed: u64,
    /// Whether this tenant met its SLO: nothing shed and
    /// `p99_us <= deadline_us`.
    pub met: bool,
}

/// One evaluated aggregate rate of a multi-tenant SLO search.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSloProbe {
    /// Aggregate offered rate evaluated (requests/s across all tenants).
    pub qps: f64,
    /// Whether **every** tenant met its SLO at this rate.
    pub met: bool,
    /// Per-tenant verdicts, in class-declaration order.
    pub tenants: Vec<TenantVerdict>,
    /// Service-time memo cache counters of this probe's run.
    pub cache: SessionStats,
}

/// Outcome of one architecture's multi-tenant SLO throughput search.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSloReport {
    /// Architecture name (e.g. `"ReCross"`).
    pub arch: String,
    /// Initial bracket low end (aggregate requests/s).
    pub bracket_lo_qps: f64,
    /// Initial bracket high end (aggregate requests/s).
    pub bracket_hi_qps: f64,
    /// Bisection iterations performed (excludes the two bracket probes).
    pub iterations: u32,
    /// Highest probed aggregate rate at which every tenant met its own
    /// deadline; `0` when even the bracket's low end failed.
    pub max_qps: f64,
    /// Every evaluated rate, in probe order.
    pub probes: Vec<TenantSloProbe>,
}

impl TenantSloReport {
    /// Service-cache counters summed over all probes.
    pub fn cache_total(&self) -> SessionStats {
        cache_sum(self.probes.iter().map(|p| &p.cache))
    }

    /// The report as a JSON object string (no trailing newline).
    pub fn to_json(&self) -> String {
        let probes: Vec<String> = self
            .probes
            .iter()
            .map(|p| {
                let tenants: Vec<String> = p
                    .tenants
                    .iter()
                    .map(|t| {
                        format!(
                            concat!(
                                "{{\"name\":{},\"met\":{},\"p99_us\":{},",
                                "\"deadline_us\":{},\"queue_shed\":{},",
                                "\"deadline_shed\":{},\"missed\":{}}}"
                            ),
                            json_string(&t.name),
                            t.met,
                            fmt_f64(t.p99_us),
                            fmt_f64(t.deadline_us),
                            t.queue_shed,
                            t.deadline_shed,
                            t.missed
                        )
                    })
                    .collect();
                format!(
                    "{{\"qps\":{},\"met\":{},\"tenants\":[{}]}}",
                    fmt_f64(p.qps),
                    p.met,
                    tenants.join(",")
                )
            })
            .collect();
        let total = self.cache_total();
        format!(
            concat!(
                "{{\"arch\":{},\"bracket_qps\":[{},{}],\"iterations\":{},",
                "\"max_qps\":{},",
                "\"service_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{}}},",
                "\"probes\":[{}]}}"
            ),
            json_string(&self.arch),
            fmt_f64(self.bracket_lo_qps),
            fmt_f64(self.bracket_hi_qps),
            self.iterations,
            fmt_f64(self.max_qps),
            total.hits,
            total.misses,
            total.evictions,
            fmt_f64(total.hit_rate()),
            probes.join(",")
        )
    }
}

fn cache_sum<'a>(stats: impl Iterator<Item = &'a SessionStats>) -> SessionStats {
    let mut total = SessionStats::default();
    for s in stats {
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
    }
    total
}

/// Extracts the single-SLO verdict from one serving run.
fn judge(report: &ServeReport, slo_p99_us: f64, qps: f64) -> SloProbe {
    let p99_cycles = report.latency.quantile(0.99);
    let p99_us = report.cycles_to_us(p99_cycles);
    SloProbe {
        qps,
        met: report.shed == 0 && p99_us <= slo_p99_us,
        p99_us,
        shed: report.shed,
        cache: report.service_cache,
    }
}

/// Extracts the per-tenant verdicts from one multi-tenant serving run.
fn judge_tenants(report: &ServeReport, qps: f64) -> TenantSloProbe {
    let tenants: Vec<TenantVerdict> = report
        .tenants
        .iter()
        .map(|t| {
            let p99_us = report.cycles_to_us(t.latency.quantile(0.99));
            TenantVerdict {
                name: t.name.clone(),
                p99_us,
                deadline_us: t.deadline_us,
                queue_shed: t.queue_shed,
                deadline_shed: t.deadline_shed,
                missed: t.missed,
                met: t.queue_shed == 0 && t.deadline_shed == 0 && p99_us <= t.deadline_us,
            }
        })
        .collect();
    TenantSloProbe {
        qps,
        met: !tenants.is_empty() && tenants.iter().all(|t| t.met),
        tenants,
        cache: report.service_cache,
    }
}

fn validate_bracket(lo: f64, hi: f64) {
    assert!(
        lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi,
        "SLO search bracket must satisfy 0 < lo < hi, got [{lo}, {hi}]"
    );
}

/// The shared bisection skeleton: probes both bracket ends (short-circuit
/// when they already decide the answer), then halves `iterations` times.
/// Returns `(max_qps, iterations_run)`.
fn bisect(lo: f64, hi: f64, iterations: u32, mut eval: impl FnMut(f64) -> bool) -> (f64, u32) {
    if !eval(lo) {
        return (0.0, 0);
    }
    if eval(hi) {
        return (hi, 0);
    }
    // Invariant: `best` met, `worst` did not.
    let (mut best, mut worst) = (lo, hi);
    for _ in 0..iterations {
        let mid = 0.5 * (best + worst);
        if eval(mid) {
            best = mid;
        } else {
            worst = mid;
        }
    }
    (best, iterations)
}

/// Finds the highest offered QPS meeting a p99 latency SLO by bisection.
///
/// `probe` runs one serving simulation at the given offered rate and
/// returns its [`ServeReport`]; a rate meets the SLO when the run shed no
/// requests and its p99 latency is at most `slo_p99_us` microseconds.
///
/// The search first evaluates both bracket ends, then runs exactly
/// `iterations` bisection steps on `[lo, hi]` (skipped when the bracket
/// ends already decide the answer: `lo` failing means capacity is below
/// the bracket and `max_qps` is 0; `hi` passing means capacity is above
/// it and `max_qps` is `hi`). With `probe` deterministic in its rate, the
/// whole search — probe sequence included — is deterministic.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and both are finite.
pub fn search<F>(
    arch: &str,
    slo_p99_us: f64,
    lo: f64,
    hi: f64,
    iterations: u32,
    mut probe: F,
) -> SloReport
where
    F: FnMut(f64) -> ServeReport,
{
    validate_bracket(lo, hi);
    assert!(
        slo_p99_us.is_finite() && slo_p99_us > 0.0,
        "SLO bound must be a positive latency, got {slo_p99_us}"
    );
    let mut probes = Vec::with_capacity(iterations as usize + 2);
    let (max_qps, iterations) = bisect(lo, hi, iterations, |qps| {
        let p = judge(&probe(qps), slo_p99_us, qps);
        let met = p.met;
        probes.push(p);
        met
    });
    SloReport {
        arch: arch.to_string(),
        slo_p99_us,
        bracket_lo_qps: lo,
        bracket_hi_qps: hi,
        iterations,
        max_qps,
        probes,
    }
}

/// Finds the highest **aggregate** offered QPS at which every tenant of a
/// mix meets its own deadline, by the same bisection as [`search`].
///
/// `probe` runs one multi-tenant serving simulation
/// ([`crate::sim::simulate_tenant_sessions`]) at the given aggregate rate
/// and returns its [`ServeReport`] — which must carry a tenant section. A
/// rate meets the SLO when every tenant shed nothing (neither tail-drop
/// nor deadline shedding) and kept the p99 latency of its finished
/// requests within its own `deadline_us`.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and both are finite, or if a probe report
/// has no tenant section (a report without tenants can never meet the
/// SLO, which would silently pin `max_qps` at 0 — fail loudly instead).
pub fn search_tenants<F>(
    arch: &str,
    lo: f64,
    hi: f64,
    iterations: u32,
    mut probe: F,
) -> TenantSloReport
where
    F: FnMut(f64) -> ServeReport,
{
    validate_bracket(lo, hi);
    let mut probes = Vec::with_capacity(iterations as usize + 2);
    let (max_qps, iterations) = bisect(lo, hi, iterations, |qps| {
        let report = probe(qps);
        assert!(
            !report.tenants.is_empty(),
            "tenant SLO search needs tenant-aware probe reports"
        );
        let p = judge_tenants(&report, qps);
        let met = p.met;
        probes.push(p);
        met
    });
    TenantSloReport {
        arch: arch.to_string(),
        bracket_lo_qps: lo,
        bracket_hi_qps: hi,
        iterations,
        max_qps,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::report::{ChannelReport, TenantReport};
    use crate::tenant::{Priority, TenantClass, TenantProcess};

    /// A fake serving run: p99 latency grows linearly with offered rate
    /// and the queue sheds past a hard capacity.
    fn fake_run(qps: f64, capacity: f64) -> ServeReport {
        let cycles_per_sec = 2.4e9;
        let p99_us = 10.0 + qps / 1000.0;
        let mut latency = LatencyHistogram::new();
        latency.record((p99_us * 1e-6 * cycles_per_sec) as u64);
        ServeReport {
            name: "fake".into(),
            requests: 100,
            shed: if qps > capacity { 7 } else { 0 },
            makespan_cycles: 1_000_000,
            cycles_per_sec,
            offered_qps: qps,
            latency,
            depth_series: vec![0],
            channels: vec![ChannelReport {
                busy_cycles: 0,
                utilization: 0.0,
                dispatches: 1,
                shed: 0,
                expired: 0,
                depth_p50: 0,
                depth_p99: 0,
                depth_max: 0,
            }],
            service_cache: SessionStats {
                hits: 2,
                misses: 3,
                evictions: 0,
            },
            tenants: Vec::new(),
        }
    }

    /// A fake two-tenant run: the "rt" class has a 50 µs deadline with
    /// latency growing in the rate; the "batch" class always passes.
    fn fake_tenant_run(qps: f64) -> ServeReport {
        let mut report = fake_run(qps, 1e12);
        let cps = report.cycles_per_sec;
        let rt = TenantClass::new("rt", 0.7, TenantProcess::Poisson, 50.0, Priority::High);
        let batch =
            TenantClass::new("batch", 0.3, TenantProcess::Poisson, 1e6, Priority::Low);
        let mut rt_report = TenantReport::new(&rt);
        rt_report.requests = 70;
        rt_report.completed = 70;
        let rt_p99_us = 10.0 + qps / 1000.0;
        rt_report.latency.record((rt_p99_us * 1e-6 * cps) as u64);
        let mut batch_report = TenantReport::new(&batch);
        batch_report.requests = 30;
        batch_report.completed = 30;
        batch_report.latency.record((100.0 * 1e-6 * cps) as u64);
        report.tenants = vec![rt_report, batch_report];
        report
    }

    #[test]
    fn converges_to_latency_bound() {
        // p99(q) = 10 + q/1000 µs; bound 50 µs → capacity 40 000 qps
        // (shedding capacity far above, so latency binds).
        let r = search("fake", 50.0, 1_000.0, 100_000.0, 20, |q| {
            fake_run(q, 1e12)
        });
        // The log-scale histogram quantizes latencies within ~3 %, which
        // shifts the apparent latency knee by a few percent of QPS.
        assert!(
            (r.max_qps - 40_000.0).abs() < 40_000.0 * 0.05,
            "bisection converged near capacity: {}",
            r.max_qps
        );
        assert_eq!(r.probes.len(), 22, "2 bracket probes + 20 bisections");
        assert!(r.probes[0].met && !r.probes[1].met);
        assert_eq!(
            r.cache_total(),
            SessionStats {
                hits: 44,
                misses: 66,
                evictions: 0
            }
        );
    }

    #[test]
    fn shedding_binds_before_latency() {
        // Latency alone would allow 40 000 qps, but the queue sheds past
        // 20 000 — shed == 0 is part of "meets".
        let r = search("fake", 50.0, 1_000.0, 100_000.0, 20, |q| {
            fake_run(q, 20_000.0)
        });
        assert!(r.max_qps <= 20_000.0);
        assert!((r.max_qps - 20_000.0).abs() < 20_000.0 * 1e-3);
    }

    #[test]
    fn degenerate_brackets_short_circuit() {
        // Even the low end misses the SLO.
        let r = search("fake", 5.0, 1_000.0, 2_000.0, 8, |q| fake_run(q, 1e12));
        assert_eq!(r.max_qps, 0.0);
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.iterations, 0);
        // The high end already meets it.
        let r = search("fake", 1e6, 1_000.0, 2_000.0, 8, |q| fake_run(q, 1e12));
        assert_eq!(r.max_qps, 2_000.0);
        assert_eq!(r.probes.len(), 2);
    }

    #[test]
    fn search_is_deterministic() {
        let go = || {
            search("fake", 50.0, 1_000.0, 100_000.0, 12, |q| {
                fake_run(q, 30_000.0)
            })
            .to_json()
        };
        assert_eq!(go(), go(), "same inputs, same bytes");
    }

    #[test]
    fn json_is_wellformed() {
        let r = search("fa\"ke", 50.0, 1_000.0, 100_000.0, 4, |q| {
            fake_run(q, 1e12)
        });
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        for key in [
            "\"arch\":\"fa\\\"ke\"",
            "\"slo_p99_us\":50.0",
            "\"bracket_qps\":[1000.0,100000.0]",
            "\"max_qps\":",
            "\"service_cache\":{\"hits\":",
            "\"evictions\":0,\"hit_rate\":",
            "\"probes\":[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn tenant_search_binds_on_tightest_tenant() {
        // Only "rt" (50 µs deadline) constrains: same knee as the
        // single-SLO search at 50 µs → ~40 000 qps.
        let r = search_tenants("fake", 1_000.0, 100_000.0, 20, fake_tenant_run);
        assert!(
            (r.max_qps - 40_000.0).abs() < 40_000.0 * 0.05,
            "tenant bisection converged near the rt knee: {}",
            r.max_qps
        );
        let last_met = r.probes.iter().rev().find(|p| p.met).unwrap();
        assert_eq!(last_met.tenants.len(), 2);
        assert!(last_met.tenants.iter().all(|t| t.met));
        // The failing probes fail on rt, never on batch.
        for p in r.probes.iter().filter(|p| !p.met) {
            assert!(!p.tenants[0].met, "rt is the binding tenant");
            assert!(p.tenants[1].met, "batch never binds");
        }
    }

    #[test]
    fn tenant_search_json_is_wellformed_and_deterministic() {
        let go = || {
            search_tenants("fake", 1_000.0, 100_000.0, 6, fake_tenant_run).to_json()
        };
        let j = go();
        assert_eq!(j, go(), "same inputs, same bytes");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        for key in [
            "\"arch\":\"fake\"",
            "\"bracket_qps\":[1000.0,100000.0]",
            "\"max_qps\":",
            "\"service_cache\":{\"hits\":",
            "\"evictions\":0,\"hit_rate\":",
            "\"tenants\":[{\"name\":\"rt\"",
            "\"deadline_us\":50.0",
            "\"queue_shed\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    #[should_panic(expected = "tenant-aware probe reports")]
    fn tenant_search_rejects_untenanted_reports() {
        search_tenants("fake", 1_000.0, 2_000.0, 4, |q| fake_run(q, 1e12));
    }

    #[test]
    #[should_panic(expected = "bracket must satisfy")]
    fn rejects_bad_bracket() {
        search("x", 50.0, 10.0, 10.0, 4, |q| fake_run(q, 1e12));
    }

    #[test]
    #[should_panic(expected = "SLO bound must be a positive latency")]
    fn rejects_bad_bound() {
        search("x", 0.0, 10.0, 20.0, 4, |q| fake_run(q, 1e12));
    }
}
