//! Serving-run reports and their JSON form.
//!
//! Reports are emitted as hand-rolled JSON rather than via a serializer
//! dependency; floats are formatted with Rust's shortest-roundtrip `{}`
//! display, which is deterministic across platforms — two runs with the
//! same seed produce byte-identical report files (checked in CI).

use recross_dram::Cycle;
use recross_nmp::session::SessionStats;

use crate::hist::LatencyHistogram;

/// Per-channel server statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelReport {
    /// Cycles this channel's server spent servicing batches.
    pub busy_cycles: Cycle,
    /// `busy / makespan` — fraction of wall time the server was busy.
    pub utilization: f64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Requests shed at this channel's queue.
    pub shed: u64,
}

/// Outcome of one serving simulation (one architecture at one offered
/// load).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Architecture name (e.g. `"ReCross"`).
    pub name: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests shed (dropped by some channel's bounded queue).
    pub shed: u64,
    /// Cycle at which the last completion (or arrival) happened.
    pub makespan_cycles: Cycle,
    /// Cycles per wall-clock second (DRAM command clock).
    pub cycles_per_sec: f64,
    /// Offered load: requests per second over the arrival span.
    pub offered_qps: f64,
    /// Completed-request latency distribution (cycles).
    pub latency: LatencyHistogram,
    /// Total queued requests across channels, sampled after each arrival.
    pub depth_series: Vec<u64>,
    /// Per-channel server statistics.
    pub channels: Vec<ChannelReport>,
    /// Service-time memo cache hits/misses across all channels' sessions,
    /// counting only this run (see `ServiceSession::stats`). The cache is
    /// exact, so these counters are the only report fields that can differ
    /// between cache-enabled and cache-disabled runs.
    pub service_cache: SessionStats,
}

impl ServeReport {
    /// Requests that completed.
    pub fn completed(&self) -> u64 {
        self.requests - self.shed
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Completed requests per second of simulated wall time.
    pub fn goodput_qps(&self) -> f64 {
        let span_s = self.makespan_cycles as f64 / self.cycles_per_sec;
        if span_s > 0.0 {
            self.completed() as f64 / span_s
        } else {
            0.0
        }
    }

    /// Converts a cycle count to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e6 / self.cycles_per_sec
    }

    /// Fraction of dispatched batches priced from the service-time memo
    /// cache this run (0 when nothing was dispatched).
    pub fn cache_hit_rate(&self) -> f64 {
        self.service_cache.hit_rate()
    }

    /// Largest sampled total queue depth.
    pub fn max_depth(&self) -> u64 {
        self.depth_series.iter().copied().max().unwrap_or(0)
    }

    /// Mean sampled total queue depth.
    pub fn mean_depth(&self) -> f64 {
        if self.depth_series.is_empty() {
            0.0
        } else {
            self.depth_series.iter().sum::<u64>() as f64 / self.depth_series.len() as f64
        }
    }

    /// The depth series downsampled to at most `points` evenly spaced
    /// samples (the full series can be one point per request).
    pub fn depth_series_sampled(&self, points: usize) -> Vec<u64> {
        let n = self.depth_series.len();
        if n <= points || points == 0 {
            return self.depth_series.clone();
        }
        (0..points)
            .map(|i| self.depth_series[i * n / points])
            .collect()
    }

    /// The report as a JSON object string (no trailing newline).
    pub fn to_json(&self) -> String {
        let (p50, p90, p95, p99, p999) = self.latency.tail_summary();
        let quant = |v: u64| format!("{{\"cycles\":{},\"us\":{}}}", v, fmt_f64(self.cycles_to_us(v)));
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    "{{\"busy_cycles\":{},\"utilization\":{},\"dispatches\":{},\"shed\":{}}}",
                    c.busy_cycles,
                    fmt_f64(c.utilization),
                    c.dispatches,
                    c.shed
                )
            })
            .collect();
        let depth: Vec<String> = self
            .depth_series_sampled(64)
            .iter()
            .map(u64::to_string)
            .collect();
        format!(
            concat!(
                "{{\"arch\":{},\"offered_qps\":{},\"requests\":{},",
                "\"completed\":{},\"shed\":{},\"shed_rate\":{},",
                "\"goodput_qps\":{},\"makespan_ms\":{},",
                "\"latency\":{{\"mean_us\":{},\"p50\":{},\"p90\":{},",
                "\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{}}},",
                "\"queue_depth\":{{\"mean\":{},\"max\":{},\"series\":[{}]}},",
                "\"service_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{}}},",
                "\"channels\":[{}]}}"
            ),
            json_string(&self.name),
            fmt_f64(self.offered_qps),
            self.requests,
            self.completed(),
            self.shed,
            fmt_f64(self.shed_rate()),
            fmt_f64(self.goodput_qps()),
            fmt_f64(self.makespan_cycles as f64 * 1e3 / self.cycles_per_sec),
            fmt_f64(self.cycles_to_us(self.latency.mean().round() as u64)),
            quant(p50),
            quant(p90),
            quant(p95),
            quant(p99),
            quant(p999),
            quant(self.latency.max()),
            fmt_f64(self.mean_depth()),
            self.max_depth(),
            depth.join(","),
            self.service_cache.hits,
            self.service_cache.misses,
            fmt_f64(self.cache_hit_rate()),
            channels.join(",")
        )
    }
}

/// Deterministic JSON float: shortest-roundtrip display; non-finite values
/// (which valid reports never contain) map to `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits ".0" for integral floats (and never uses scientific
        // notation); keep the result visibly a float.
        if s.contains('.') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the escapes our names can need.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ServeReport {
        let mut latency = LatencyHistogram::new();
        for v in [100u64, 200, 300, 4000] {
            latency.record(v);
        }
        ServeReport {
            name: "ReCross".into(),
            requests: 5,
            shed: 1,
            makespan_cycles: 2_400_000,
            cycles_per_sec: 2.4e9,
            offered_qps: 5000.0,
            latency,
            depth_series: vec![0, 1, 2, 1, 0],
            channels: vec![ChannelReport {
                busy_cycles: 1_200_000,
                utilization: 0.5,
                dispatches: 2,
                shed: 1,
            }],
            service_cache: SessionStats { hits: 1, misses: 1 },
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample_report();
        assert_eq!(r.completed(), 4);
        assert!((r.shed_rate() - 0.2).abs() < 1e-12);
        // 4 completed over 1 ms of simulated time.
        assert!((r.goodput_qps() - 4000.0).abs() < 1e-9);
        assert_eq!(r.max_depth(), 2);
        assert!((r.mean_depth() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn json_is_wellformed_and_deterministic() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b, "same report, same bytes");
        // Structural sanity without a JSON parser: balanced braces, the
        // keys we promise, no stray NaNs.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "balanced braces"
        );
        for key in [
            "\"arch\":\"ReCross\"",
            "\"offered_qps\":",
            "\"shed_rate\":",
            "\"goodput_qps\":",
            "\"p99\":",
            "\"queue_depth\":",
            "\"service_cache\":{\"hits\":1,\"misses\":1,\"hit_rate\":0.5}",
            "\"channels\":",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert!(!a.contains("NaN") && !a.contains("inf"));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        // `{}` Display expands rather than using scientific notation; the
        // result must still round-trip exactly.
        assert_eq!(fmt_f64(1e30).parse::<f64>().unwrap(), 1e30);
        assert_eq!(fmt_f64(-2.5), "-2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn depth_downsampling_preserves_length_bound() {
        let mut r = sample_report();
        r.depth_series = (0..1000).collect();
        assert_eq!(r.depth_series_sampled(64).len(), 64);
        assert_eq!(r.depth_series_sampled(2000).len(), 1000);
    }
}
