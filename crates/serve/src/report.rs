//! Serving-run reports and their JSON form.
//!
//! Reports are emitted as hand-rolled JSON rather than via a serializer
//! dependency; floats are formatted with Rust's shortest-roundtrip `{}`
//! display, which is deterministic across platforms — two runs with the
//! same seed produce byte-identical report files (checked in CI).
//!
//! Multi-tenant runs add one [`TenantReport`] per traffic class, emitted
//! under the `"tenants"` key in class-declaration order with the same
//! deterministic formatting.

use recross_dram::Cycle;
use recross_nmp::session::SessionStats;

use crate::hist::LatencyHistogram;
use crate::tenant::TenantClass;

/// Per-channel server statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelReport {
    /// Cycles this channel's server spent servicing batches.
    pub busy_cycles: Cycle,
    /// `busy / makespan` — fraction of wall time the server was busy.
    pub utilization: f64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Requests shed at this channel's queue (admission tail-drop).
    pub shed: u64,
    /// Requests shed at this channel by deadline shedding.
    pub expired: u64,
    /// Median queue depth over this channel's transition samples (one
    /// sample after every arrival, deadline shed, and dispatch —
    /// nearest-rank percentile).
    pub depth_p50: u64,
    /// 99th-percentile queue depth over the transition samples.
    pub depth_p99: u64,
    /// Maximum queue depth over the transition samples.
    pub depth_max: u64,
}

/// Per-tenant outcome of a multi-tenant serving run.
///
/// The four counters partition the tenant's requests exactly:
/// `requests = completed + missed + queue_shed + deadline_shed`
/// (asserted in the simulator's tests).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name, from its [`TenantClass`].
    pub name: String,
    /// Priority label (`"low"` / `"normal"` / `"high"`).
    pub priority: &'static str,
    /// The class's declared (unnormalized) share of offered load.
    pub share: f64,
    /// The class's relative deadline in microseconds.
    pub deadline_us: f64,
    /// Requests this tenant offered.
    pub requests: u64,
    /// Requests that completed **by their deadline**.
    pub completed: u64,
    /// Requests that completed, but after their deadline.
    pub missed: u64,
    /// Requests dropped by a full queue (admission tail-drop).
    pub queue_shed: u64,
    /// Requests dropped by deadline shedding (deadline provably
    /// unreachable at dequeue time).
    pub deadline_shed: u64,
    /// Latency distribution of this tenant's *finished* requests
    /// (on-time and late), in cycles.
    pub latency: LatencyHistogram,
}

impl TenantReport {
    /// An empty report for one class (counters start at zero).
    pub fn new(class: &TenantClass) -> Self {
        Self {
            name: class.name.clone(),
            priority: class.priority.kind(),
            share: class.share,
            deadline_us: class.deadline_us,
            requests: 0,
            completed: 0,
            missed: 0,
            queue_shed: 0,
            deadline_shed: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Requests dropped for any reason.
    pub fn shed(&self) -> u64 {
        self.queue_shed + self.deadline_shed
    }

    /// Fraction of this tenant's requests dropped.
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed(), self.requests)
    }

    /// Fraction of this tenant's requests that did **not** complete by
    /// their deadline — late completions and deadline sheds both count
    /// (queue sheds do not; they never reached service for capacity, not
    /// deadline, reasons).
    pub fn deadline_miss_rate(&self) -> f64 {
        ratio(self.missed + self.deadline_shed, self.requests)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Outcome of one serving simulation (one architecture at one offered
/// load).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Architecture name (e.g. `"ReCross"`).
    pub name: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests dropped (bounded-queue tail-drop or deadline shedding on
    /// some channel).
    pub shed: u64,
    /// Cycle at which the last completion (or arrival) happened.
    pub makespan_cycles: Cycle,
    /// Cycles per wall-clock second (DRAM command clock).
    pub cycles_per_sec: f64,
    /// Offered load: requests per second over the arrival span.
    pub offered_qps: f64,
    /// Completed-request latency distribution (cycles).
    pub latency: LatencyHistogram,
    /// Total queued requests across channels, sampled after each arrival.
    pub depth_series: Vec<u64>,
    /// Per-channel server statistics.
    pub channels: Vec<ChannelReport>,
    /// Service-time memo cache activity across all channels' sessions,
    /// counting only this run (see `ServiceSession::stats`). The cache is
    /// exact, so these counters are the only report fields that can differ
    /// between cache-enabled and cache-disabled (or capacity-bounded)
    /// runs.
    pub service_cache: SessionStats,
    /// Per-tenant outcomes, in class-declaration order; empty for
    /// single-tenant (untenanted) runs.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Requests that completed.
    pub fn completed(&self) -> u64 {
        self.requests - self.shed
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed, self.requests)
    }

    /// Completed requests per second of simulated wall time.
    pub fn goodput_qps(&self) -> f64 {
        let span_s = self.makespan_cycles as f64 / self.cycles_per_sec;
        if span_s > 0.0 {
            self.completed() as f64 / span_s
        } else {
            0.0
        }
    }

    /// Converts a cycle count to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e6 / self.cycles_per_sec
    }

    /// Fraction of dispatched batches priced from the service-time memo
    /// cache this run (0 when nothing was dispatched).
    pub fn cache_hit_rate(&self) -> f64 {
        self.service_cache.hit_rate()
    }

    /// Largest sampled total queue depth.
    pub fn max_depth(&self) -> u64 {
        self.depth_series.iter().copied().max().unwrap_or(0)
    }

    /// Mean sampled total queue depth.
    pub fn mean_depth(&self) -> f64 {
        if self.depth_series.is_empty() {
            0.0
        } else {
            self.depth_series.iter().sum::<u64>() as f64 / self.depth_series.len() as f64
        }
    }

    /// The depth series downsampled to at most `points` evenly spaced
    /// samples (the full series can be one point per request).
    pub fn depth_series_sampled(&self, points: usize) -> Vec<u64> {
        let n = self.depth_series.len();
        if n <= points || points == 0 {
            return self.depth_series.clone();
        }
        (0..points)
            .map(|i| self.depth_series[i * n / points])
            .collect()
    }

    /// On-time completions per second of simulated wall time for tenant
    /// `t` (0 for an out-of-range index).
    pub fn tenant_goodput_qps(&self, t: usize) -> f64 {
        let span_s = self.makespan_cycles as f64 / self.cycles_per_sec;
        match self.tenants.get(t) {
            Some(tr) if span_s > 0.0 => tr.completed as f64 / span_s,
            _ => 0.0,
        }
    }

    /// The report as a JSON object string (no trailing newline).
    pub fn to_json(&self) -> String {
        let (p50, p90, p95, p99, p999) = self.latency.tail_summary();
        let quant = |v: u64| format!("{{\"cycles\":{},\"us\":{}}}", v, fmt_f64(self.cycles_to_us(v)));
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"busy_cycles\":{},\"utilization\":{},\"dispatches\":{},",
                        "\"shed\":{},\"expired\":{},",
                        "\"depth\":{{\"p50\":{},\"p99\":{},\"max\":{}}}}}"
                    ),
                    c.busy_cycles,
                    fmt_f64(c.utilization),
                    c.dispatches,
                    c.shed,
                    c.expired,
                    c.depth_p50,
                    c.depth_p99,
                    c.depth_max
                )
            })
            .collect();
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (tp50, _, _, tp99, _) = t.latency.tail_summary();
                format!(
                    concat!(
                        "{{\"name\":{},\"priority\":{},\"share\":{},\"deadline_us\":{},",
                        "\"requests\":{},\"completed\":{},\"missed\":{},",
                        "\"queue_shed\":{},\"deadline_shed\":{},",
                        "\"shed_rate\":{},\"deadline_miss_rate\":{},\"goodput_qps\":{},",
                        "\"latency\":{{\"mean_us\":{},\"p50\":{},\"p99\":{},\"max\":{}}}}}"
                    ),
                    json_string(&t.name),
                    json_string(t.priority),
                    fmt_f64(t.share),
                    fmt_f64(t.deadline_us),
                    t.requests,
                    t.completed,
                    t.missed,
                    t.queue_shed,
                    t.deadline_shed,
                    fmt_f64(t.shed_rate()),
                    fmt_f64(t.deadline_miss_rate()),
                    fmt_f64(self.tenant_goodput_qps(i)),
                    fmt_f64(self.cycles_to_us(t.latency.mean().round() as u64)),
                    quant(tp50),
                    quant(tp99),
                    quant(t.latency.max()),
                )
            })
            .collect();
        let depth: Vec<String> = self
            .depth_series_sampled(64)
            .iter()
            .map(u64::to_string)
            .collect();
        format!(
            concat!(
                "{{\"arch\":{},\"offered_qps\":{},\"requests\":{},",
                "\"completed\":{},\"shed\":{},\"shed_rate\":{},",
                "\"goodput_qps\":{},\"makespan_ms\":{},",
                "\"latency\":{{\"mean_us\":{},\"p50\":{},\"p90\":{},",
                "\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{}}},",
                "\"queue_depth\":{{\"mean\":{},\"max\":{},\"series\":[{}]}},",
                "\"service_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{}}},",
                "\"channels\":[{}],\"tenants\":[{}]}}"
            ),
            json_string(&self.name),
            fmt_f64(self.offered_qps),
            self.requests,
            self.completed(),
            self.shed,
            fmt_f64(self.shed_rate()),
            fmt_f64(self.goodput_qps()),
            fmt_f64(self.makespan_cycles as f64 * 1e3 / self.cycles_per_sec),
            fmt_f64(self.cycles_to_us(self.latency.mean().round() as u64)),
            quant(p50),
            quant(p90),
            quant(p95),
            quant(p99),
            quant(p999),
            quant(self.latency.max()),
            fmt_f64(self.mean_depth()),
            self.max_depth(),
            depth.join(","),
            self.service_cache.hits,
            self.service_cache.misses,
            self.service_cache.evictions,
            fmt_f64(self.cache_hit_rate()),
            channels.join(","),
            tenants.join(",")
        )
    }
}

/// Deterministic JSON float: shortest-roundtrip display; non-finite values
/// (which valid reports never contain) map to `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits ".0" for integral floats (and never uses scientific
        // notation); keep the result visibly a float.
        if s.contains('.') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the escapes our names can need.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{Priority, TenantProcess};

    fn sample_report() -> ServeReport {
        let mut latency = LatencyHistogram::new();
        for v in [100u64, 200, 300, 4000] {
            latency.record(v);
        }
        ServeReport {
            name: "ReCross".into(),
            requests: 5,
            shed: 1,
            makespan_cycles: 2_400_000,
            cycles_per_sec: 2.4e9,
            offered_qps: 5000.0,
            latency,
            depth_series: vec![0, 1, 2, 1, 0],
            channels: vec![ChannelReport {
                busy_cycles: 1_200_000,
                utilization: 0.5,
                dispatches: 2,
                shed: 1,
                expired: 0,
                depth_p50: 1,
                depth_p99: 2,
                depth_max: 2,
            }],
            service_cache: SessionStats {
                hits: 1,
                misses: 1,
                evictions: 0,
            },
            tenants: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample_report();
        assert_eq!(r.completed(), 4);
        assert!((r.shed_rate() - 0.2).abs() < 1e-12);
        // 4 completed over 1 ms of simulated time.
        assert!((r.goodput_qps() - 4000.0).abs() < 1e-9);
        assert_eq!(r.max_depth(), 2);
        assert!((r.mean_depth() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn json_is_wellformed_and_deterministic() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b, "same report, same bytes");
        // Structural sanity without a JSON parser: balanced braces, the
        // keys we promise, no stray NaNs.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "balanced braces"
        );
        for key in [
            "\"arch\":\"ReCross\"",
            "\"offered_qps\":",
            "\"shed_rate\":",
            "\"goodput_qps\":",
            "\"p99\":",
            "\"queue_depth\":",
            "\"service_cache\":{\"hits\":1,\"misses\":1,\"evictions\":0,\"hit_rate\":0.5}",
            "\"channels\":",
            "\"depth\":{\"p50\":1,\"p99\":2,\"max\":2}",
            "\"tenants\":[]",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert!(!a.contains("NaN") && !a.contains("inf"));
    }

    #[test]
    fn tenant_section_serializes_counters_and_rates() {
        let class = TenantClass::new("rt", 0.7, TenantProcess::Poisson, 150.0, Priority::High);
        let mut t = TenantReport::new(&class);
        t.requests = 10;
        t.completed = 6;
        t.missed = 1;
        t.queue_shed = 2;
        t.deadline_shed = 1;
        for v in [240u64, 480, 960] {
            t.latency.record(v);
        }
        assert_eq!(t.shed(), 3);
        assert!((t.shed_rate() - 0.3).abs() < 1e-12);
        // missed + deadline_shed = 2 of 10.
        assert!((t.deadline_miss_rate() - 0.2).abs() < 1e-12);
        let mut r = sample_report();
        r.tenants = vec![t];
        let json = r.to_json();
        for key in [
            "\"tenants\":[{\"name\":\"rt\",\"priority\":\"high\",\"share\":0.7,\"deadline_us\":150.0,",
            "\"requests\":10,\"completed\":6,\"missed\":1,\"queue_shed\":2,\"deadline_shed\":1,",
            "\"shed_rate\":0.3,\"deadline_miss_rate\":0.2,",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Tenant goodput: 6 on-time over 1 ms.
        assert!((r.tenant_goodput_qps(0) - 6000.0).abs() < 1e-9);
        assert_eq!(r.tenant_goodput_qps(9), 0.0);
        assert_eq!(json, r.clone().to_json(), "tenant JSON deterministic");
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        // `{}` Display expands rather than using scientific notation; the
        // result must still round-trip exactly.
        assert_eq!(fmt_f64(1e30).parse::<f64>().unwrap(), 1e30);
        assert_eq!(fmt_f64(-2.5), "-2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn depth_downsampling_preserves_length_bound() {
        let mut r = sample_report();
        r.depth_series = (0..1000).collect();
        assert_eq!(r.depth_series_sampled(64).len(), 64);
        assert_eq!(r.depth_series_sampled(2000).len(), 1000);
    }
}
