//! Re-export of the log-scale latency histogram, which moved to
//! [`recross_obs::hist`] so the observability crate's online aggregation
//! engine can use it without a dependency cycle. Serving code (and
//! downstream users of `recross_serve::hist`) keep their existing paths.
//!
//! ```
//! use recross_serve::hist::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! h.record(42);
//! assert_eq!(h.quantile(1.0), 42);
//! ```

pub use recross_obs::hist::{LatencyHistogram, NUM_BUCKETS, SUB_BUCKETS};
