//! The 82-bit compressed NMP instruction (paper §4.2).
//!
//! ReCross encodes every NMP request into one 82-bit instruction carried
//! over the C/A pins (plus idle DQ pins in two-stage mode). Field layout:
//!
//! | field    | bits | meaning |
//! |----------|------|---------|
//! | opcode   | 3    | reduction operation |
//! | ddr_cmd  | 3    | DDR command (ACT / RD / PRE) |
//! | addr     | 34   | physical address of the target vector |
//! | vsize    | 3    | log2 of DRAM reads per vector |
//! | weight   | 32   | f32 weight for weighted summation |
//! | batchTag | 1    | groups instructions of one embedding op |
//! | lastTag  | 1    | last instruction of a batch (results return) |
//! | BGTag    | 1    | vector is *below* rank level (G- or B-region) |
//! | bankTag  | 1    | vector is at bank level (B-region), valid iff BGTag |
//! | reserved | 3    | padding to 82 bits |

/// Total instruction width in bits.
pub const INSTRUCTION_BITS: u32 = 82;

/// Reduction opcode (3 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Plain element-wise summation.
    Sum = 0,
    /// Weighted summation (the paper's default, as in RecNMP/TRiM).
    #[default]
    WeightedSum = 1,
    /// Average pooling.
    Average = 2,
    /// Concatenation (no reduction; vectors stream out).
    Concat = 3,
    /// Quantized (int8) summation.
    QuantizedSum = 4,
}

impl Opcode {
    fn from_bits(b: u64) -> Option<Self> {
        Some(match b {
            0 => Opcode::Sum,
            1 => Opcode::WeightedSum,
            2 => Opcode::Average,
            3 => Opcode::Concat,
            4 => Opcode::QuantizedSum,
            _ => return None,
        })
    }
}

/// DDR command field (3 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DdrCmd {
    /// Row activation.
    Act = 0,
    /// Column read (vsize bursts).
    #[default]
    Rd = 1,
    /// Precharge.
    Pre = 2,
}

impl DdrCmd {
    fn from_bits(b: u64) -> Option<Self> {
        Some(match b {
            0 => DdrCmd::Act,
            1 => DdrCmd::Rd,
            2 => DdrCmd::Pre,
            _ => return None,
        })
    }
}

/// A decoded NMP instruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NmpInstruction {
    /// Reduction operation.
    pub opcode: Opcode,
    /// DDR command.
    pub ddr_cmd: DdrCmd,
    /// 34-bit physical address (vector start).
    pub addr: u64,
    /// log2(DRAM reads per vector), 3 bits (vector of `2^vsize` bursts).
    pub vsize: u8,
    /// Weight for weighted summation.
    pub weight: f32,
    /// Batch grouping tag.
    pub batch_tag: bool,
    /// Marks the last instruction of a batch.
    pub last_tag: bool,
    /// Set when the vector lives below rank level (G- or B-region).
    pub bg_tag: bool,
    /// Set when the vector lives at bank level; only valid with `bg_tag`.
    pub bank_tag: bool,
}

/// Error decoding an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode bits.
    BadOpcode,
    /// Unknown DDR command bits.
    BadDdrCmd,
    /// Reserved bits were not zero.
    BadReserved,
    /// bankTag set without BGTag (§4.2: bankTag valid iff BGTag).
    BankTagWithoutBgTag,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DecodeError::BadOpcode => "unknown opcode",
            DecodeError::BadDdrCmd => "unknown DDR command",
            DecodeError::BadReserved => "reserved bits set",
            DecodeError::BankTagWithoutBgTag => "bankTag set without BGTag",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

impl NmpInstruction {
    /// Encodes to an 82-bit word (returned in the low bits of a `u128`).
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds 34 bits, `vsize` exceeds 3 bits, or
    /// `bank_tag` is set without `bg_tag`.
    pub fn encode(&self) -> u128 {
        assert!(self.addr < (1u64 << 34), "addr exceeds 34 bits");
        assert!(self.vsize < 8, "vsize exceeds 3 bits");
        assert!(
            self.bg_tag || !self.bank_tag,
            "bankTag is only valid when BGTag is set"
        );
        let mut w: u128 = 0;
        let mut shift = 0u32;
        let mut put = |val: u128, bits: u32| {
            w |= val << shift;
            shift += bits;
        };
        put(self.opcode as u128, 3);
        put(self.ddr_cmd as u128, 3);
        put(u128::from(self.addr), 34);
        put(u128::from(self.vsize), 3);
        put(u128::from(self.weight.to_bits()), 32);
        put(u128::from(self.batch_tag), 1);
        put(u128::from(self.last_tag), 1);
        put(u128::from(self.bg_tag), 1);
        put(u128::from(self.bank_tag), 1);
        put(0, 3); // reserved
        debug_assert_eq!(shift, INSTRUCTION_BITS);
        w
    }

    /// Decodes an 82-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed fields.
    pub fn decode(w: u128) -> Result<Self, DecodeError> {
        let mut shift = 0u32;
        let mut take = |bits: u32| -> u64 {
            let v = ((w >> shift) & ((1u128 << bits) - 1)) as u64;
            shift += bits;
            v
        };
        let opcode = Opcode::from_bits(take(3)).ok_or(DecodeError::BadOpcode)?;
        let ddr_cmd = DdrCmd::from_bits(take(3)).ok_or(DecodeError::BadDdrCmd)?;
        let addr = take(34);
        let vsize = take(3) as u8;
        let weight = f32::from_bits(take(32) as u32);
        let batch_tag = take(1) != 0;
        let last_tag = take(1) != 0;
        let bg_tag = take(1) != 0;
        let bank_tag = take(1) != 0;
        if take(3) != 0 {
            return Err(DecodeError::BadReserved);
        }
        if w >> INSTRUCTION_BITS != 0 {
            return Err(DecodeError::BadReserved);
        }
        if bank_tag && !bg_tag {
            return Err(DecodeError::BankTagWithoutBgTag);
        }
        Ok(Self {
            opcode,
            ddr_cmd,
            addr,
            vsize,
            weight,
            batch_tag,
            last_tag,
            bg_tag,
            bank_tag,
        })
    }

    /// The NMP level this instruction is dispatched to, per the
    /// BGTag/bankTag co-determination of §4.2.
    pub fn nmp_level(&self) -> NmpLevel {
        match (self.bg_tag, self.bank_tag) {
            (false, _) => NmpLevel::Rank,
            (true, false) => NmpLevel::BankGroup,
            (true, true) => NmpLevel::Bank,
        }
    }
}

/// The three ReCross NMP levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NmpLevel {
    /// Rank-level PE (R-region).
    Rank,
    /// Bank-group-level PE (G-region).
    BankGroup,
    /// Subarray-parallel bank-level PE (B-region).
    Bank,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NmpInstruction {
        NmpInstruction {
            opcode: Opcode::WeightedSum,
            ddr_cmd: DdrCmd::Rd,
            addr: 0x2_2334_5566,
            vsize: 2,
            weight: 1.25,
            batch_tag: true,
            last_tag: false,
            bg_tag: true,
            bank_tag: true,
        }
    }

    #[test]
    fn roundtrip() {
        let inst = sample();
        let decoded = NmpInstruction::decode(inst.encode()).unwrap();
        assert_eq!(decoded, inst);
    }

    #[test]
    fn width_is_82_bits() {
        let w = sample().encode();
        assert_eq!(w >> INSTRUCTION_BITS, 0);
        // High tags occupy the very top bits below reserved.
        assert!(w >> (INSTRUCTION_BITS - 4) != 0);
    }

    #[test]
    fn level_dispatch() {
        let mut i = sample();
        i.bg_tag = false;
        i.bank_tag = false;
        assert_eq!(i.nmp_level(), NmpLevel::Rank);
        i.bg_tag = true;
        assert_eq!(i.nmp_level(), NmpLevel::BankGroup);
        i.bank_tag = true;
        assert_eq!(i.nmp_level(), NmpLevel::Bank);
    }

    #[test]
    fn rejects_bad_tag_combination() {
        let mut i = sample();
        i.bg_tag = true;
        i.bank_tag = true;
        let mut w = i.encode();
        // Bit offsets: opcode 0, ddr 3, addr 6, vsize 40, weight 43,
        // batch 75, last 76, bg 77, bank 78. Clear BGTag (bit 77).
        w &= !(1u128 << 77);
        assert_eq!(
            NmpInstruction::decode(w),
            Err(DecodeError::BankTagWithoutBgTag)
        );
    }

    #[test]
    fn rejects_reserved_bits() {
        let w = sample().encode() | (1u128 << 81);
        assert_eq!(NmpInstruction::decode(w), Err(DecodeError::BadReserved));
    }

    #[test]
    fn rejects_bad_opcode() {
        let w = sample().encode() | 0b111;
        assert_eq!(NmpInstruction::decode(w), Err(DecodeError::BadOpcode));
    }

    #[test]
    #[should_panic(expected = "addr exceeds 34 bits")]
    fn encode_validates_addr() {
        let mut i = sample();
        i.addr = 1 << 34;
        i.encode();
    }

    #[test]
    fn weight_bit_exact() {
        for w in [0.0f32, -1.5, f32::MAX, f32::MIN_POSITIVE] {
            let mut i = sample();
            i.weight = w;
            let d = NmpInstruction::decode(i.encode()).unwrap();
            assert_eq!(d.weight.to_bits(), w.to_bits());
        }
    }
}
