//! Dynamic embedding management (paper §4.5).
//!
//! Two runtime behaviours beyond the static placement:
//!
//! 1. **Embedding table updates** — online-training systems insert new rows
//!    continuously; ReCross treats them as cold and stores them in the
//!    capacity-optimized R-region.
//! 2. **Access-frequency drift** — row popularity changes over time.
//!    ReCross counts accesses over a fixed interval and promotes the
//!    hottest rows of slower regions into the B-region (and demotes the
//!    coldest B rows), keeping the placement near-optimal.
//!
//! The implementation is an *overlay* on the static placement: a bounded
//! remap of individual rows, mirroring the paper's mapping-table indirection.

use std::collections::HashMap;

use crate::config::Region;
use crate::engine::ReCross;
use recross_workload::Trace;

/// A row-granular placement overlay plus the interval counters driving it.
#[derive(Debug)]
pub struct DynamicScheduler {
    /// Lookups per re-evaluation interval (the paper suggests wall-clock
    /// intervals; a lookup budget is the simulation equivalent).
    interval_lookups: u64,
    /// How many rows to promote per interval (the paper's "top 1000").
    top_k: usize,
    /// Interval access counters: (table, row) → count.
    counters: HashMap<(usize, u64), u64>,
    /// Overlay: rows currently promoted into the B-region.
    promoted: HashMap<(usize, u64), u64>, // → overlay slot
    /// Next free overlay slot (B-region tail reserved for promotions).
    next_slot: u64,
    /// Overlay capacity in rows.
    capacity: u64,
    lookups_seen: u64,
    promotions: u64,
    demotions: u64,
    inserts: u64,
}

impl DynamicScheduler {
    /// Creates a scheduler re-evaluating every `interval_lookups` lookups,
    /// promoting up to `top_k` rows, with an overlay capacity of
    /// `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(interval_lookups: u64, top_k: usize, capacity: u64) -> Self {
        assert!(interval_lookups > 0 && top_k > 0 && capacity > 0);
        Self {
            interval_lookups,
            top_k,
            counters: HashMap::new(),
            promoted: HashMap::new(),
            next_slot: 0,
            capacity,
            lookups_seen: 0,
            promotions: 0,
            demotions: 0,
            inserts: 0,
        }
    }

    /// Rows currently promoted.
    pub fn promoted_len(&self) -> usize {
        self.promoted.len()
    }

    /// Total promotions performed.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Total demotions performed.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Rows inserted online (always cold → R-region).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Whether `(table, row)` is currently overlaid into the B-region.
    pub fn is_promoted(&self, table: usize, row: u64) -> bool {
        self.promoted.contains_key(&(table, row))
    }

    /// Records an online row insertion (§4.5: new data are cold, stored in
    /// the R-region — i.e. *not* overlaid).
    pub fn insert_row(&mut self, table: usize, row: u64) {
        self.inserts += 1;
        // Newly inserted rows start cold: ensure they are not promoted.
        if self.promoted.remove(&(table, row)).is_some() {
            self.demotions += 1;
        }
    }

    /// Observes a trace's lookups, re-evaluating the overlay every
    /// interval. Returns the number of re-evaluations triggered.
    pub fn observe(&mut self, trace: &Trace, system: &ReCross) -> u32 {
        let mut reevals = 0;
        for op in trace.iter_ops() {
            for &row in &op.indices {
                *self.counters.entry((op.table, row)).or_insert(0) += 1;
                self.lookups_seen += 1;
                if self.lookups_seen.is_multiple_of(self.interval_lookups) {
                    self.reevaluate(system);
                    reevals += 1;
                }
            }
        }
        reevals
    }

    /// One interval re-evaluation: promote the hottest non-B rows.
    fn reevaluate(&mut self, system: &ReCross) {
        let mut hot: Vec<(&(usize, u64), &u64)> = self.counters.iter().collect();
        hot.sort_unstable_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut promoted_this_round = 0;
        for (&(table, row), _) in hot {
            if promoted_this_round >= self.top_k {
                break;
            }
            let rank = system.profiles()[table].order.rank_of(row);
            let already_b = system.placement().region_of_rank(table, rank) == Region::B;
            if already_b || self.promoted.contains_key(&(table, row)) {
                continue;
            }
            if self.promoted.len() as u64 >= self.capacity {
                // Demote the coldest promoted row (smallest interval count).
                if let Some((&victim, _)) = self
                    .promoted
                    .iter()
                    .map(|(k, v)| (k, *v))
                    .min_by_key(|(k, _)| self.counters.get(*k).copied().unwrap_or(0))
                {
                    self.promoted.remove(&victim);
                    self.demotions += 1;
                }
            }
            self.promoted.insert((table, row), self.next_slot);
            self.next_slot = (self.next_slot + 1) % self.capacity;
            self.promotions += 1;
            promoted_this_round += 1;
        }
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReCrossConfig;
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn system() -> (ReCross, recross_workload::TraceGenerator) {
        let g = TraceGenerator::criteo_scaled(16, 1000)
            .batch_size(4)
            .pooling(16);
        let profiles = analytic_profiles(&g);
        (
            ReCross::new(ReCrossConfig::default(), profiles, 4.0).unwrap(),
            g,
        )
    }

    #[test]
    fn promotes_hot_rows_over_time() {
        let (sys, g) = system();
        let mut dynsched = DynamicScheduler::new(500, 50, 1000);
        let trace = g.generate(21);
        let reevals = dynsched.observe(&trace, &sys);
        assert!(reevals > 0, "intervals should trigger");
        assert!(
            dynsched.promotions() > 0,
            "hot non-B rows should be promoted"
        );
        assert!(dynsched.promoted_len() <= 1000);
    }

    #[test]
    fn capacity_forces_demotion() {
        let (sys, g) = system();
        let mut dynsched = DynamicScheduler::new(200, 20, 10);
        let trace = g.generate(22);
        dynsched.observe(&trace, &sys);
        assert!(dynsched.promoted_len() <= 10);
        if dynsched.promotions() > 10 {
            assert!(dynsched.demotions() > 0);
        }
    }

    #[test]
    fn inserts_are_cold() {
        let (sys, g) = system();
        let mut dynsched = DynamicScheduler::new(100, 10, 100);
        let trace = g.generate(23);
        dynsched.observe(&trace, &sys);
        // Insert a row; whether or not it was promoted, it must be cold after.
        let probe = (0usize, 3u64);
        dynsched.insert_row(probe.0, probe.1);
        assert!(!dynsched.is_promoted(probe.0, probe.1));
        assert_eq!(dynsched.inserts(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        DynamicScheduler::new(0, 1, 1);
    }
}
