//! Bandwidth-aware embedding partitioning (BWP, paper §4.3).
//!
//! The paper formulates table placement as a linear program: minimize the
//! batch latency `t = max_j D_j / bw_j` subject to region capacities
//! (Equ. 3) and the simplex constraints on the splits (Equ. 1–2), solved
//! with Gurobi. Our formulation is the segment-exact LP the paper's
//! narrative implies: each table's popularity axis is cut into `K`
//! piecewise-linear segments of its concave CDF, and a variable
//! `a[i][k][j]` assigns a fraction of segment `k` of table `i` to region
//! `j`. The LP then trades off each segment's *access share* (load) against
//! its *row share* (capacity), automatically sending hot segments to the
//! highest-bandwidth region.
//!
//! The ablation baseline (ReCross-Base, Figure 12) is the naive
//! capacity-proportional split implemented by [`naive_partition`].
#![allow(clippy::needless_range_loop)] // index math over parallel arrays

use recross_lp::{LpProblem, Relation};

use crate::config::Region;
use crate::profile::TableProfile;
use crate::regions::RegionMap;

/// Per-region bandwidth weights used by the latency estimate, in
/// bytes/cycle of aggregate internal bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionBandwidth {
    /// Aggregate bandwidth of each region (indexed by [`Region::index`]).
    pub bytes_per_cycle: [f64; 3],
}

impl RegionBandwidth {
    /// Derives region bandwidths from the region map, DRAM timing, and the
    /// workload's typical vector size. Each region's deliverable bandwidth
    /// is the *minimum* of two limits:
    ///
    /// * the column/bus limit — tCCD_S at the shared rank I/O for R,
    ///   tCCD_L per bank-group I/O for G, tCCD_L per bank column path for B;
    /// * the row-activation limit — a scattered embedding vector costs one
    ///   activation, so a bank sustains one vector per
    ///   `max(tRC, bursts·tCCD_L)` without SALP, and one per
    ///   `max(tRRD_L, bursts·tCCD_L)` with SALP (§3.3: tRCD/tRP overlap
    ///   across subarrays).
    pub fn from_map(
        map: &RegionMap,
        cfg: &recross_dram::DramConfig,
        vector_bytes: u32,
        sap: bool,
    ) -> Self {
        let t = &cfg.timing;
        let topo = &cfg.topology;
        let burst = f64::from(topo.burst_bytes);
        let ranks = f64::from(topo.ranks);
        let v = f64::from(vector_bytes.max(1));
        let bursts = f64::from(vector_bytes.div_ceil(topo.burst_bytes).max(1));
        // Per-bank vector service rate under serial row cycling vs SALP.
        // Bank-PE reads bypass the bank-group I/O and cycle at tCCD_S.
        let serial_bank_bw = v / (t.t_rc as f64).max(bursts * t.t_ccd_s as f64);
        let salp_bank_bw = v / (t.t_rrd_l as f64).max(bursts * t.t_ccd_s as f64);

        let r_col = ranks * burst / t.t_ccd_s as f64;
        let r_act = ranks * map.bank_count(Region::R) as f64 * serial_bank_bw;
        let r_bw = r_col.min(r_act);

        let g_groups: std::collections::HashSet<u32> = map
            .banks_in(Region::G)
            .iter()
            .map(|b| b / topo.banks_per_group)
            .collect();
        let g_col = ranks * g_groups.len() as f64 * burst / t.t_ccd_l as f64;
        let g_act = ranks * map.bank_count(Region::G) as f64 * serial_bank_bw;
        let g_bw = g_col.min(g_act);

        let b_banks = ranks * map.bank_count(Region::B) as f64;
        let b_col = b_banks * burst / t.t_ccd_s as f64;
        let b_act = b_banks * if sap { salp_bank_bw } else { serial_bank_bw };
        let b_bw = b_col.min(b_act);

        Self {
            bytes_per_cycle: [r_bw.max(1e-9), g_bw.max(1e-9), b_bw.max(1e-9)],
        }
    }
}

/// How one table's popularity ranks split across regions: rank ranges
/// `[start, end)` → region, sorted, covering `[0, rows)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSplit {
    ranges: Vec<(u64, u64, Region)>,
}

impl TableSplit {
    /// Builds from ranges; validates coverage.
    ///
    /// # Panics
    ///
    /// Panics if ranges are empty, unsorted, overlapping, or gapped.
    pub fn new(ranges: Vec<(u64, u64, Region)>) -> Self {
        assert!(!ranges.is_empty(), "split must cover the table");
        let mut expect = 0;
        for &(start, end, _) in &ranges {
            assert_eq!(start, expect, "ranges must be contiguous");
            assert!(end >= start, "range end before start");
            expect = end;
        }
        Self { ranges }
    }

    /// Region of a popularity rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is beyond the covered domain.
    pub fn region_of_rank(&self, rank: u64) -> Region {
        for &(start, end, region) in &self.ranges {
            if rank >= start && rank < end {
                return region;
            }
        }
        panic!("rank {rank} outside split domain");
    }

    /// Region-local sequential index of a rank (offset of this rank within
    /// the concatenation of this table's ranges assigned to that region).
    pub fn region_offset(&self, rank: u64) -> u64 {
        let region = self.region_of_rank(rank);
        let mut offset = 0;
        for &(start, end, r) in &self.ranges {
            if r != region {
                continue;
            }
            if rank >= start && rank < end {
                return offset + (rank - start);
            }
            offset += end - start;
        }
        unreachable!("region_of_rank covered this rank")
    }

    /// Total ranks assigned to `region`.
    pub fn count_in(&self, region: Region) -> u64 {
        self.ranges
            .iter()
            .filter(|&&(_, _, r)| r == region)
            .map(|&(s, e, _)| e - s)
            .sum()
    }

    /// The ranges.
    pub fn ranges(&self) -> &[(u64, u64, Region)] {
        &self.ranges
    }
}

/// A complete partitioning decision.
#[derive(Debug, Clone)]
pub struct PartitionDecision {
    /// Per-table rank splits.
    pub splits: Vec<TableSplit>,
    /// Predicted per-region access loads (bytes per batch).
    pub region_load_bytes: [f64; 3],
    /// Predicted batch latency (cycles) = max_j load_j / bw_j.
    pub predicted_cycles: f64,
}

impl PartitionDecision {
    /// Fraction of all predicted accesses served by `region`.
    pub fn load_share(&self, region: Region) -> f64 {
        let total: f64 = self.region_load_bytes.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.region_load_bytes[region.index()] / total
        }
    }
}

/// Errors from the partitioner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The LP was infeasible: tables cannot fit the regions.
    CapacityExceeded,
    /// The LP solver failed numerically.
    SolverFailed(String),
}

impl core::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PartitionError::CapacityExceeded => {
                write!(f, "embedding tables exceed total region capacity")
            }
            PartitionError::SolverFailed(e) => write!(f, "LP solver failed: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// The bandwidth-aware partitioner: solves the §4.3 LP.
///
/// `batch` is the average batch size; `segments` the PWL resolution.
///
/// # Errors
///
/// Returns [`PartitionError`] if the placement is infeasible or the solver
/// fails.
pub fn bandwidth_aware_partition(
    profiles: &[TableProfile],
    map: &RegionMap,
    bw: &RegionBandwidth,
    batch: f64,
    segments: usize,
) -> Result<PartitionDecision, PartitionError> {
    assert!(segments >= 1, "need at least one segment");
    let n = profiles.len();
    let k = segments;
    // Variables: t (latency) then a[i][k][j] (fraction of segment k of
    // table i in region j).
    let var_t = 0usize;
    let var_a = |i: usize, seg: usize, j: usize| 1 + (i * k + seg) * 3 + j;
    let num_vars = 1 + n * k * 3;
    let mut lp = LpProblem::new(num_vars);
    lp.set_objective_coeff(var_t, 1.0);

    // Segment statistics.
    // access_share[i][seg]: fraction of table i's accesses in segment seg.
    // row_frac = 1/k of the table's rows per segment.
    let mut access_share = vec![vec![0.0; k]; n];
    for (i, p) in profiles.iter().enumerate() {
        for (seg, share) in access_share[i].iter_mut().enumerate() {
            let lo = seg as f64 / k as f64;
            let hi = (seg + 1) as f64 / k as f64;
            *share = (p.cdf(hi) - p.cdf(lo)).max(0.0);
        }
    }

    // Equ. 2: each segment fully assigned.
    for i in 0..n {
        for seg in 0..k {
            lp.add_constraint(
                (0..3).map(|j| (var_a(i, seg, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            );
        }
    }

    // Equ. 3: region capacities (bytes).
    for (j, region) in Region::ALL.iter().enumerate() {
        let cap = map.capacity_bytes(*region) as f64;
        let mut terms = Vec::with_capacity(n * k);
        for (i, p) in profiles.iter().enumerate() {
            let seg_bytes = p.spec.bytes() as f64 / k as f64;
            for seg in 0..k {
                terms.push((var_a(i, seg, j), seg_bytes));
            }
        }
        lp.add_constraint(terms, Relation::Le, cap);
    }

    // Latency: t ≥ D_j / bw_j, D_j = Σ_i Σ_seg a · access_share · w_i where
    // w_i = pool_i × vsize_i × prob_i × batch (bytes per batch).
    for j in 0..3 {
        let bwj = bw.bytes_per_cycle[j];
        let mut terms = vec![(var_t, 1.0)];
        for (i, p) in profiles.iter().enumerate() {
            let w = p.pool * p.spec.vector_bytes() as f64 * p.prob * batch;
            for seg in 0..k {
                let load = access_share[i][seg] * w / bwj;
                if load > 0.0 {
                    terms.push((var_a(i, seg, j), -load));
                }
            }
        }
        lp.add_constraint(terms, Relation::Ge, 0.0);
    }

    let sol = lp.solve().map_err(|e| match e {
        recross_lp::LpError::Infeasible => PartitionError::CapacityExceeded,
        other => PartitionError::SolverFailed(other.to_string()),
    })?;

    // Translate fractional assignments into rank ranges: within each
    // segment, region order B → G → R (hotter sub-ranks to faster regions).
    let mut splits = Vec::with_capacity(n);
    let mut region_load_bytes = [0.0f64; 3];
    for (i, p) in profiles.iter().enumerate() {
        let rows = p.spec.rows;
        let mut ranges: Vec<(u64, u64, Region)> = Vec::new();
        let mut cursor = 0u64;
        for seg in 0..k {
            let seg_start = rows * seg as u64 / k as u64;
            let seg_end = rows * (seg + 1) as u64 / k as u64;
            let seg_rows = seg_end - seg_start;
            let mut remaining = seg_rows;
            // Hotter-first region order within the segment.
            for &region in &[Region::B, Region::G, Region::R] {
                let frac = sol.values[var_a(i, seg, region.index())].clamp(0.0, 1.0);
                let mut take = (seg_rows as f64 * frac).round() as u64;
                take = take.min(remaining);
                // Last region absorbs rounding.
                if region == Region::R {
                    take = remaining;
                }
                if take > 0 {
                    push_range(&mut ranges, cursor, cursor + take, region);
                    cursor += take;
                    remaining -= take;
                }
                let w = p.pool * p.spec.vector_bytes() as f64 * p.prob * batch;
                region_load_bytes[region.index()] += access_share[i][seg] * frac * w;
            }
            debug_assert_eq!(cursor, seg_end);
        }
        if ranges.is_empty() {
            ranges.push((0, rows, Region::R));
        }
        splits.push(TableSplit::new(ranges));
    }
    let predicted_cycles = (0..3)
        .map(|j| region_load_bytes[j] / bw.bytes_per_cycle[j])
        .fold(0.0f64, f64::max);
    Ok(PartitionDecision {
        splits,
        region_load_bytes,
        predicted_cycles,
    })
}

/// The region-ordered *water-filling* partitioner: an exact alternative to
/// the LP that moves marginal popularity-rank chunks between regions until
/// the per-region latencies equalize.
///
/// Unlike the segment LP (which may interleave regions within a table),
/// this enforces the strict ordering hottest→B, middle→G, tail→R per table
/// and greedily reassigns the chunk with the highest marginal benefit each
/// iteration. It serves as an ablation of the paper's LP formulation: on
/// concave CDFs both converge to near-identical latency bounds.
pub fn ordered_partition(
    profiles: &[TableProfile],
    map: &RegionMap,
    bw: &RegionBandwidth,
    batch: f64,
    chunks: usize,
    iterations: usize,
) -> PartitionDecision {
    assert!(chunks >= 1, "need at least one chunk per table");
    let n = profiles.len();
    // State: per table, number of chunks assigned to B and to G (the rest
    // is R); chunk boundaries are *geometric* in the popularity axis so
    // the hot head is finely divisible (a uniform first chunk of a Zipf
    // table would carry most of its accesses in one indivisible lump).
    let boundary = |k: usize| (k as f64 / chunks as f64).powi(3);
    let mut b_chunks = vec![0usize; n];
    let mut g_chunks = vec![0usize; n];
    let weight = |i: usize| {
        profiles[i].pool * profiles[i].spec.vector_bytes() as f64 * profiles[i].prob * batch
    };
    let share = |i: usize, lo: usize, hi: usize| {
        let p = &profiles[i];
        p.cdf(boundary(hi)) - p.cdf(boundary(lo))
    };
    let chunk_bytes =
        |i: usize, k: usize| profiles[i].spec.bytes() as f64 * (boundary(k + 1) - boundary(k));
    let caps = [
        map.capacity_bytes(Region::R) as f64,
        map.capacity_bytes(Region::G) as f64,
        map.capacity_bytes(Region::B) as f64,
    ];
    let mut loads = [0.0f64; 3]; // bytes accessed per region
    let mut used = [0.0f64; 3]; // capacity bytes per region
    for i in 0..n {
        loads[Region::R.index()] += weight(i); // everything starts in R
        used[Region::R.index()] += profiles[i].spec.bytes() as f64;
    }
    let latency = |loads: &[f64; 3]| {
        (0..3)
            .map(|j| loads[j] / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max)
    };
    // Potential: the total of per-region latencies. Every move toward a
    // faster region strictly decreases it, so accepting max-neutral
    // potential-decreasing moves cannot cycle.
    let potential = |loads: &[f64; 3]| {
        (0..3)
            .map(|j| loads[j] / bw.bytes_per_cycle[j])
            .sum::<f64>()
    };
    for _ in 0..iterations {
        // Candidate moves: promote a table's next chunk across the R→G or
        // G→B boundary, keeping the per-table hotness ordering.
        let mut best: Option<(f64, usize, Region)> = None;
        let mut lateral: Option<(f64, usize, Region)> = None;
        let mut free: Option<(usize, Region)> = None;
        let current = latency(&loads);
        let current_potential = potential(&loads);
        for i in 0..n {
            let assigned = b_chunks[i] + g_chunks[i];
            for region in [Region::G, Region::B] {
                if region == Region::G && assigned >= chunks {
                    continue;
                }
                if region == Region::B && b_chunks[i] >= chunks {
                    continue;
                }
                if region == Region::B && g_chunks[i] == 0 && assigned >= chunks {
                    continue;
                }
                let next_chunk = if region == Region::B {
                    b_chunks[i]
                } else {
                    assigned
                };
                if used[region.index()] + chunk_bytes(i, next_chunk) > caps[region.index()] {
                    continue;
                }
                let s = if region == Region::B {
                    share(i, b_chunks[i], b_chunks[i] + 1)
                } else {
                    share(i, assigned, assigned + 1)
                };
                let mut trial = loads;
                if region == Region::B {
                    if g_chunks[i] > 0 {
                        trial[Region::G.index()] -= s * weight(i);
                    } else {
                        trial[Region::R.index()] -= s * weight(i);
                    }
                    trial[Region::B.index()] += s * weight(i);
                } else {
                    trial[Region::R.index()] -= s * weight(i);
                    trial[Region::G.index()] += s * weight(i);
                }
                let t = latency(&trial);
                let pot = potential(&trial);
                if t < current - 1e-9 && best.is_none_or(|(bt, _, _)| t < bt) {
                    best = Some((t, i, region));
                } else if t <= current + 1e-9
                    && pot < current_potential - 1e-9
                    && lateral.is_none_or(|(lp, _, _)| pot < lp)
                {
                    // Max-neutral move into a faster region: frees headroom
                    // for later max-reducing moves (e.g. G→B while R is the
                    // bottleneck).
                    lateral = Some((pot, i, region));
                } else if s * weight(i) == 0.0 && free.is_none() {
                    // An empty chunk (rounds to zero rows for tiny tables):
                    // advancing over it is free and unblocks later chunks.
                    free = Some((i, region));
                }
            }
        }
        // Demotion candidates (coldest chunk back toward a slower region):
        // strict improvers only — they undo overshoot once B or G becomes
        // the bottleneck. Encoded as (table, from-region).
        let mut demote: Option<(f64, usize, Region)> = None;
        for i in 0..n {
            // B → G: coldest B chunk.
            if b_chunks[i] > 0 {
                let k = b_chunks[i] - 1;
                let sw = share(i, k, k + 1) * weight(i);
                let mut trial = loads;
                trial[Region::B.index()] -= sw;
                trial[Region::G.index()] += sw;
                let t = latency(&trial);
                if t < current - 1e-9 && demote.is_none_or(|(dt, _, _)| t < dt) {
                    demote = Some((t, i, Region::B));
                }
            }
            // G → R: coldest G chunk.
            if g_chunks[i] > 0 {
                let k = b_chunks[i] + g_chunks[i] - 1;
                let sw = share(i, k, k + 1) * weight(i);
                let mut trial = loads;
                trial[Region::G.index()] -= sw;
                trial[Region::R.index()] += sw;
                let t = latency(&trial);
                if t < current - 1e-9 && demote.is_none_or(|(dt, _, _)| t < dt) {
                    demote = Some((t, i, Region::G));
                }
            }
        }
        if let Some((dt, di, dfrom)) = demote {
            let better_than_best = best.is_none_or(|(bt, _, _)| dt < bt);
            if better_than_best {
                if dfrom == Region::B {
                    let k = b_chunks[di] - 1;
                    let sw = share(di, k, k + 1) * weight(di);
                    b_chunks[di] -= 1;
                    g_chunks[di] += 1;
                    loads[Region::B.index()] -= sw;
                    loads[Region::G.index()] += sw;
                    used[Region::B.index()] -= chunk_bytes(di, k);
                    used[Region::G.index()] += chunk_bytes(di, k);
                } else {
                    let k = b_chunks[di] + g_chunks[di] - 1;
                    let sw = share(di, k, k + 1) * weight(di);
                    g_chunks[di] -= 1;
                    loads[Region::G.index()] -= sw;
                    loads[Region::R.index()] += sw;
                    used[Region::G.index()] -= chunk_bytes(di, k);
                    used[Region::R.index()] += chunk_bytes(di, k);
                }
                continue;
            }
        }
        let chosen = best
            .map(|(_, i, r)| (i, r))
            .or(lateral.map(|(_, i, r)| (i, r)))
            .or(free);
        let Some((i, region)) = chosen else { break };
        if region == Region::B {
            let k = b_chunks[i];
            let s = share(i, k, k + 1);
            if g_chunks[i] > 0 {
                g_chunks[i] -= 1;
                loads[Region::G.index()] -= s * weight(i);
                used[Region::G.index()] -= chunk_bytes(i, k);
            } else {
                loads[Region::R.index()] -= s * weight(i);
                used[Region::R.index()] -= chunk_bytes(i, k);
            }
            b_chunks[i] += 1;
            loads[Region::B.index()] += s * weight(i);
            used[Region::B.index()] += chunk_bytes(i, k);
        } else {
            let assigned = b_chunks[i] + g_chunks[i];
            let s = share(i, assigned, assigned + 1);
            g_chunks[i] += 1;
            loads[Region::R.index()] -= s * weight(i);
            loads[Region::G.index()] += s * weight(i);
            used[Region::R.index()] -= chunk_bytes(i, assigned);
            used[Region::G.index()] += chunk_bytes(i, assigned);
        }
    }
    // Materialize splits.
    let mut splits = Vec::with_capacity(n);
    for (i, p) in profiles.iter().enumerate() {
        let rows = p.spec.rows;
        let b_end = (rows as f64 * boundary(b_chunks[i])).round() as u64;
        let g_end = (rows as f64 * boundary(b_chunks[i] + g_chunks[i])).round() as u64;
        let (b_end, g_end) = (b_end.min(rows), g_end.clamp(b_end.min(rows), rows));
        let mut ranges = Vec::new();
        push_range(&mut ranges, 0, b_end, Region::B);
        push_range(&mut ranges, b_end, g_end, Region::G);
        push_range(&mut ranges, g_end, rows, Region::R);
        if ranges.is_empty() {
            ranges.push((0, rows, Region::R));
        }
        splits.push(TableSplit::new(ranges));
    }
    let predicted_cycles = latency(&loads);
    PartitionDecision {
        splits,
        region_load_bytes: loads,
        predicted_cycles,
    }
}

/// The naive (ReCross-Base) split: every table divided in proportion to the
/// region capacities, hottest ranks to B, then G, then R — no bandwidth
/// quantification.
pub fn naive_partition(profiles: &[TableProfile], map: &RegionMap) -> PartitionDecision {
    let caps = [
        map.capacity_bytes(Region::R) as f64,
        map.capacity_bytes(Region::G) as f64,
        map.capacity_bytes(Region::B) as f64,
    ];
    let total_cap: f64 = caps.iter().sum();
    let mut splits = Vec::with_capacity(profiles.len());
    let mut region_load_bytes = [0.0f64; 3];
    for p in profiles {
        let rows = p.spec.rows;
        let b_rows = (rows as f64 * caps[Region::B.index()] / total_cap) as u64;
        let g_rows = (rows as f64 * caps[Region::G.index()] / total_cap) as u64;
        let b_end = b_rows.min(rows);
        let g_end = (b_rows + g_rows).min(rows);
        let mut ranges = Vec::new();
        push_range(&mut ranges, 0, b_end, Region::B);
        push_range(&mut ranges, b_end, g_end, Region::G);
        push_range(&mut ranges, g_end, rows, Region::R);
        let w = p.pool * p.spec.vector_bytes() as f64 * p.prob;
        region_load_bytes[Region::B.index()] += p.cdf(b_end as f64 / rows as f64) * w;
        region_load_bytes[Region::G.index()] +=
            (p.cdf(g_end as f64 / rows as f64) - p.cdf(b_end as f64 / rows as f64)) * w;
        region_load_bytes[Region::R.index()] += (1.0 - p.cdf(g_end as f64 / rows as f64)) * w;
        splits.push(TableSplit::new(ranges));
    }
    PartitionDecision {
        splits,
        region_load_bytes,
        predicted_cycles: 0.0,
    }
}

fn push_range(ranges: &mut Vec<(u64, u64, Region)>, start: u64, end: u64, region: Region) {
    if end <= start {
        return;
    }
    if let Some(last) = ranges.last_mut() {
        if last.2 == region && last.1 == start {
            last.1 = end;
            return;
        }
    }
    ranges.push((start, end, region));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReCrossConfig;
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn setup() -> (Vec<TableProfile>, RegionMap, RegionBandwidth) {
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(32)
            .pooling(80);
        let profiles = analytic_profiles(&g);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        (profiles, map, bw)
    }

    #[test]
    fn split_region_lookup() {
        let s = TableSplit::new(vec![
            (0, 10, Region::B),
            (10, 50, Region::G),
            (50, 100, Region::R),
        ]);
        assert_eq!(s.region_of_rank(0), Region::B);
        assert_eq!(s.region_of_rank(10), Region::G);
        assert_eq!(s.region_of_rank(99), Region::R);
        assert_eq!(s.count_in(Region::G), 40);
        assert_eq!(s.region_offset(12), 2);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn split_rejects_gaps() {
        TableSplit::new(vec![(0, 10, Region::B), (20, 30, Region::R)]);
    }

    #[test]
    fn region_offsets_are_dense_per_region() {
        let s = TableSplit::new(vec![
            (0, 5, Region::B),
            (5, 10, Region::G),
            (10, 15, Region::B),
            (15, 20, Region::R),
        ]);
        // B ranks: 0..5 then 10..15 → offsets 0..10.
        let offsets: Vec<u64> = (0..5).chain(10..15).map(|r| s.region_offset(r)).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bwp_puts_hot_data_in_fast_regions() {
        let (profiles, map, bw) = setup();
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 32.0, 8).unwrap();
        // The hottest rank of a big skewed table should not be in R.
        let big = profiles
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.spec.rows)
            .map(|(i, _)| i)
            .unwrap();
        assert_ne!(d.splits[big].region_of_rank(0), Region::R);
        // The B region serves a disproportionate access share: its load
        // share must exceed its capacity share (4/32).
        assert!(d.load_share(Region::B) > 4.0 / 32.0);
    }

    #[test]
    fn bwp_balances_latency_across_regions() {
        let (profiles, map, bw) = setup();
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 32.0, 8).unwrap();
        let lat: Vec<f64> = (0..3)
            .map(|j| d.region_load_bytes[j] / bw.bytes_per_cycle[j])
            .collect();
        let max = lat.iter().cloned().fold(0.0, f64::max);
        assert!((max - d.predicted_cycles).abs() < 1e-6);
        // The naive split should predict a worse (more imbalanced) bound.
        let naive = naive_partition(&profiles, &map);
        let naive_max = (0..3)
            .map(|j| naive.region_load_bytes[j] * 32.0 / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max);
        assert!(
            d.predicted_cycles <= naive_max * 1.001,
            "LP {} must beat naive {}",
            d.predicted_cycles,
            naive_max
        );
    }

    #[test]
    fn splits_cover_all_rows() {
        let (profiles, map, bw) = setup();
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 32.0, 4).unwrap();
        for (p, s) in profiles.iter().zip(&d.splits) {
            let covered: u64 = Region::ALL.iter().map(|&r| s.count_in(r)).sum();
            assert_eq!(covered, p.spec.rows);
        }
    }

    #[test]
    fn naive_is_capacity_proportional() {
        let (profiles, map, _) = setup();
        let d = naive_partition(&profiles, &map);
        let p = &profiles[2]; // a big table
        let s = &d.splits[2];
        let b_frac = s.count_in(Region::B) as f64 / p.spec.rows as f64;
        assert!((b_frac - 4.0 / 32.0).abs() < 0.01, "B share {b_frac}");
    }

    #[test]
    fn ordered_partition_close_to_lp() {
        let (profiles, map, bw) = setup();
        let lp = bandwidth_aware_partition(&profiles, &map, &bw, 32.0, 16).unwrap();
        let ordered = ordered_partition(&profiles, &map, &bw, 32.0, 32, 5_000);
        // The greedy ordered refinement should land within 25% of the LP's
        // latency bound on concave CDFs.
        assert!(
            ordered.predicted_cycles <= lp.predicted_cycles * 1.25 + 1.0,
            "ordered {} vs lp {}",
            ordered.predicted_cycles,
            lp.predicted_cycles
        );
        // And must cover all rows.
        for (p, s) in profiles.iter().zip(&ordered.splits) {
            let covered: u64 = Region::ALL.iter().map(|&r| s.count_in(r)).sum();
            assert_eq!(covered, p.spec.rows);
        }
    }

    #[test]
    fn ordered_partition_monotone_regions() {
        let (profiles, map, bw) = setup();
        let d = ordered_partition(&profiles, &map, &bw, 32.0, 16, 2_000);
        // Strict hotness ordering per table: B ranges before G before R.
        for split in &d.splits {
            let mut last = Region::B;
            for &(_, _, r) in split.ranges() {
                assert!(
                    r.index() >= last.index()
                        || r == last
                        || (last == Region::B && r == Region::G)
                        || (last == Region::G && r == Region::R)
                        || last == Region::B && r == Region::R
                );
                last = r;
            }
        }
    }

    #[test]
    fn capacity_infeasibility_detected() {
        let (profiles, _, bw) = setup();
        // Shrink the topology so the tables cannot fit anywhere.
        let mut cfg = ReCrossConfig::default();
        cfg.dram.topology.rows_per_bank = 256;
        cfg.dram.topology.subarrays_per_bank = 1;
        let map = RegionMap::new(&cfg);
        // Make the tables huge relative to the tiny topology.
        let g = TraceGenerator::criteo_kaggle(64);
        let big = analytic_profiles(&g);
        let r = bandwidth_aware_partition(&big, &map, &bw, 32.0, 4);
        assert_eq!(r.unwrap_err(), PartitionError::CapacityExceeded);
        let _ = profiles;
    }
}
