//! Data placement: from a partitioning decision to physical addresses
//! (paper §4.3 "Data Placement").
//!
//! The paper keeps a *mapping table* per embedding table translating row
//! indices to physical addresses, because hot rows selected by frequency
//! are scattered through the table. Our equivalent is computed, not stored:
//! `row → popularity rank → (region, region-local slot) → PhysAddr`. The
//! region-local slot is derived from per-table slot bases so distinct
//! tables never collide, and slots rotate across the region's banks for
//! maximal node parallelism. The paper's mapping-table *overhead* (34 bits
//! per row, §5.6) is still reported by [`Placement::mapping_table_bytes`].

use recross_dram::PhysAddr;

use crate::config::Region;
use crate::partition::PartitionDecision;
use crate::profile::TableProfile;
use crate::regions::RegionMap;

/// A fully resolved placement of every table.
#[derive(Debug, Clone)]
pub struct Placement {
    map: RegionMap,
    decision: PartitionDecision,
    /// Per table, per region: base slot (in vectors) within the region.
    bases: Vec<[u64; 3]>,
    /// Per table: vector size in bytes.
    vector_bytes: Vec<u32>,
    /// Per table: hot-rank order handle index (profiles are kept by the
    /// caller; we store what we need).
    total_rows: u64,
    /// First free slot per region (after all table allocations) — used by
    /// the hot-entry replication extension.
    free_slot: [u64; 3],
}

impl Placement {
    /// Lays out all tables according to `decision`.
    ///
    /// # Panics
    ///
    /// Panics if a region overflows its vector capacity (the partitioner's
    /// capacity constraints should prevent this).
    pub fn new(profiles: &[TableProfile], decision: PartitionDecision, map: RegionMap) -> Self {
        assert_eq!(profiles.len(), decision.splits.len());
        let mut cursor = [0u64; 3];
        let mut bases = Vec::with_capacity(profiles.len());
        let mut vector_bytes = Vec::with_capacity(profiles.len());
        let mut total_rows = 0;
        for (p, split) in profiles.iter().zip(&decision.splits) {
            let mut b = [0u64; 3];
            for region in Region::ALL {
                b[region.index()] = cursor[region.index()];
                cursor[region.index()] += split.count_in(region);
            }
            bases.push(b);
            vector_bytes.push(p.spec.vector_bytes() as u32);
            total_rows += p.spec.rows;
        }
        // Validate capacity per region using the *largest* vector size for
        // a conservative slot bound (regions pack per-vector-size slots; we
        // use a shared slot granularity of the max vector).
        let max_vec = vector_bytes.iter().copied().max().unwrap_or(64);
        for region in Region::ALL {
            let slots = map.vector_slots(region, max_vec);
            assert!(
                cursor[region.index()] <= slots,
                "region {region} overflows: {} > {slots} slots",
                cursor[region.index()]
            );
        }
        Self {
            map,
            decision,
            bases,
            vector_bytes,
            total_rows,
            free_slot: cursor,
        }
    }

    /// The region map.
    pub fn region_map(&self) -> &RegionMap {
        &self.map
    }

    /// The partitioning decision.
    pub fn decision(&self) -> &PartitionDecision {
        &self.decision
    }

    /// Region serving `(table, rank)` (popularity rank, not row id).
    pub fn region_of_rank(&self, table: usize, rank: u64) -> Region {
        self.decision.splits[table].region_of_rank(rank)
    }

    /// Physical address of `(table, rank)`.
    ///
    /// All tables share each region's slot space; slots use a common
    /// granularity of the largest vector so distinct tables never overlap.
    pub fn addr_of_rank(&self, table: usize, rank: u64) -> PhysAddr {
        let split = &self.decision.splits[table];
        let region = split.region_of_rank(rank);
        let slot = self.bases[table][region.index()] + split.region_offset(rank);
        let max_vec = self.vector_bytes.iter().copied().max().unwrap_or(64);
        self.map.slot_addr(region, slot, max_vec)
    }

    /// First slot of a region not used by any table (replica area base).
    pub fn free_slot(&self, region: Region) -> u64 {
        self.free_slot[region.index()]
    }

    /// Address of a slot in a region's *free* (post-table) area — used for
    /// hot-entry replicas.
    ///
    /// # Panics
    ///
    /// Panics if the slot exceeds the region's capacity.
    pub fn spare_addr(&self, region: Region, offset: u64) -> recross_dram::PhysAddr {
        let max_vec = self.vector_bytes.iter().copied().max().unwrap_or(64);
        self.map
            .slot_addr(region, self.free_slot[region.index()] + offset, max_vec)
    }

    /// Bursts needed for one vector of `table`.
    pub fn bursts(&self, table: usize, burst_bytes: u32) -> u32 {
        self.vector_bytes[table].div_ceil(burst_bytes)
    }

    /// The paper's mapping-table overhead: 34 bits per embedding row
    /// (§5.6), rounded up to bytes.
    pub fn mapping_table_bytes(&self) -> u64 {
        (self.total_rows * 34).div_ceil(8)
    }

    /// Fraction of the model size the mapping table costs (the paper
    /// reports < 4 %).
    pub fn mapping_table_overhead(&self, model_bytes: u64) -> f64 {
        if model_bytes == 0 {
            0.0
        } else {
            self.mapping_table_bytes() as f64 / model_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReCrossConfig;
    use crate::partition::{bandwidth_aware_partition, RegionBandwidth};
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn placement() -> (Placement, Vec<TableProfile>) {
        let g = TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(8)
            .pooling(20);
        let profiles = analytic_profiles(&g);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, 8).unwrap();
        (Placement::new(&profiles, d, map), profiles)
    }

    #[test]
    fn addresses_land_in_their_region() {
        let (p, profiles) = placement();
        for (t, prof) in profiles.iter().enumerate() {
            for rank in (0..prof.spec.rows).step_by((prof.spec.rows as usize / 17).max(1)) {
                let region = p.region_of_rank(t, rank);
                let addr = p.addr_of_rank(t, rank);
                assert_eq!(p.region_map().region_of(&addr), region);
            }
        }
    }

    #[test]
    fn addresses_are_injective_across_tables() {
        let (p, profiles) = placement();
        let mut seen = std::collections::HashSet::new();
        for (t, prof) in profiles.iter().enumerate() {
            for rank in (0..prof.spec.rows).step_by((prof.spec.rows as usize / 503).max(1)) {
                let a = p.addr_of_rank(t, rank);
                assert!(
                    seen.insert((a.rank, a.bank_group, a.bank, a.row, a.col_byte)),
                    "collision: table {t} rank {rank} at {a}"
                );
            }
        }
    }

    #[test]
    fn hot_ranks_rotate_across_b_nodes() {
        let (p, _) = placement();
        // The hottest ranks of the biggest table should spread over
        // multiple B banks (node-first rotation).
        let t = 2; // huge Criteo table
        let nodes: std::collections::HashSet<(u32, u32, u32)> = (0..8u64)
            .filter(|&r| p.region_of_rank(t, r) == Region::B)
            .map(|r| {
                let a = p.addr_of_rank(t, r);
                (a.rank, a.bank_group, a.bank)
            })
            .collect();
        assert!(nodes.len() > 1, "hot ranks must not pile on one bank");
    }

    #[test]
    fn mapping_table_overhead_is_small() {
        let (p, profiles) = placement();
        let model_bytes: u64 = profiles.iter().map(|t| t.spec.bytes()).sum();
        let overhead = p.mapping_table_overhead(model_bytes);
        // 34 bits per 256-byte row ≈ 1.7 %.
        assert!(overhead < 0.04, "paper: < 4 %, got {overhead}");
        assert!(overhead > 0.0);
    }
}
