//! Hot-entry replication for the B-region (an extension in the spirit of
//! TRiM's technique, which the paper's §3.1 discusses).
//!
//! Even inside the high-bandwidth B-region, the single hottest rows can pin
//! one bank within an *operation* (the per-op imbalance of Figure 13).
//! Replicating the globally hottest entries across the B banks and
//! round-robining accesses over the copies spreads that residual hot spot.
//! The copies live in the B-region's spare slot area behind all table
//! allocations, so no table data moves.

use std::collections::HashMap;

use recross_dram::PhysAddr;

use crate::config::Region;
use crate::placement::Placement;
use crate::profile::TableProfile;

/// A replica directory for the hottest `(table, rank)` entries.
#[derive(Debug)]
pub struct HotReplicas {
    /// `(table, popularity rank)` → first replica offset in the spare area.
    directory: HashMap<(usize, u64), u64>,
    replicas: u64,
    counter: u64,
}

impl HotReplicas {
    /// Replicates the `per_table` hottest ranks of every table `replicas`
    /// times into the B-region spare area.
    ///
    /// Only ranks the placement already serves from the B-region are
    /// replicated (replicating R-region tail rows would *add* hot traffic
    /// to B).
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the spare area cannot hold the copies.
    pub fn build(
        profiles: &[TableProfile],
        placement: &Placement,
        per_table: u64,
        replicas: u32,
    ) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        let mut directory = HashMap::new();
        let mut next = 0u64;
        for (t, p) in profiles.iter().enumerate() {
            let limit = per_table.min(p.spec.rows);
            for rank in 0..limit {
                if placement.region_of_rank(t, rank) != Region::B {
                    continue;
                }
                directory.insert((t, rank), next);
                next += u64::from(replicas);
            }
        }
        // Capacity check via a probing address computation of the last slot.
        if next > 0 {
            let _ = placement.spare_addr(Region::B, next - 1);
        }
        Self {
            directory,
            replicas: u64::from(replicas),
            counter: 0,
        }
    }

    /// Entries replicated.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether no entry is replicated.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Redirects an access to `(table, rank)` to one of its replicas
    /// (round-robin), or `None` if the entry is not replicated.
    pub fn redirect(&mut self, placement: &Placement, table: usize, rank: u64) -> Option<PhysAddr> {
        let &base = self.directory.get(&(table, rank))?;
        self.counter = self.counter.wrapping_add(1);
        Some(placement.spare_addr(Region::B, base + self.counter % self.replicas))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReCrossConfig;
    use crate::engine::ReCross;
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn system() -> (ReCross, Vec<TableProfile>) {
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(8)
            .pooling(40);
        let profiles = analytic_profiles(&g);
        let sys = ReCross::new(ReCrossConfig::default(), profiles.clone(), 8.0).expect("fits");
        (sys, profiles)
    }

    #[test]
    fn replicates_only_b_region_ranks() {
        let (sys, profiles) = system();
        let reps = HotReplicas::build(&profiles, sys.placement(), 16, 4);
        assert!(!reps.is_empty());
        for &(t, rank) in reps.directory.keys() {
            assert_eq!(sys.placement().region_of_rank(t, rank), Region::B);
        }
    }

    #[test]
    fn redirect_round_robins_across_banks() {
        let (sys, profiles) = system();
        let mut reps = HotReplicas::build(&profiles, sys.placement(), 8, 8);
        let &(t, rank) = reps.directory.keys().next().expect("non-empty");
        let addrs: std::collections::HashSet<(u32, u32, u32)> = (0..8)
            .map(|_| {
                let a = reps.redirect(sys.placement(), t, rank).expect("replicated");
                (a.rank, a.bank_group, a.bank)
            })
            .collect();
        assert!(addrs.len() > 1, "replicas must span banks: {addrs:?}");
        // All replicas stay in the B-region.
        for _ in 0..8 {
            let a = reps.redirect(sys.placement(), t, rank).unwrap();
            assert_eq!(sys.placement().region_map().region_of(&a), Region::B);
        }
    }

    #[test]
    fn unreplicated_ranks_pass_through() {
        let (sys, profiles) = system();
        let mut reps = HotReplicas::build(&profiles, sys.placement(), 4, 2);
        assert!(reps.redirect(sys.placement(), 0, u64::MAX - 1).is_none());
    }

    #[test]
    fn replica_addresses_do_not_collide_with_tables() {
        let (sys, profiles) = system();
        let mut reps = HotReplicas::build(&profiles, sys.placement(), 8, 4);
        // Collect every replica address and a sample of table addresses.
        let mut replica_addrs = std::collections::HashSet::new();
        let keys: Vec<(usize, u64)> = reps.directory.keys().copied().collect();
        for (t, rank) in keys {
            for _ in 0..4 {
                let a = reps.redirect(sys.placement(), t, rank).unwrap();
                replica_addrs.insert((a.rank, a.bank_group, a.bank, a.row, a.col_byte));
            }
        }
        for (t, p) in profiles.iter().enumerate() {
            let step = (p.spec.rows / 29).max(1);
            for rank in (0..p.spec.rows).step_by(step as usize) {
                let a = sys.placement().addr_of_rank(t, rank);
                assert!(
                    !replica_addrs.contains(&(a.rank, a.bank_group, a.bank, a.row, a.col_byte)),
                    "replica collided with table data"
                );
            }
        }
    }
}
