//! # recross
//!
//! ReCross: a cross-level near-memory-processing architecture for
//! personalized-recommendation embedding layers — the primary contribution
//! of Liu et al., *Accelerating Personalized Recommendation with
//! Cross-level Near-Memory Processing* (ISCA 2023), reproduced in Rust.
//!
//! ReCross places processing elements at three DRAM levels simultaneously —
//! rank (R-region), bank-group (G-region), and subarray-parallel bank
//! (B-region) — and co-designs the software that feeds them:
//!
//! * [`config`] — PE counts, region split, ablation toggles, the Figure 14
//!   exploration configs;
//! * [`isa`] — the 82-bit compressed NMP instruction of §4.2;
//! * [`regions`] — the R/G/B bank carve-out and region addressing;
//! * [`profile`] — statistical table profiles (analytic or trace-derived);
//! * [`partition`] — bandwidth-aware partitioning as a linear program
//!   (§4.3), solved by `recross-lp`;
//! * [`placement`] — popularity-rank → physical-address mapping tables;
//! * [`engine`] — the cross-level execution engine with the rank
//!   summarizer and locality-aware scheduling;
//! * [`dynamic`] — online insertion and access-drift re-scheduling (§4.5).
//!
//! # Examples
//!
//! ```
//! use recross::config::ReCrossConfig;
//! use recross::engine::ReCross;
//! use recross::profile::analytic_profiles;
//! use recross_nmp::accel::EmbeddingAccelerator;
//! use recross_workload::TraceGenerator;
//!
//! let generator = TraceGenerator::criteo_scaled(64, 10_000)
//!     .batch_size(2)
//!     .pooling(8);
//! let trace = generator.generate(1);
//! let profiles = analytic_profiles(&generator);
//! let mut system = ReCross::new(ReCrossConfig::default(), profiles, 2.0)?;
//! let report = system.run(&trace);
//! assert!(report.cycles > 0);
//! # Ok::<(), recross::partition::PartitionError>(())
//! ```

pub mod config;
pub mod dynamic;
pub mod engine;
pub mod host;
pub mod isa;
pub mod partition;
pub mod placement;
pub mod profile;
pub mod regions;
pub mod replication;

pub use config::{ReCrossConfig, Region};
pub use engine::ReCross;
pub use host::{DispatchStats, EmbeddingRequest, NmpExtension};
pub use isa::{NmpInstruction, NmpLevel, INSTRUCTION_BITS};
pub use partition::{
    bandwidth_aware_partition, naive_partition, ordered_partition, PartitionDecision,
    RegionBandwidth, TableSplit,
};
pub use placement::Placement;
pub use profile::{analytic_profiles, empirical_profiles, HotOrder, TableProfile};
pub use regions::RegionMap;
pub use replication::HotReplicas;
