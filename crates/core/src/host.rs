//! The host-side NMP extension (paper Figure 8(b)/(c)).
//!
//! The host offloads an embedding operation by pushing `(table, index,
//! weight)` requests into a queue; the **encoder** turns each into an
//! 82-bit [`NmpInstruction`] with the right address and BGTag/bankTag for
//! its region, the **scheduler** reorders instructions with the
//! locality-aware policy, and the **dispatcher** streams them to the DIMM
//! over the (two-stage) instruction channel. This module implements that
//! pipeline end-to-end over the real ISA, so the instruction encoding is
//! exercised by the execution path, not just by unit tests.

use recross_dram::bus::InstructionBus;
use recross_dram::{Cycle, DramConfig};

use crate::config::Region;
use crate::engine::ReCross;
use crate::isa::{DdrCmd, NmpInstruction, NmpLevel, Opcode};
use recross_workload::Trace;

/// One host-side embedding request (an element of an op's pooling list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingRequest {
    /// Target table.
    pub table: usize,
    /// Embedding row index (as the model sees it).
    pub index: u64,
    /// Weight for the weighted-sum reduction.
    pub weight: f32,
}

/// An encoded instruction with its delivery time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchedInstruction {
    /// The 82-bit instruction word.
    pub word: u128,
    /// Cycle at which the instruction fully arrived at the DIMM buffer.
    pub delivered_at: Cycle,
}

/// Statistics of one dispatch stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchStats {
    /// Instructions sent.
    pub instructions: u64,
    /// Instructions tagged for each level (R, G, B).
    pub per_level: [u64; 3],
    /// Cycle the last instruction arrived.
    pub last_delivery: Cycle,
    /// Batches closed (lastTag set).
    pub batches: u64,
}

/// The NMP extension: encoder + scheduler + dispatcher (Figure 8(c)).
#[derive(Debug)]
pub struct NmpExtension<'a> {
    system: &'a ReCross,
    bus: InstructionBus,
    stats: DispatchStats,
    batch_parity: bool,
}

impl<'a> NmpExtension<'a> {
    /// Creates the extension for a ReCross system, using the two-stage
    /// instruction transfer if the system's config enables it (§4.2).
    pub fn new(system: &'a ReCross, dram: &DramConfig) -> Self {
        let pins = if system.config().two_stage_inst {
            dram.two_stage_bits_per_cycle
        } else {
            dram.ca_bits_per_cycle
        };
        Self {
            system,
            bus: InstructionBus::new(crate::isa::INSTRUCTION_BITS, pins),
            stats: DispatchStats::default(),
            batch_parity: false,
        }
    }

    /// Encodes one request into an instruction (no dispatch).
    ///
    /// The physical address, vsize, and the BGTag/bankTag pair are derived
    /// from the system's placement, exactly as §4.2 describes: BGTag set
    /// iff the vector lives below rank level; bankTag additionally set for
    /// bank-level (B-region) vectors.
    pub fn encode(&self, req: &EmbeddingRequest, last_of_batch: bool) -> NmpInstruction {
        let profile = &self.system.profiles()[req.table];
        let rank = profile.order.rank_of(req.index);
        let region = self.system.placement().region_of_rank(req.table, rank);
        let addr = self.system.placement().addr_of_rank(req.table, rank);
        let topo = &self.system.config().dram.topology;
        let bursts = profile
            .spec
            .vector_bytes()
            .div_ceil(u64::from(topo.burst_bytes));
        let (bg_tag, bank_tag) = match region {
            Region::R => (false, false),
            Region::G => (true, false),
            Region::B => (true, true),
        };
        NmpInstruction {
            opcode: Opcode::WeightedSum,
            ddr_cmd: DdrCmd::Rd,
            addr: addr.encode(topo) >> 6 & ((1 << 34) - 1), // burst-granular, 34 bits
            vsize: (bursts.max(1).ilog2()) as u8,
            weight: req.weight,
            batch_tag: self.batch_parity,
            last_tag: last_of_batch,
            bg_tag,
            bank_tag,
        }
    }

    /// Encodes and dispatches a whole embedding op; the last instruction
    /// carries `lastTag`. Returns the dispatched words in order.
    pub fn dispatch_op(&mut self, requests: &[EmbeddingRequest]) -> Vec<DispatchedInstruction> {
        let n = requests.len();
        let out = requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let inst = self.encode(req, i + 1 == n);
                let word = inst.encode();
                let delivered_at = self.bus.deliver(0);
                self.stats.instructions += 1;
                let level = match inst.nmp_level() {
                    NmpLevel::Rank => 0,
                    NmpLevel::BankGroup => 1,
                    NmpLevel::Bank => 2,
                };
                self.stats.per_level[level] += 1;
                self.stats.last_delivery = delivered_at;
                DispatchedInstruction { word, delivered_at }
            })
            .collect();
        self.stats.batches += 1;
        self.batch_parity = !self.batch_parity;
        out
    }

    /// Dispatches every op of a trace; returns the stream statistics.
    pub fn dispatch_trace(&mut self, trace: &Trace) -> DispatchStats {
        for op in trace.iter_ops() {
            let reqs: Vec<EmbeddingRequest> = op
                .indices
                .iter()
                .zip(&op.weights)
                .map(|(&index, &weight)| EmbeddingRequest {
                    table: op.table,
                    index,
                    weight,
                })
                .collect();
            self.dispatch_op(&reqs);
        }
        self.stats
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReCrossConfig;
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn system() -> (ReCross, recross_workload::Trace, DramConfig) {
        let g = TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(2)
            .pooling(8);
        let trace = g.generate(5);
        let profiles = analytic_profiles(&g);
        let sys = ReCross::new(ReCrossConfig::default(), profiles, 2.0).unwrap();
        (sys, trace, DramConfig::ddr5_4800())
    }

    #[test]
    fn instructions_roundtrip_and_tag_levels() {
        let (sys, trace, dram) = system();
        let mut ext = NmpExtension::new(&sys, &dram);
        let op = trace.iter_ops().next().unwrap();
        let reqs: Vec<EmbeddingRequest> = op
            .indices
            .iter()
            .zip(&op.weights)
            .map(|(&index, &weight)| EmbeddingRequest {
                table: op.table,
                index,
                weight,
            })
            .collect();
        let dispatched = ext.dispatch_op(&reqs);
        assert_eq!(dispatched.len(), reqs.len());
        for (d, req) in dispatched.iter().zip(&reqs) {
            let inst = NmpInstruction::decode(d.word).expect("valid word");
            // Tags must agree with the placement's region.
            let rank = sys.profiles()[req.table].order.rank_of(req.index);
            let region = sys.placement().region_of_rank(req.table, rank);
            let expect = match region {
                Region::R => NmpLevel::Rank,
                Region::G => NmpLevel::BankGroup,
                Region::B => NmpLevel::Bank,
            };
            assert_eq!(inst.nmp_level(), expect);
            assert_eq!(inst.weight.to_bits(), req.weight.to_bits());
        }
        // Only the final instruction closes the batch.
        let last_flags: Vec<bool> = dispatched
            .iter()
            .map(|d| NmpInstruction::decode(d.word).unwrap().last_tag)
            .collect();
        assert_eq!(last_flags.iter().filter(|&&b| b).count(), 1);
        assert!(last_flags.last().copied().unwrap());
    }

    #[test]
    fn delivery_is_serialized_on_the_bus() {
        let (sys, trace, dram) = system();
        let mut ext = NmpExtension::new(&sys, &dram);
        let stats = ext.dispatch_trace(&trace);
        assert_eq!(stats.instructions, trace.lookups() as u64);
        // Two-stage: one cycle per instruction → last delivery = count.
        assert_eq!(stats.last_delivery, stats.instructions);
        assert_eq!(stats.batches, trace.ops() as u64);
        assert_eq!(stats.per_level.iter().sum::<u64>(), stats.instructions);
    }

    #[test]
    fn ca_only_is_slower() {
        let (sys, trace, dram) = system();
        let slow_cfg = ReCrossConfig {
            two_stage_inst: false,
            ..ReCrossConfig::default()
        };
        let g = TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(2)
            .pooling(8);
        let slow_sys = ReCross::new(slow_cfg, analytic_profiles(&g), 2.0).unwrap();
        let fast = NmpExtension::new(&sys, &dram).dispatch_trace(&trace);
        let slow = NmpExtension::new(&slow_sys, &dram).dispatch_trace(&trace);
        assert!(slow.last_delivery > fast.last_delivery);
        // 82 bits / 14 pins = 6 cycles per instruction.
        assert_eq!(slow.last_delivery, 6 * slow.instructions);
    }

    #[test]
    fn batch_parity_alternates() {
        let (sys, _, dram) = system();
        let mut ext = NmpExtension::new(&sys, &dram);
        let req = EmbeddingRequest {
            table: 0,
            index: 0,
            weight: 1.0,
        };
        let a = ext.dispatch_op(&[req]);
        let b = ext.dispatch_op(&[req]);
        let ia = NmpInstruction::decode(a[0].word).unwrap();
        let ib = NmpInstruction::decode(b[0].word).unwrap();
        assert_ne!(ia.batch_tag, ib.batch_tag);
    }
}
