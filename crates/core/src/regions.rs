//! The R/G/B region carve-out of the memory space (paper §4.1).
//!
//! Each rank's banks are split into three regions served by the three NMP
//! levels. B-region banks sit inside NMP-featured bank groups (they have a
//! bank-level PE and SALP support), G-region banks are the remaining banks
//! of NMP-featured bank groups, and R-region banks (rank-level NMP) are the
//! rest. Every rank uses the same split.

use recross_dram::{PhysAddr, Topology};

use crate::config::{ReCrossConfig, Region};

/// Region assignment of every bank, plus per-region addressing helpers.
#[derive(Debug, Clone)]
pub struct RegionMap {
    topo: Topology,
    /// Region of each bank position within a rank (index = bg × banks/bg +
    /// bank).
    per_rank: Vec<Region>,
    /// Banks (within-rank indices) of each region, in slot order.
    banks: [Vec<u32>; 3],
}

impl RegionMap {
    /// Builds the map from a configuration.
    pub fn new(cfg: &ReCrossConfig) -> Self {
        cfg.validate();
        let topo = cfg.dram.topology;
        let per_group = topo.banks_per_group;
        let featured = cfg.bg_pes_per_rank;
        let mut per_rank = vec![Region::R; topo.banks_per_rank() as usize];
        // B banks spread round-robin across the featured bank groups, so a
        // bank PE's traffic overlaps maximally (one B bank per group first).
        for i in 0..cfg.bank_pes_per_rank {
            let bg = i % featured;
            let bank = i / featured;
            per_rank[(bg * per_group + bank) as usize] = Region::B;
        }
        // Remaining banks of featured groups are G.
        for bg in 0..featured {
            for bank in 0..per_group {
                let idx = (bg * per_group + bank) as usize;
                if per_rank[idx] == Region::R {
                    per_rank[idx] = Region::G;
                }
            }
        }
        let mut banks: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (idx, r) in per_rank.iter().enumerate() {
            banks[r.index()].push(idx as u32);
        }
        Self {
            topo,
            per_rank,
            banks,
        }
    }

    /// Region of a bank position within a rank.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds banks per rank.
    pub fn region_of_bank(&self, bank_in_rank: u32) -> Region {
        self.per_rank[bank_in_rank as usize]
    }

    /// Region an address belongs to.
    pub fn region_of(&self, addr: &PhysAddr) -> Region {
        self.region_of_bank(addr.bank_group * self.topo.banks_per_group + addr.bank)
    }

    /// Banks (within-rank indices) of a region.
    pub fn banks_in(&self, region: Region) -> &[u32] {
        &self.banks[region.index()]
    }

    /// Number of banks per rank in a region.
    pub fn bank_count(&self, region: Region) -> u32 {
        self.banks[region.index()].len() as u32
    }

    /// Region capacity in bytes across all ranks.
    pub fn capacity_bytes(&self, region: Region) -> u64 {
        u64::from(self.bank_count(region)) * u64::from(self.topo.ranks) * self.topo.bank_bytes()
    }

    /// Total vector *slots* a region offers across all ranks for vectors of
    /// `vector_bytes` (row-packed).
    pub fn vector_slots(&self, region: Region, vector_bytes: u32) -> u64 {
        let per_row = u64::from(self.topo.row_bytes / vector_bytes.max(1));
        u64::from(self.bank_count(region))
            * u64::from(self.topo.ranks)
            * u64::from(self.topo.rows_per_bank)
            * per_row
    }

    /// Maps a region-local sequential slot to a physical address. Slots
    /// rotate across the region's banks over all ranks first (maximizing
    /// node parallelism), then move to the next row position.
    ///
    /// # Panics
    ///
    /// Panics if the slot exceeds the region's capacity for this vector
    /// size or the region is empty.
    pub fn slot_addr(&self, region: Region, slot: u64, vector_bytes: u32) -> PhysAddr {
        let banks = &self.banks[region.index()];
        assert!(!banks.is_empty(), "region {region} has no banks");
        let nodes = banks.len() as u64 * u64::from(self.topo.ranks);
        let node = slot % nodes;
        let within = slot / nodes;
        let rank = (node % u64::from(self.topo.ranks)) as u32;
        let bank_in_rank = banks[(node / u64::from(self.topo.ranks)) as usize];
        let per_row = u64::from(self.topo.row_bytes / vector_bytes.max(1));
        let row = within / per_row;
        assert!(
            row < u64::from(self.topo.rows_per_bank),
            "slot exceeds region capacity"
        );
        PhysAddr {
            channel: 0,
            rank,
            bank_group: bank_in_rank / self.topo.banks_per_group,
            bank: bank_in_rank % self.topo.banks_per_group,
            row: row as u32,
            col_byte: (within % per_row) as u32 * vector_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_dram::DramConfig;

    fn map() -> RegionMap {
        RegionMap::new(&ReCrossConfig::default())
    }

    #[test]
    fn default_split_counts() {
        let m = map();
        assert_eq!(m.bank_count(Region::R), 16);
        assert_eq!(m.bank_count(Region::G), 12);
        assert_eq!(m.bank_count(Region::B), 4);
    }

    #[test]
    fn b_banks_spread_across_groups() {
        let m = map();
        let groups: std::collections::HashSet<u32> =
            m.banks_in(Region::B).iter().map(|b| b / 4).collect();
        assert_eq!(groups.len(), 4, "one B bank per NMP-featured group");
    }

    #[test]
    fn c5_is_all_bank_level() {
        let cfg = ReCrossConfig::c5(DramConfig::ddr5_4800());
        let m = RegionMap::new(&cfg);
        assert_eq!(m.bank_count(Region::B), 32);
        assert_eq!(m.bank_count(Region::R), 0);
        assert_eq!(m.bank_count(Region::G), 0);
    }

    #[test]
    fn region_of_roundtrip() {
        let m = map();
        for region in Region::ALL {
            for slot in [0u64, 1, 7, 100, 10_000] {
                let addr = m.slot_addr(region, slot, 256);
                assert_eq!(m.region_of(&addr), region, "slot {slot}");
            }
        }
    }

    #[test]
    fn slots_are_injective() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        for slot in 0..10_000u64 {
            let a = m.slot_addr(Region::B, slot, 256);
            assert!(seen.insert((a.rank, a.bank_group, a.bank, a.row, a.col_byte)));
        }
    }

    #[test]
    fn slots_rotate_nodes_first() {
        let m = map();
        // 4 B banks × 2 ranks = 8 nodes; the first 8 slots hit 8 distinct
        // (rank, bank) pairs.
        let nodes: std::collections::HashSet<(u32, u32, u32)> = (0..8)
            .map(|s| {
                let a = m.slot_addr(Region::B, s, 256);
                (a.rank, a.bank_group, a.bank)
            })
            .collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn capacity_math() {
        let m = map();
        // B: 4 banks × 2 ranks × 512 MiB = 4 GiB.
        assert_eq!(m.capacity_bytes(Region::B), 4 * (1u64 << 30));
        assert_eq!(m.vector_slots(Region::B, 256), 4 * (1u64 << 30) / 256);
    }

    #[test]
    #[should_panic(expected = "exceeds region capacity")]
    fn overflow_slot_panics() {
        let m = map();
        let max = m.vector_slots(Region::B, 256);
        m.slot_addr(Region::B, max, 256);
    }
}
