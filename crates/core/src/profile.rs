//! Statistical table profiles consumed by the partitioner (§4.3 "Data
//! Characterization").
//!
//! For each table the partitioner needs: specification data (row count,
//! vector size), access statistics (access probability `prob_i`, average
//! pooling `pool_i`, access-distribution function `f_i`), and a *hot-rank
//! order* mapping any row id to its popularity rank so the placement can
//! put the hottest ranks in the fastest region.
//!
//! Two sources are supported: the *analytic* profile (the workload's known
//! Zipf popularity and rank permutation — what an offline-trained model's
//! statistics converge to), and the *empirical* profile measured from a
//! profiling trace, as a production system would collect during training.

use std::collections::HashMap;

use recross_nmp::profile::AccessProfile;
use recross_workload::trace::FeistelPermutation;
use recross_workload::{EmbeddingTableSpec, TraceGenerator};

/// Popularity-rank order of one table's rows.
#[derive(Debug, Clone)]
pub enum HotOrder {
    /// Analytic: rank via the inverse of the generator's rank→row
    /// permutation.
    Analytic(FeistelPermutation),
    /// Empirical: explicit row→rank map for touched rows; untouched rows
    /// rank after all touched ones, ordered by row id (dense, via the
    /// sorted touched list).
    Empirical {
        /// Row → rank for rows seen in the profiling trace.
        touched: HashMap<u64, u64>,
        /// Touched row ids, sorted ascending (for dense tail ranking).
        sorted_rows: Vec<u64>,
    },
}

impl HotOrder {
    /// Popularity rank of `row` (0 = hottest).
    pub fn rank_of(&self, row: u64) -> u64 {
        match self {
            HotOrder::Analytic(perm) => perm.invert(row),
            HotOrder::Empirical {
                touched,
                sorted_rows,
            } => {
                if let Some(&r) = touched.get(&row) {
                    return r;
                }
                // Dense tail rank: position among untouched rows by id.
                let below = sorted_rows.partition_point(|&r| r < row) as u64;
                sorted_rows.len() as u64 + (row - below)
            }
        }
    }
}

/// Everything the partitioner knows about one table (paper Table 1).
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Specification.
    pub spec: EmbeddingTableSpec,
    /// Probability an embedding op targets this table (`prob_i`).
    pub prob: f64,
    /// Average pooling factor (`pool_i`).
    pub pool: f64,
    /// Access CDF `f_i(p)` sampled at the PWL knots (filled on demand by
    /// the partitioner through [`TableProfile::cdf`]).
    cdf_fn: CdfSource,
    /// Hot-rank order.
    pub order: HotOrder,
}

#[derive(Debug, Clone)]
enum CdfSource {
    Analytic(recross_workload::AccessDistribution),
    Empirical(
        recross_workload::distribution::EmpiricalCdf,
        u64, /* rows */
    ),
}

impl TableProfile {
    /// `f_i(p)`: fraction of accesses on the hottest `p` fraction of rows.
    pub fn cdf(&self, p: f64) -> f64 {
        match &self.cdf_fn {
            CdfSource::Analytic(d) => d.cdf(p),
            CdfSource::Empirical(e, rows) => {
                // The empirical curve covers only touched rows; rescale p
                // from the full-table domain onto the touched prefix.
                let touched_frac = e.rows() as f64 / *rows as f64;
                if touched_frac <= 0.0 {
                    return 0.0;
                }
                e.cdf((p / touched_frac).min(1.0))
            }
        }
    }
}

/// Builds analytic profiles from the trace generator's ground truth.
pub fn analytic_profiles(generator: &TraceGenerator) -> Vec<TableProfile> {
    let tables = generator.tables();
    let dists = generator.distributions();
    let probs = generator.table_prob();
    tables
        .iter()
        .enumerate()
        .map(|(i, spec)| TableProfile {
            spec: *spec,
            prob: probs[i],
            pool: f64::from(generator.pooling_factor()).min(spec.rows as f64),
            cdf_fn: CdfSource::Analytic(dists[i].clone()),
            order: HotOrder::Analytic(generator.rank_permutation(i)),
        })
        .collect()
}

/// Builds empirical profiles from a profiling trace's access counts.
pub fn empirical_profiles(
    tables: &[EmbeddingTableSpec],
    profile: &AccessProfile,
) -> Vec<TableProfile> {
    tables
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let hot = profile.hottest_of_table(i, usize::MAX);
            let counts: Vec<u64> = hot.iter().map(|&(_, c)| c).collect();
            let touched: HashMap<u64, u64> = hot
                .iter()
                .enumerate()
                .map(|(rank, &(row, _))| (row, rank as u64))
                .collect();
            let mut sorted_rows: Vec<u64> = hot.iter().map(|&(row, _)| row).collect();
            sorted_rows.sort_unstable();
            let cdf = recross_workload::distribution::EmpiricalCdf::from_counts(&counts);
            TableProfile {
                spec: *spec,
                prob: profile.table_probability(i),
                pool: profile.avg_pooling(i),
                cdf_fn: match cdf {
                    Some(c) => CdfSource::Empirical(c, spec.rows),
                    // Never-accessed table: flat CDF.
                    None => CdfSource::Analytic(recross_workload::AccessDistribution::uniform(
                        spec.rows,
                    )),
                },
                order: HotOrder::Empirical {
                    touched,
                    sorted_rows,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> TraceGenerator {
        TraceGenerator::criteo_scaled(16, 1000)
            .batch_size(4)
            .pooling(16)
    }

    #[test]
    fn analytic_profiles_cover_tables() {
        let g = generator();
        let p = analytic_profiles(&g);
        assert_eq!(p.len(), 26);
        for tp in &p {
            assert!((tp.cdf(1.0) - 1.0).abs() < 1e-9);
            assert_eq!(tp.cdf(0.0), 0.0);
            assert!(tp.prob > 0.0 && tp.pool > 0.0);
        }
    }

    #[test]
    fn analytic_rank_of_matches_permutation() {
        let g = generator();
        let p = analytic_profiles(&g);
        let perm = g.rank_permutation(3);
        for rank in 0..50 {
            let row = perm.permute(rank);
            assert_eq!(p[3].order.rank_of(row), rank);
        }
    }

    #[test]
    fn empirical_ranks_hot_rows_first() {
        let g = generator();
        let trace = g.generate(11);
        let prof = AccessProfile::from_trace(&trace);
        let profiles = empirical_profiles(g.tables(), &prof);
        // The hottest row of a big table ranks 0.
        let t = 20; // a large table index in the Criteo set
        let hot = prof.hottest_of_table(t, 1);
        if let Some(&(row, _)) = hot.first() {
            assert_eq!(profiles[t].order.rank_of(row), 0);
        }
        // Untouched rows rank after all touched rows.
        let untouched_rank = profiles[t].order.rank_of(g.tables()[t].rows - 1);
        let touched_count = prof.hottest_of_table(t, usize::MAX).len() as u64;
        assert!(untouched_rank >= touched_count || prof.count(t, g.tables()[t].rows - 1) > 0);
    }

    #[test]
    fn empirical_tail_ranks_are_distinct() {
        let g = generator();
        let trace = g.generate(2);
        let prof = AccessProfile::from_trace(&trace);
        let profiles = empirical_profiles(g.tables(), &prof);
        let t = 2; // the huge table: most rows untouched
        let mut seen = std::collections::HashSet::new();
        for row in 0..500u64 {
            assert!(
                seen.insert(profiles[t].order.rank_of(row)),
                "duplicate rank for row {row}"
            );
        }
    }

    #[test]
    fn empirical_cdf_is_skewed() {
        let g = TraceGenerator::criteo_scaled(16, 100)
            .batch_size(16)
            .pooling(40);
        let trace = g.generate(5);
        let prof = AccessProfile::from_trace(&trace);
        let profiles = empirical_profiles(g.tables(), &prof);
        // A large skewed table: hottest 10% of rows take > 10% of accesses.
        let t = 25;
        assert!(profiles[t].cdf(0.1) > 0.1);
    }
}
