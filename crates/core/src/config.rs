//! ReCross configuration: PE counts per level, region split, optimizations.
//!
//! The default configuration is the paper's ReCross-d (§5.4): per rank, one
//! rank-level PE, 4 bank-group-level PEs and 4 subarray-parallel bank-level
//! PEs, giving an R:G:B region ratio of 16:12:4 banks. The exploration
//! configs c1–c5 of Figure 14 are provided as named constructors.

use recross_dram::DramConfig;

/// The three ReCross memory regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Rank-level NMP region (capacity-optimized, cold data).
    R,
    /// Bank-group-level NMP region.
    G,
    /// Subarray-parallel bank-level NMP region (hottest data).
    B,
}

impl Region {
    /// All regions in R, G, B order (also the coldest→hottest order).
    pub const ALL: [Region; 3] = [Region::R, Region::G, Region::B];

    /// Dense index (R=0, G=1, B=2).
    pub fn index(self) -> usize {
        match self {
            Region::R => 0,
            Region::G => 1,
            Region::B => 2,
        }
    }
}

impl core::fmt::Display for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Region::R => "R",
            Region::G => "G",
            Region::B => "B",
        })
    }
}

/// Full ReCross configuration.
#[derive(Debug, Clone)]
pub struct ReCrossConfig {
    /// The DRAM system (Table 2 defaults).
    pub dram: DramConfig,
    /// Config name (for reports).
    pub name: String,
    /// Bank-group-level PEs per rank (each covers one bank group).
    pub bg_pes_per_rank: u32,
    /// Bank-level (SALP) PEs per rank (each covers one bank inside an
    /// NMP-featured bank group).
    pub bank_pes_per_rank: u32,
    /// Subarray-level parallelism in the B-region (§4.1; ablation toggle).
    pub sap: bool,
    /// Bandwidth-aware partitioning (§4.3; ablation toggle — off means the
    /// naive capacity-proportional split).
    pub bwp: bool,
    /// Locality-aware scheduling (§4.1; ablation toggle — off means plain
    /// FR-FCFS).
    pub las: bool,
    /// Two-stage NMP-instruction transfer over C/A + DQ pins (§4.2).
    pub two_stage_inst: bool,
    /// Piecewise-linear segments per table CDF in the BWP LP.
    pub pwl_segments: usize,
    /// The reduction operation the PEs perform (§4.1).
    pub reduction: recross_workload::Reduction,
    /// Hot-entry replication in the B-region: `(hot ranks per table,
    /// replicas per entry)`. `None` disables (the paper's ReCross relies on
    /// BWP alone; this is the TRiM-style extension for ablations).
    pub hot_replication: Option<(u64, u32)>,
}

impl ReCrossConfig {
    /// ReCross-d, the paper's default: 1/4/4 PEs, R:G:B = 16:12:4.
    pub fn default_d(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-d", 4, 4)
    }

    /// ReCross-c1: 1/4/8 PEs, R:G:B = 16:8:8.
    pub fn c1(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-c1", 4, 8)
    }

    /// ReCross-c2: 1/4/16 PEs, R:G:B = 16:0:16.
    pub fn c2(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-c2", 4, 16)
    }

    /// ReCross-c3: 1/8/8 PEs, R:G:B = 0:24:8.
    pub fn c3(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-c3", 8, 8)
    }

    /// ReCross-c4: 1/8/16 PEs, R:G:B = 0:16:16.
    pub fn c4(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-c4", 8, 16)
    }

    /// ReCross-c5: 1/8/32 PEs, R:G:B = 0:0:32.
    pub fn c5(dram: DramConfig) -> Self {
        Self::named(dram, "ReCross-c5", 8, 32)
    }

    /// All Figure 14 configurations in paper order (d, c1–c5).
    pub fn exploration_set(dram: DramConfig) -> Vec<Self> {
        vec![
            Self::default_d(dram.clone()),
            Self::c1(dram.clone()),
            Self::c2(dram.clone()),
            Self::c3(dram.clone()),
            Self::c4(dram.clone()),
            Self::c5(dram),
        ]
    }

    fn named(dram: DramConfig, name: &str, bg_pes: u32, bank_pes: u32) -> Self {
        let cfg = Self {
            dram,
            name: name.to_owned(),
            bg_pes_per_rank: bg_pes,
            bank_pes_per_rank: bank_pes,
            sap: true,
            bwp: true,
            las: true,
            two_stage_inst: true,
            pwl_segments: 16,
            reduction: recross_workload::Reduction::WeightedSum,
            hot_replication: None,
        };
        cfg.validate();
        cfg
    }

    /// Disables subarray parallelism (ablation).
    pub fn without_sap(mut self) -> Self {
        self.sap = false;
        self
    }

    /// Disables bandwidth-aware partitioning (ablation).
    pub fn without_bwp(mut self) -> Self {
        self.bwp = false;
        self
    }

    /// Disables locality-aware scheduling (ablation).
    pub fn without_las(mut self) -> Self {
        self.las = false;
        self
    }

    /// Enables TRiM-style hot-entry replication in the B-region.
    pub fn with_hot_replication(mut self, per_table: u64, replicas: u32) -> Self {
        assert!(per_table > 0 && replicas > 0);
        self.hot_replication = Some((per_table, replicas));
        self
    }

    /// ReCross-Base of Figure 12: no SAP, no BWP, no LAS.
    pub fn base(dram: DramConfig) -> Self {
        let mut c = Self::default_d(dram);
        c.name = "ReCross-Base".to_owned();
        c.sap = false;
        c.bwp = false;
        c.las = false;
        c
    }

    /// Banks per rank in each region, derived from the PE counts:
    /// `B = bank PEs`, `G = bg_pes × banks/group − B`, `R = rest`.
    pub fn region_banks(&self) -> (u32, u32, u32) {
        let t = &self.dram.topology;
        let covered = self.bg_pes_per_rank * t.banks_per_group;
        let b = self.bank_pes_per_rank;
        let g = covered - b;
        let r = t.banks_per_rank() - covered;
        (r, g, b)
    }

    /// Validates PE counts against the topology.
    ///
    /// # Panics
    ///
    /// Panics if PEs exceed the topology or bank PEs exceed the covered
    /// bank groups.
    pub fn validate(&self) {
        self.dram.validate();
        let t = &self.dram.topology;
        assert!(
            self.bg_pes_per_rank >= 1 && self.bg_pes_per_rank <= t.bank_groups,
            "bank-group PEs must be within 1..=bank_groups"
        );
        assert!(
            self.bank_pes_per_rank <= self.bg_pes_per_rank * t.banks_per_group,
            "bank PEs must live inside NMP-featured bank groups"
        );
        assert!(self.pwl_segments >= 1, "need at least one PWL segment");
    }
}

impl Default for ReCrossConfig {
    fn default() -> Self {
        Self::default_d(DramConfig::ddr5_4800())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_d() {
        let c = ReCrossConfig::default();
        assert_eq!(c.region_banks(), (16, 12, 4));
        assert!(c.sap && c.bwp && c.las);
    }

    #[test]
    fn exploration_ratios_match_paper() {
        let d = DramConfig::ddr5_4800();
        let expect = [
            (16, 12, 4),
            (16, 8, 8),
            (16, 0, 16),
            (0, 24, 8),
            (0, 16, 16),
            (0, 0, 32),
        ];
        for (cfg, want) in ReCrossConfig::exploration_set(d).iter().zip(expect) {
            assert_eq!(cfg.region_banks(), want, "{}", cfg.name);
        }
    }

    #[test]
    fn ablation_toggles() {
        let c = ReCrossConfig::base(DramConfig::ddr5_4800());
        assert!(!c.sap && !c.bwp && !c.las);
        let c = ReCrossConfig::default().without_sap();
        assert!(!c.sap && c.bwp);
    }

    #[test]
    #[should_panic(expected = "inside NMP-featured bank groups")]
    fn too_many_bank_pes_rejected() {
        let c = ReCrossConfig {
            bank_pes_per_rank: 17, // 4 BGs × 4 banks = 16 max
            ..ReCrossConfig::default()
        };
        c.validate();
    }

    #[test]
    fn region_display_and_index() {
        assert_eq!(Region::R.to_string(), "R");
        assert_eq!(Region::B.index(), 2);
        assert_eq!(Region::ALL.len(), 3);
    }
}
