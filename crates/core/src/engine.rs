//! The ReCross accelerator: cross-level NMP execution (paper §4.1, §4.4).
//!
//! Lookups are dispatched to the region owning their row: R-region vectors
//! reduce in the rank PE, G-region vectors in their bank-group PE, and
//! B-region vectors in subarray-parallel bank PEs. Partial sums (Psums)
//! flow up the hierarchy and the rank summarizer folds them before one
//! result vector per op returns to the host. All levels run concurrently
//! in the same ranks, sharing activation windows and the NMP-instruction
//! channel — the mixed-destination controller of `recross-dram` models
//! exactly that.

use recross_dram::controller::{BusScope, SchedulePolicy};
use recross_nmp::accel::{EmbeddingAccelerator, RunReport};
use recross_nmp::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use recross_nmp::session::{MemoizedSession, ServiceSession};
use recross_workload::model::embedding_value;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::config::{ReCrossConfig, Region};
use crate::partition::{
    bandwidth_aware_partition, naive_partition, PartitionError, RegionBandwidth,
};
use crate::placement::Placement;
use crate::profile::TableProfile;
use crate::regions::RegionMap;
use crate::replication::HotReplicas;

/// The assembled ReCross system.
///
/// `Clone` deep-copies the resolved placement state, which is what lets
/// [`open_session`](EmbeddingAccelerator::open_session) hand out
/// self-contained serving sessions without re-solving the partition LP.
#[derive(Debug, Clone)]
pub struct ReCross {
    cfg: ReCrossConfig,
    profiles: Vec<TableProfile>,
    placement: Placement,
}

impl ReCross {
    /// Builds the system: profiles → partition (BWP or naive per config) →
    /// placement.
    ///
    /// `batch` is the expected average batch size used by the partitioner's
    /// latency model.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the tables cannot be placed.
    pub fn new(
        cfg: ReCrossConfig,
        profiles: Vec<TableProfile>,
        batch: f64,
    ) -> Result<Self, PartitionError> {
        cfg.validate();
        let map = RegionMap::new(&cfg);
        let max_vec = profiles
            .iter()
            .map(|p| p.spec.vector_bytes() as u32)
            .max()
            .unwrap_or(256);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, max_vec, cfg.sap);
        let decision = if cfg.bwp {
            bandwidth_aware_partition(&profiles, &map, &bw, batch, cfg.pwl_segments)?
        } else {
            naive_partition(&profiles, &map)
        };
        let placement = Placement::new(&profiles, decision, map);
        Ok(Self {
            cfg,
            profiles,
            placement,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ReCrossConfig {
        &self.cfg
    }

    /// The placement (for inspection / experiments).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Replaces the placement (used by the dynamic re-scheduler).
    pub(crate) fn set_placement(&mut self, placement: Placement) {
        self.placement = placement;
    }

    /// Re-partitions and re-places from fresh profiles — the §4.5 response
    /// to access-frequency drift: re-profile, re-solve the LP, remap.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the new profiles cannot be placed; the
    /// old placement is kept in that case.
    pub fn repartition(
        &mut self,
        profiles: Vec<TableProfile>,
        batch: f64,
    ) -> Result<(), PartitionError> {
        let map = RegionMap::new(&self.cfg);
        let max_vec = profiles
            .iter()
            .map(|p| p.spec.vector_bytes() as u32)
            .max()
            .unwrap_or(256);
        let bw = RegionBandwidth::from_map(&map, &self.cfg.dram, max_vec, self.cfg.sap);
        let decision = if self.cfg.bwp {
            bandwidth_aware_partition(&profiles, &map, &bw, batch, self.cfg.pwl_segments)?
        } else {
            naive_partition(&profiles, &map)
        };
        let placement = Placement::new(&profiles, decision, map);
        self.profiles = profiles;
        self.set_placement(placement);
        Ok(())
    }

    /// The table profiles.
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// Unified PE-node numbering: rank PEs, then bank-group PEs, then bank
    /// PEs.
    fn num_nodes(&self) -> usize {
        let t = &self.cfg.dram.topology;
        (t.ranks + t.ranks * self.cfg.bg_pes_per_rank + t.ranks * self.cfg.bank_pes_per_rank)
            as usize
    }

    fn node_of(&self, region: Region, addr: &recross_dram::PhysAddr) -> usize {
        let t = &self.cfg.dram.topology;
        let ranks = t.ranks;
        match region {
            Region::R => addr.rank as usize,
            Region::G => (ranks + addr.rank * self.cfg.bg_pes_per_rank + addr.bank_group) as usize,
            Region::B => {
                let bank_in_rank = addr.bank_group * t.banks_per_group + addr.bank;
                let b_banks = self.placement.region_map().banks_in(Region::B);
                let pos = b_banks
                    .iter()
                    .position(|&b| b == bank_in_rank)
                    .expect("B-region address in a B bank") as u32;
                (ranks
                    + ranks * self.cfg.bg_pes_per_rank
                    + addr.rank * self.cfg.bank_pes_per_rank
                    + pos) as usize
            }
        }
    }

    fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        let burst_bytes = self.cfg.dram.topology.burst_bytes;
        let mut replicas = self.cfg.hot_replication.map(|(per_table, copies)| {
            HotReplicas::build(&self.profiles, &self.placement, per_table, copies)
        });
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            let bursts = self.placement.bursts(op.table, burst_bytes);
            for &row in &op.indices {
                let rank = self.profiles[op.table].order.rank_of(row);
                let region = self.placement.region_of_rank(op.table, rank);
                let addr = replicas
                    .as_mut()
                    .and_then(|r| r.redirect(&self.placement, op.table, rank))
                    .unwrap_or_else(|| self.placement.addr_of_rank(op.table, rank));
                let (dest, salp) = match region {
                    Region::R => (BusScope::Rank, false),
                    Region::G => (BusScope::BankGroup, false),
                    Region::B => (BusScope::Bank, self.cfg.sap),
                };
                plans.push(LookupPlan {
                    op: op_idx,
                    reads: vec![PlacedRead {
                        addr,
                        bursts,
                        dest,
                        salp,
                        auto_precharge: false,
                        write: false,
                        node: self.node_of(region, &addr),
                    }],
                    cached: false,
                });
            }
        }
        plans
    }

    /// The lookup plans for a trace (exposed for the benchmark harness).
    pub fn plans_for_test(&self, trace: &Trace) -> Vec<LookupPlan> {
        self.plans(trace)
    }

    /// Unified PE-node count (exposed for the benchmark harness).
    pub fn num_nodes_for_test(&self) -> usize {
        self.num_nodes()
    }

    /// Bandwidth weight of each PE node, in bytes/cycle.
    fn node_weights(&self) -> Vec<f64> {
        let t = &self.cfg.dram.topology;
        let tm = &self.cfg.dram.timing;
        let burst = f64::from(t.burst_bytes);
        let mut w = Vec::with_capacity(self.num_nodes());
        // Rank PEs: the rank-shared I/O cadence.
        for _ in 0..t.ranks {
            w.push(burst / tm.t_ccd_s as f64);
        }
        // Bank-group PEs: the bank-group I/O cadence.
        for _ in 0..(t.ranks * self.cfg.bg_pes_per_rank) {
            w.push(burst / tm.t_ccd_l as f64);
        }
        // Bank PEs: the bank column cadence (bypassing the BG I/O).
        for _ in 0..(t.ranks * self.cfg.bank_pes_per_rank) {
            w.push(burst / tm.t_ccd_s as f64);
        }
        w
    }

    /// Per-op load-imbalance summary with bandwidth-weighted node shares:
    /// `ratio = max_n(load_n / w_n) / (Σ load / Σ w)`.
    fn weighted_imbalance(
        &self,
        trace: &Trace,
        plans: &[LookupPlan],
    ) -> recross_workload::stats::ImbalanceSummary {
        let weights = self.node_weights();
        let total_w: f64 = weights.iter().sum();
        let num_ops = trace.ops();
        let mut loads = vec![std::collections::HashMap::<usize, u64>::new(); num_ops];
        for plan in plans {
            for r in &plan.reads {
                *loads[plan.op].entry(r.node).or_insert(0) += 1;
            }
        }
        let ratios: Vec<f64> = loads
            .iter()
            .map(|m| {
                let total: u64 = m.values().sum();
                if total == 0 {
                    return 0.0;
                }
                let ideal = total as f64 / total_w;
                m.iter()
                    .map(|(&n, &c)| c as f64 / weights[n] / ideal)
                    .fold(0.0, f64::max)
            })
            .collect();
        recross_workload::stats::ImbalanceSummary::from_ratios(&ratios)
    }

    /// Per-region lookup counts of a trace under the current placement —
    /// the data behind the region-load sanity checks.
    pub fn region_lookup_counts(&self, trace: &Trace) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for op in trace.iter_ops() {
            for &row in &op.indices {
                let rank = self.profiles[op.table].order.rank_of(row);
                let region = self.placement.region_of_rank(op.table, rank);
                counts[region.index()] += 1;
            }
        }
        counts
    }
}

impl ReCross {
    /// The engine configuration shared by the offline and serving paths.
    fn engine_config(&self) -> EngineConfig {
        let mut engine_cfg =
            EngineConfig::nmp(&self.cfg.name, self.cfg.dram.clone(), self.num_nodes());
        engine_cfg.policy = if self.cfg.las {
            SchedulePolicy::LocalityAware
        } else {
            SchedulePolicy::FrFcfs
        };
        engine_cfg.two_stage_inst = self.cfg.two_stage_inst;
        engine_cfg.reduction = self.cfg.reduction;
        engine_cfg
    }
}

impl EmbeddingAccelerator for ReCross {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let engine_cfg = self.engine_config();
        let mut report = execute(&engine_cfg, trace, &plans);
        // ReCross nodes are heterogeneous by design: the imbalance metric
        // must weight each PE by its bandwidth (a B node is *supposed* to
        // carry more lookups than a rank PE). Replace the engine's
        // homogeneous summary with the weighted one.
        report.imbalance = self.weighted_imbalance(trace, &plans);
        report
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // Faithfully reproduce the datapath's reduction order: per-PE
        // partial sums (in lookup order within each PE), folded by the rank
        // summarizer in node order. FP addition is not associative, so this
        // genuinely exercises the Psum path.
        let num_nodes = self.num_nodes();
        trace
            .iter_ops()
            .map(|op| {
                let dim = trace.tables[op.table].dim as usize;
                let mut psums: Vec<Option<Vec<f32>>> = vec![None; num_nodes];
                for (&row, &w) in op.indices.iter().zip(&op.weights) {
                    let rank = self.profiles[op.table].order.rank_of(row);
                    let region = self.placement.region_of_rank(op.table, rank);
                    let addr = self.placement.addr_of_rank(op.table, rank);
                    let node = self.node_of(region, &addr);
                    let slot = psums[node].get_or_insert_with(|| vec![0.0; dim]);
                    for (d, acc) in slot.iter_mut().enumerate() {
                        *acc += w * embedding_value(op.table, row, d as u32);
                    }
                }
                // Rank summarizer: fold node Psums in node order.
                let mut out = vec![0.0f32; dim];
                for psum in psums.into_iter().flatten() {
                    for (o, v) in out.iter_mut().zip(psum) {
                        *o += v;
                    }
                }
                out
            })
            .collect()
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        assert_eq!(
            tables.len(),
            self.profiles.len(),
            "session tables must match the profiled table universe"
        );
        for (t, p) in tables.iter().zip(&self.profiles) {
            assert_eq!(*t, p.spec, "session table spec differs from profile");
        }
        // The expensive state — partition LP solution, placement mapping
        // tables, region carve-out — is already resolved in `self`; the
        // session deep-copies it once and reuses it for every batch.
        let system = self.clone();
        let mut engine_cfg = self.engine_config();
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            self.cfg.name.clone(),
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                engine_cfg.trace_commands = traced;
                let plans = system.plans(&trace);
                execute(&engine_cfg, &trace, &plans).into()
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::analytic_profiles;
    use recross_workload::TraceGenerator;

    fn generator() -> TraceGenerator {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(20)
    }

    fn system() -> (ReCross, Trace) {
        let g = generator();
        let trace = g.generate(3);
        let profiles = analytic_profiles(&g);
        let rc = ReCross::new(ReCrossConfig::default(), profiles, 4.0).unwrap();
        (rc, trace)
    }

    #[test]
    fn runs_a_trace() {
        let (mut rc, trace) = system();
        let r = rc.run(&trace);
        assert_eq!(r.lookups as usize, trace.lookups());
        assert!(r.cycles > 0);
        assert!(r.counters.io_bits > 0, "results return to host");
    }

    #[test]
    fn b_region_absorbs_hot_traffic() {
        let (rc, trace) = system();
        let counts = rc.region_lookup_counts(&trace);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, trace.lookups() as u64);
        // B region (4/32 of capacity) serves an outsized share of lookups.
        assert!(
            counts[Region::B.index()] as f64 / total as f64 > 4.0 / 32.0,
            "B share too small: {counts:?}"
        );
    }

    #[test]
    fn results_match_golden_within_reassociation() {
        let (mut rc, trace) = system();
        let got = rc.compute_results(&trace);
        let want = recross_workload::model::reduce_trace(&trace);
        recross_workload::model::assert_results_close(&got, &want, 1e-3);
    }

    #[test]
    fn sap_improves_performance() {
        // Needs real row-cycling pressure: at toy scale every access
        // row-hits and SALP has nothing to overlap.
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(16)
            .pooling(80);
        let trace = g.generate(8);
        let profiles = analytic_profiles(&g);
        let with = ReCross::new(ReCrossConfig::default(), profiles.clone(), 4.0)
            .unwrap()
            .run(&trace);
        let without = ReCross::new(ReCrossConfig::default().without_sap(), profiles, 4.0)
            .unwrap()
            .run(&trace);
        assert!(
            with.cycles < without.cycles,
            "SAP {} must beat no-SAP {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn bwp_improves_over_naive() {
        // Representative scale: tiny tables make region bandwidth
        // irrelevant (everything row-hits), so use the 1/100 Criteo tables
        // with a real pooling factor.
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(16)
            .pooling(80);
        let trace = g.generate(9);
        let profiles = analytic_profiles(&g);
        let with = ReCross::new(ReCrossConfig::default(), profiles.clone(), 16.0)
            .unwrap()
            .run(&trace);
        let without = ReCross::new(ReCrossConfig::default().without_bwp(), profiles, 16.0)
            .unwrap()
            .run(&trace);
        assert!(
            with.cycles < without.cycles,
            "BWP {} must beat naive {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn hot_replication_runs_and_matches_golden() {
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(8)
            .pooling(40);
        let trace = g.generate(17);
        let profiles = analytic_profiles(&g);
        let mut plain = ReCross::new(ReCrossConfig::default(), profiles.clone(), 8.0).unwrap();
        let mut replicated = ReCross::new(
            ReCrossConfig::default().with_hot_replication(8, 8),
            profiles,
            8.0,
        )
        .unwrap();
        let rp = plain.run(&trace);
        let rr = replicated.run(&trace);
        assert_eq!(rp.lookups, rr.lookups);
        // Replication spreads the residual hot spot: weighted imbalance
        // must not worsen.
        assert!(
            rr.imbalance.mean <= rp.imbalance.mean * 1.05,
            "replicated {} vs plain {}",
            rr.imbalance.mean,
            rp.imbalance.mean
        );
        // Replicas hold identical data: functional results unchanged.
        let got = replicated.compute_results(&trace);
        let want = recross_workload::model::reduce_trace(&trace);
        recross_workload::model::assert_results_close(&got, &want, 1e-3);
    }

    #[test]
    fn session_matches_offline_single_batch_run() {
        let g = generator().batches(2);
        let trace = g.generate(5);
        let profiles = analytic_profiles(&g);
        let mut rc = ReCross::new(ReCrossConfig::default(), profiles, 4.0).unwrap();
        let mut session = rc.open_session(&trace.tables);
        for batch in &trace.batches {
            let single = Trace {
                tables: trace.tables.clone(),
                batches: vec![batch.clone()],
            };
            assert_eq!(session.service(batch), rc.run(&single).cycles);
        }
        // Replaying the first batch is a memo hit with identical cycles.
        let replay = session.service(&trace.batches[0]);
        let single = Trace {
            tables: trace.tables.clone(),
            batches: vec![trace.batches[0].clone()],
        };
        assert_eq!(replay, rc.run(&single).cycles);
        assert_eq!(session.stats().hits, 1);
        assert_eq!(session.stats().misses, trace.batches.len() as u64);
    }

    #[test]
    #[should_panic(expected = "session tables must match")]
    fn session_rejects_mismatched_tables() {
        let (rc, trace) = system();
        let _ = rc.open_session(&trace.tables[..1]);
    }

    #[test]
    fn all_exploration_configs_run() {
        let g = generator();
        let trace = g.generate(1);
        for cfg in ReCrossConfig::exploration_set(recross_dram::DramConfig::ddr5_4800()) {
            let profiles = analytic_profiles(&g);
            let name = cfg.name.clone();
            let mut rc = ReCross::new(cfg, profiles, 4.0).unwrap_or_else(|e| panic!("{name}: {e}"));
            let r = rc.run(&trace);
            assert!(r.cycles > 0, "{name}");
        }
    }
}
