//! Pluggable event sinks: the consumer side of the recorder.
//!
//! A [`Recorder`](crate::Recorder) is a *producer*: it interns strings,
//! builds the track forest, and pushes [`Event`]s. Everything that
//! happens to those events afterwards is an [`EventSink`] attached to the
//! recorder. The stock sinks are:
//!
//! * [`MemorySink`] — retains every event in a `Vec` (the classic
//!   in-memory recorder; [`Recorder::new`](crate::Recorder::new) installs
//!   one by default so `events()`/`validate()` keep working);
//! * [`RingSink`] — retains only the newest `capacity` events and counts
//!   what it evicted, so capped captures are *visibly* capped rather than
//!   silently truncated;
//! * [`ChromeStreamSink`](crate::ChromeStreamSink) — formats each event
//!   to Perfetto/Chrome-trace JSON as it arrives and flushes to an
//!   `io::Write` in fixed-size chunks, so a long run can be traced in
//!   bounded memory (see the `chrome` module).
//! * [`Aggregator`](crate::agg::Aggregator) — folds the stream into
//!   online summaries (histograms, busy fractions) without retaining
//!   events (see the `agg` module).
//!
//! Sinks receive three kinds of notifications, always in a safe order:
//! every string is announced (`on_string`) before any track or event
//! references it, and every track (`on_track`) before any event lands on
//! it. `on_event` callbacks are infallible by design — recording must
//! never perturb the simulation — so sinks that do I/O buffer errors
//! internally and surface them from [`EventSink::finish`], counting any
//! events discarded after the failure in [`EventSink::dropped`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::rc::Rc;

use crate::recorder::{Event, StrId, TrackId};

/// A consumer of one recorder's event stream.
///
/// Implementations may keep per-stream state (their own copy of the
/// interning table, incremental placements, running histograms); the
/// contract is only about ordering: strings before their first use,
/// tracks before their first event, events in recording order.
pub trait EventSink {
    /// Short stable name of the sink type (used in reports: `"memory"`,
    /// `"ring"`, `"chrome-stream"`, `"agg"`).
    fn kind(&self) -> &'static str;

    /// A newly interned string; ids arrive densely in order `0, 1, 2, …`.
    fn on_string(&mut self, id: StrId, s: &str) {
        let _ = (id, s);
    }

    /// A newly created track; parents are always announced before
    /// children.
    fn on_track(&mut self, id: TrackId, name: StrId, parent: Option<TrackId>) {
        let _ = (id, name, parent);
    }

    /// One recorded event, in recording order.
    fn on_event(&mut self, event: &Event);

    /// Flushes and finalizes the sink (e.g. writes the trailing metadata
    /// block of a streamed trace). Called by
    /// [`Recorder::finish`](crate::Recorder::finish); must be safe to
    /// call more than once.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Events this sink discarded (ring eviction, post-error writes).
    /// Zero for lossless sinks.
    fn dropped(&self) -> u64 {
        0
    }

    /// Heap capacity (in entries/bytes, the same loose unit as
    /// [`Recorder::heap_capacity`](crate::Recorder::heap_capacity)) held
    /// by the sink. For bounded sinks this stays flat no matter how many
    /// events stream through.
    fn heap_capacity(&self) -> usize {
        0
    }

    /// Downcast hook so the recorder can expose retained events without
    /// `Any` machinery; only [`MemorySink`] returns `Some`.
    fn as_memory(&self) -> Option<&MemorySink> {
        None
    }
}

/// Sharing adapter: attach the same sink to a recorder *and* keep a
/// handle to query it afterwards (`Rc::clone` one side into
/// [`Recorder::attach`](crate::Recorder::attach), keep the other).
impl<T: EventSink> EventSink for Rc<RefCell<T>> {
    fn kind(&self) -> &'static str {
        self.borrow().kind()
    }
    fn on_string(&mut self, id: StrId, s: &str) {
        self.borrow_mut().on_string(id, s);
    }
    fn on_track(&mut self, id: TrackId, name: StrId, parent: Option<TrackId>) {
        self.borrow_mut().on_track(id, name, parent);
    }
    fn on_event(&mut self, event: &Event) {
        self.borrow_mut().on_event(event);
    }
    fn finish(&mut self) -> io::Result<()> {
        self.borrow_mut().finish()
    }
    fn dropped(&self) -> u64 {
        self.borrow().dropped()
    }
    fn heap_capacity(&self) -> usize {
        self.borrow().heap_capacity()
    }
}

/// One attached sink's accounting, for surfacing in reports (so a capped
/// or failed capture is visible next to the numbers it fed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkStats {
    /// The sink's [`EventSink::kind`].
    pub kind: &'static str,
    /// Events the sink discarded ([`EventSink::dropped`]).
    pub dropped: u64,
    /// The sink's resident heap capacity ([`EventSink::heap_capacity`]).
    pub heap_capacity: usize,
}

impl SinkStats {
    /// Deterministic JSON object (`{"kind":…,"dropped":…,"heap_capacity":…}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":{},\"dropped\":{},\"heap_capacity\":{}}}",
            crate::json::json_string(self.kind),
            self.dropped,
            self.heap_capacity
        )
    }
}

/// The lossless in-memory sink: retains every event in recording order.
///
/// [`Recorder::new`](crate::Recorder::new) installs one by default; the
/// recorder's `events()` and `validate()` read from the first attached
/// `MemorySink`.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink (no allocation until the first event).
    pub fn new() -> Self {
        Self::default()
    }

    /// The retained events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for MemorySink {
    fn kind(&self) -> &'static str {
        "memory"
    }
    fn on_event(&mut self, event: &Event) {
        self.events.push(*event);
    }
    fn heap_capacity(&self) -> usize {
        self.events.capacity()
    }
    fn as_memory(&self) -> Option<&MemorySink> {
        Some(self)
    }
}

/// A cloneable `io::Write` target where every clone shares one byte
/// buffer. This is how callers recover bytes streamed through a sink
/// that was boxed into a recorder: keep one clone, attach the other
/// (e.g. `ChromeStreamSink::new(writer.clone(), …)`), read
/// [`SharedWriter::contents`] after
/// [`Recorder::finish`](crate::Recorder::finish).
#[derive(Debug, Default, Clone)]
pub struct SharedWriter(Rc<RefCell<Vec<u8>>>);

impl SharedWriter {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }

    /// The bytes written so far as UTF-8.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not valid UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.bytes()).expect("shared writer holds UTF-8")
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

impl io::Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A bounded sink keeping only the newest `capacity` events, with an
/// explicit eviction counter — the "flight recorder" mode. Nothing is
/// dropped silently: [`RingSink::dropped`] (surfaced through
/// [`SinkStats`]) says exactly how many events aged out.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring sink needs a positive capacity");
        Self {
            capacity,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained (newest) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Events currently retained (`≤ capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention cap this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl EventSink for RingSink {
    fn kind(&self) -> &'static str {
        "ring"
    }
    fn on_event(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }
    fn dropped(&self) -> u64 {
        self.dropped
    }
    fn heap_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let mut rec = Recorder::unbuffered();
        rec.attach(Box::new(RingSink::new(4)));
        let t = rec.track("t", None);
        for i in 0..10u64 {
            rec.instant(t, "tick", i);
        }
        let stats = rec.sink_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].kind, "ring");
        assert_eq!(stats[0].dropped, 6, "10 offered, 4 retained");
        assert_eq!(rec.dropped_events(), 6);
        // The ring's heap never exceeds its cap (VecDeque rounds up to a
        // power of two).
        assert!(stats[0].heap_capacity <= 8, "{}", stats[0].heap_capacity);
    }

    #[test]
    fn ring_sink_retains_in_order() {
        let mut ring = RingSink::new(2);
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.instant(t, "a", 1);
        rec.instant(t, "b", 2);
        rec.instant(t, "c", 3);
        for e in rec.events() {
            ring.on_event(e);
        }
        let ts: Vec<u64> = ring.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3]);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_ring_rejected() {
        RingSink::new(0);
    }

    #[test]
    fn memory_sink_is_lossless() {
        let mut m = MemorySink::new();
        assert_eq!(m.heap_capacity(), 0, "no allocation before first event");
        let e = Event {
            track: TrackId(0),
            name: StrId(0),
            ts: 7,
            kind: crate::EventKind::Instant,
        };
        m.on_event(&e);
        assert_eq!(m.events(), &[e]);
        assert_eq!(m.dropped(), 0);
        assert!(m.as_memory().is_some());
    }

    #[test]
    fn sink_stats_json_is_deterministic() {
        let s = SinkStats {
            kind: "ring",
            dropped: 3,
            heap_capacity: 8,
        };
        assert_eq!(
            s.to_json(),
            "{\"kind\":\"ring\",\"dropped\":3,\"heap_capacity\":8}"
        );
    }

    #[test]
    fn shared_sink_handle_sees_the_stream() {
        let ring = Rc::new(RefCell::new(RingSink::new(8)));
        let mut rec = Recorder::unbuffered();
        rec.attach(Box::new(Rc::clone(&ring)));
        let t = rec.track("t", None);
        rec.instant(t, "x", 1);
        rec.instant(t, "y", 2);
        assert_eq!(ring.borrow().len(), 2);
    }
}
