//! Online aggregation over the event stream: summaries without retention.
//!
//! [`Aggregator`] is an [`EventSink`] that folds events into fixed-size
//! accumulators as they arrive — per-tenant request-fate counters and
//! time-in-queue / time-in-service histograms, per-channel server busy
//! cycles, span-duration statistics per name class, and counter-gauge
//! value histograms — so a week-long streamed run can answer "what was
//! tenant `rt`'s p99 time-in-queue?" without anyone ever holding the
//! events.
//!
//! The aggregator understands the trace schema the rest of the workspace
//! emits (see `recross-serve`'s `ServeObs` and `recross-dram`'s
//! `traceviz`):
//!
//! * root tracks named `tenant: <name>` hold one child track per request
//!   lane; every span on a lane is a request lifecycle span whose name
//!   ends in its fate (`completed`, `late`, `queue-shed`,
//!   `deadline-shed`), with `dispatch chN` instants marking handoffs to
//!   channel servers;
//! * root tracks named `channel <n>` hold a `server` child whose spans
//!   are batch executions — their total duration is the channel's busy
//!   time;
//! * everything else still feeds the generic aggregates: span durations
//!   are bucketed under the span's *name class* (the prefix before the
//!   first `#` or space, so `batch#12 (8 req)` and `batch#31 (6 req)`
//!   share one distribution), and counter samples are bucketed under
//!   `<root name>/<counter name>` (e.g. `channel 0/depth`).
//!
//! # Equivalence guarantee
//!
//! A live-attached aggregator and [`Aggregates::from_recorder`] on a
//! fully buffered recorder of the same run produce *equal* results by
//! construction: replay delivers the identical notification sequence the
//! live run did, and [`Aggregator`] is deterministic state folded over
//! that sequence. Tests in this module and in `recross-serve` assert the
//! equality (`Aggregates` derives `PartialEq`).
//!
//! Request timing definitions (shared with `ServeObs`'s per-tenant
//! report block): *time-in-queue* is first dispatch minus arrival,
//! *time-in-service* is lifecycle end minus last dispatch; requests that
//! were never dispatched anywhere (pure sheds) contribute to fate
//! counters but not to the timing histograms.

use std::collections::BTreeMap;

use crate::hist::{LatencyHistogram, NUM_BUCKETS};
use crate::json::{fmt_f64, json_string};
use crate::recorder::{Event, EventKind, Recorder, StrId, TrackId};
use crate::sink::EventSink;

/// Parses the request-fate suffix of a lifecycle span name
/// (`"req#3 deadline-shed"` → `Some("deadline-shed")`). The four fates
/// are the serving simulator's request outcomes; anything else is not a
/// lifecycle span.
pub fn parse_fate(name: &str) -> Option<&'static str> {
    match name.rsplit(' ').next() {
        Some("completed") => Some("completed"),
        Some("late") => Some("late"),
        Some("queue-shed") => Some("queue-shed"),
        Some("deadline-shed") => Some("deadline-shed"),
        _ => None,
    }
}

/// The name class a span's duration is aggregated under: the prefix
/// before the first `#` or space (`"batch#3 (5 req)"` → `"batch"`,
/// `"Act r17"` → `"Act"`).
pub fn span_class(name: &str) -> &str {
    name.split(['#', ' ']).next().unwrap_or(name)
}

/// What a track means to the aggregator (derived from the schema above).
#[derive(Debug, Clone, Copy)]
enum Role {
    /// A request lane: child of a `tenant: <name>` root.
    Lane(usize),
    /// The `server` child of a `channel <n>` root.
    Server(usize),
    /// Anything else (still feeds span/gauge aggregates).
    Plain,
}

#[derive(Debug, Clone, Copy)]
struct TrackInfo {
    /// This track's root (itself, for roots).
    root: u32,
    /// Interned name index.
    name: u32,
    /// Tenant index if the track *is* a `tenant:` root.
    tenant_root: Option<usize>,
    /// Channel index if the track *is* a `channel` root.
    channel_root: Option<usize>,
    role: Role,
}

/// An in-flight request on a lane: its lifecycle span has been seen, but
/// its dispatch instants may still be arriving (the recorder emits the
/// span first). Finalized when the next request lands on the same lane,
/// or at snapshot time.
#[derive(Debug, Clone, Copy)]
struct OpenRequest {
    tenant: usize,
    start: u64,
    end: u64,
    fate: Option<&'static str>,
    first_dispatch: Option<u64>,
    last_dispatch: Option<u64>,
}

/// Per-tenant lifecycle aggregates: fate counters that partition the
/// tenant's requests exactly, plus the two timing histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAggregate {
    /// Tenant name (the part after `tenant: ` in the root track name).
    pub name: String,
    /// Requests that finished within their deadline.
    pub completed: u64,
    /// Requests that finished after their deadline.
    pub late: u64,
    /// Requests shed on admission (queue full).
    pub queue_shed: u64,
    /// Requests shed in queue (deadline hopeless).
    pub deadline_shed: u64,
    /// First-dispatch minus arrival, per dispatched request.
    pub time_in_queue: LatencyHistogram,
    /// Lifecycle end minus last dispatch, per dispatched request.
    pub time_in_service: LatencyHistogram,
}

impl TenantAggregate {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            completed: 0,
            late: 0,
            queue_shed: 0,
            deadline_shed: 0,
            time_in_queue: LatencyHistogram::new(),
            time_in_service: LatencyHistogram::new(),
        }
    }

    /// Total requests across all four fates.
    pub fn requests(&self) -> u64 {
        self.completed + self.late + self.queue_shed + self.deadline_shed
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"requests\":{},\"completed\":{},\"late\":{},",
                "\"queue_shed\":{},\"deadline_shed\":{},",
                "\"time_in_queue\":{},\"time_in_service\":{}}}"
            ),
            json_string(&self.name),
            self.requests(),
            self.completed,
            self.late,
            self.queue_shed,
            self.deadline_shed,
            self.time_in_queue.summary_json(),
            self.time_in_service.summary_json()
        )
    }
}

/// Per-channel server occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelAggregate {
    /// The channel root's track name (e.g. `channel 0`).
    pub name: String,
    /// Total cycles the channel's `server` track was inside a span.
    pub busy_cycles: u64,
}

impl ChannelAggregate {
    /// Fraction of `makespan` the server was busy (0 when makespan is 0).
    pub fn busy_fraction(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / makespan as f64
        }
    }
}

/// The frozen result of an aggregation pass — comparable (`PartialEq`)
/// and exportable as deterministic JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Aggregates {
    /// Events folded.
    pub events: u64,
    /// Maximum event end timestamp seen (cycles).
    pub makespan_cycles: u64,
    /// Per-tenant lifecycle aggregates, in tenant-root creation order.
    pub tenants: Vec<TenantAggregate>,
    /// Per-channel server occupancy, in channel-root creation order.
    pub channels: Vec<ChannelAggregate>,
    /// Span-duration histogram per name class, sorted by class.
    pub spans: Vec<(String, LatencyHistogram)>,
    /// Counter-value histogram per `<root>/<counter>` key, sorted by key.
    pub gauges: Vec<(String, LatencyHistogram)>,
}

impl Aggregates {
    /// Recomputes the aggregates from a fully buffered recorder by
    /// replaying it through a fresh [`Aggregator`] — the reference the
    /// equivalence guarantee is stated against.
    pub fn from_recorder(rec: &Recorder) -> Self {
        let mut agg = Aggregator::new();
        rec.replay(&mut agg);
        agg.snapshot()
    }

    /// The aggregates as one deterministic JSON document
    /// (`"experiment":"obs_agg"` envelope).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(|t| t.to_json()).collect();
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                let busy = c.busy_fraction(self.makespan_cycles);
                format!(
                    "{{\"name\":{},\"busy_cycles\":{},\"busy_fraction\":{},\"idle_fraction\":{}}}",
                    json_string(&c.name),
                    c.busy_cycles,
                    fmt_f64(busy),
                    fmt_f64(1.0 - busy)
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(name, h)| {
                format!(
                    "{{\"name\":{},\"durations\":{}}}",
                    json_string(name),
                    h.summary_json()
                )
            })
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, h)| {
                format!(
                    "{{\"name\":{},\"values\":{}}}",
                    json_string(name),
                    h.summary_json()
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"experiment\":\"obs_agg\",\"events\":{},\"makespan_cycles\":{},",
                "\"tenants\":[{}],\"channels\":[{}],\"spans\":[{}],\"gauges\":[{}]}}"
            ),
            self.events,
            self.makespan_cycles,
            tenants.join(","),
            channels.join(","),
            spans.join(","),
            gauges.join(",")
        )
    }
}

/// The online aggregation engine: an [`EventSink`] with fixed-size state
/// (see the module docs). Attach it to a recorder (typically through an
/// `Rc<RefCell<…>>` handle so it can be queried afterwards) or feed it
/// via [`Recorder::replay`]; read results with [`Aggregator::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Aggregator {
    strings: Vec<String>,
    tracks: Vec<TrackInfo>,
    tenants: Vec<TenantAggregate>,
    channels: Vec<ChannelAggregate>,
    /// In-flight request per lane track (`None` elsewhere).
    open: Vec<Option<OpenRequest>>,
    /// Begin/End stack per track: `(name index, start ts)`.
    begins: Vec<Vec<(u32, u64)>>,
    spans: BTreeMap<String, LatencyHistogram>,
    gauges: BTreeMap<String, LatencyHistogram>,
    events: u64,
    makespan: u64,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    fn finalize(tenants: &mut [TenantAggregate], o: &OpenRequest) {
        let Some(fate) = o.fate else { return };
        let t = &mut tenants[o.tenant];
        match fate {
            "completed" => t.completed += 1,
            "late" => t.late += 1,
            "queue-shed" => t.queue_shed += 1,
            _ => t.deadline_shed += 1,
        }
        if let Some(fd) = o.first_dispatch {
            t.time_in_queue.record(fd.saturating_sub(o.start));
        }
        if let Some(ld) = o.last_dispatch {
            t.time_in_service.record(o.end.saturating_sub(ld));
        }
    }

    fn record_span_class(&mut self, name_idx: u32, dur: u64) {
        let class = span_class(&self.strings[name_idx as usize]);
        self.spans.entry(class.to_string()).or_default().record(dur);
    }

    /// Freezes the current state into comparable [`Aggregates`]
    /// (in-flight lane requests are folded in; the aggregator itself is
    /// unchanged and keeps accumulating).
    pub fn snapshot(&self) -> Aggregates {
        let mut tenants = self.tenants.clone();
        for o in self.open.iter().flatten() {
            Self::finalize(&mut tenants, o);
        }
        Aggregates {
            events: self.events,
            makespan_cycles: self.makespan,
            tenants,
            channels: self.channels.clone(),
            spans: self.spans.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

impl EventSink for Aggregator {
    fn kind(&self) -> &'static str {
        "agg"
    }

    fn on_string(&mut self, id: StrId, s: &str) {
        debug_assert_eq!(id.0 as usize, self.strings.len(), "dense string ids");
        self.strings.push(s.to_string());
    }

    fn on_track(&mut self, id: TrackId, name: StrId, parent: Option<TrackId>) {
        debug_assert_eq!(id.0 as usize, self.tracks.len(), "dense track ids");
        let name_str = &self.strings[name.0 as usize];
        let info = match parent {
            None => {
                let mut info = TrackInfo {
                    root: id.0,
                    name: name.0,
                    tenant_root: None,
                    channel_root: None,
                    role: Role::Plain,
                };
                if let Some(tenant) = name_str.strip_prefix("tenant: ") {
                    info.tenant_root = Some(self.tenants.len());
                    self.tenants.push(TenantAggregate::new(tenant));
                } else if name_str.strip_prefix("channel ").is_some() {
                    info.channel_root = Some(self.channels.len());
                    self.channels.push(ChannelAggregate {
                        name: name_str.clone(),
                        busy_cycles: 0,
                    });
                }
                info
            }
            Some(p) => {
                let pinfo = self.tracks[p.0 as usize];
                let role = if let Some(t) = pinfo.tenant_root {
                    Role::Lane(t)
                } else if let (Some(c), "server") = (pinfo.channel_root, name_str.as_str()) {
                    Role::Server(c)
                } else {
                    Role::Plain
                };
                TrackInfo {
                    root: pinfo.root,
                    name: name.0,
                    tenant_root: None,
                    channel_root: None,
                    role,
                }
            }
        };
        self.tracks.push(info);
        self.open.push(None);
        self.begins.push(Vec::new());
    }

    fn on_event(&mut self, e: &Event) {
        self.events += 1;
        let t = e.track.0 as usize;
        let info = self.tracks[t];
        let end_ts = match e.kind {
            EventKind::Span { dur } => e.ts + dur,
            _ => e.ts,
        };
        self.makespan = self.makespan.max(end_ts);
        match e.kind {
            EventKind::Span { dur } => {
                self.record_span_class(e.name.0, dur);
                match info.role {
                    Role::Server(c) => self.channels[c].busy_cycles += dur,
                    Role::Lane(tenant) => {
                        if let Some(prev) = self.open[t].take() {
                            Self::finalize(&mut self.tenants, &prev);
                        }
                        self.open[t] = Some(OpenRequest {
                            tenant,
                            start: e.ts,
                            end: e.ts + dur,
                            fate: parse_fate(&self.strings[e.name.0 as usize]),
                            first_dispatch: None,
                            last_dispatch: None,
                        });
                    }
                    Role::Plain => {}
                }
            }
            EventKind::Begin => self.begins[t].push((e.name.0, e.ts)),
            EventKind::End => {
                if let Some((name, start)) = self.begins[t].pop() {
                    let dur = e.ts.saturating_sub(start);
                    self.record_span_class(name, dur);
                    if let Role::Server(c) = info.role {
                        self.channels[c].busy_cycles += dur;
                    }
                }
            }
            EventKind::Instant => {
                if let Role::Lane(_) = info.role {
                    if self.strings[e.name.0 as usize].starts_with("dispatch") {
                        if let Some(o) = self.open[t].as_mut() {
                            if o.first_dispatch.is_none() {
                                o.first_dispatch = Some(e.ts);
                            }
                            o.last_dispatch = Some(e.ts);
                        }
                    }
                }
            }
            EventKind::Counter { value } => {
                let root_name = self.tracks[info.root as usize].name as usize;
                let key = format!(
                    "{}/{}",
                    self.strings[root_name], self.strings[e.name.0 as usize]
                );
                let v = if value.is_finite() && value > 0.0 {
                    value.round() as u64
                } else {
                    0
                };
                self.gauges.entry(key).or_default().record(v);
            }
        }
    }

    fn heap_capacity(&self) -> usize {
        self.strings.capacity()
            + self.strings.iter().map(|s| s.capacity()).sum::<usize>()
            + self.tracks.capacity()
            + self.open.capacity()
            + self.begins.capacity()
            + (self.tenants.len() * 2 + self.spans.len() + self.gauges.len()) * NUM_BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature serve-shaped trace: two tenants, one channel, four
    /// request fates, batch spans, depth counters.
    fn record_serving(rec: &mut Recorder) {
        let t0 = rec.track("tenant: rt", None);
        let t1 = rec.track("tenant: batch", None);
        let lane0 = rec.track("lane 0", Some(t0));
        let lane1 = rec.track("lane 0", Some(t1));
        let ch = rec.track("channel 0", None);
        let server = rec.track("server", Some(ch));
        let depth = rec.track("queue depth", Some(ch));

        // rt tenant: one completed (queued 10, in service 30), one late.
        rec.span(lane0, "req#0 completed", 0, 40);
        rec.instant(lane0, "dispatch ch0", 10);
        rec.span(lane0, "req#2 late", 50, 100);
        rec.instant(lane0, "dispatch ch0", 60);
        // batch tenant: one queue-shed (never dispatched), one
        // deadline-shed.
        rec.span(lane1, "req#1 queue-shed", 5, 25);
        rec.span(lane1, "req#3 deadline-shed", 30, 90);
        // Server busy 10..40 and 60..100 → 70 of the 100-cycle makespan.
        rec.span(server, "batch#0 (1 req)", 10, 40);
        rec.span(server, "batch#1 (1 req)", 60, 100);
        rec.counter(depth, "depth", 0, 2.0);
        rec.counter(depth, "depth", 50, 4.0);
    }

    fn live_aggregates(record: impl Fn(&mut Recorder)) -> Aggregates {
        use std::cell::RefCell;
        use std::rc::Rc;
        let agg = Rc::new(RefCell::new(Aggregator::new()));
        let mut rec = Recorder::unbuffered();
        rec.attach(Box::new(Rc::clone(&agg)));
        record(&mut rec);
        rec.finish().unwrap();
        let snap = agg.borrow().snapshot();
        snap
    }

    #[test]
    fn live_streaming_equals_replayed_recompute() {
        let live = live_aggregates(record_serving);
        let mut rec = Recorder::new();
        record_serving(&mut rec);
        let replayed = Aggregates::from_recorder(&rec);
        assert_eq!(live, replayed);
        assert_eq!(live.to_json(), replayed.to_json());
    }

    #[test]
    fn tenant_fates_partition_and_timings_are_exact() {
        let a = live_aggregates(record_serving);
        assert_eq!(a.tenants.len(), 2);
        let rt = &a.tenants[0];
        assert_eq!(rt.name, "rt");
        assert_eq!(
            (rt.completed, rt.late, rt.queue_shed, rt.deadline_shed),
            (1, 1, 0, 0)
        );
        assert_eq!(rt.requests(), 2);
        // Queue waits 10 each (exact: below SUB_BUCKETS); service 30 and 40.
        assert_eq!(rt.time_in_queue.count(), 2);
        assert_eq!(rt.time_in_queue.max(), 10);
        assert_eq!(rt.time_in_service.min(), 30);
        assert_eq!(rt.time_in_service.max(), 40);
        let batch = &a.tenants[1];
        assert_eq!(batch.name, "batch");
        assert_eq!(
            (batch.completed, batch.late, batch.queue_shed, batch.deadline_shed),
            (0, 0, 1, 1)
        );
        assert!(batch.time_in_queue.is_empty(), "never dispatched");
    }

    #[test]
    fn channel_busy_and_gauges_and_span_classes() {
        let a = live_aggregates(record_serving);
        assert_eq!(a.makespan_cycles, 100);
        assert_eq!(a.channels.len(), 1);
        assert_eq!(a.channels[0].name, "channel 0");
        assert_eq!(a.channels[0].busy_cycles, 70);
        assert!((a.channels[0].busy_fraction(100) - 0.7).abs() < 1e-12);
        // Span classes: "req" (4 lifecycle spans) and "batch" (2).
        let classes: Vec<&str> = a.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(classes, vec!["batch", "req"], "sorted by class");
        assert_eq!(a.spans[1].1.count(), 4);
        // Gauge keyed by root/counter with exact small values.
        assert_eq!(a.gauges.len(), 1);
        assert_eq!(a.gauges[0].0, "channel 0/depth");
        assert_eq!(a.gauges[0].1.quantile(1.0), 4);
    }

    #[test]
    fn snapshot_folds_in_flight_requests_without_consuming() {
        let mut agg = Aggregator::new();
        let mut rec = Recorder::new();
        let t = rec.track("tenant: rt", None);
        let lane = rec.track("lane 0", Some(t));
        rec.span(lane, "req#0 completed", 0, 10);
        rec.replay(&mut agg);
        let s1 = agg.snapshot();
        assert_eq!(s1.tenants[0].completed, 1, "open request folded in");
        let s2 = agg.snapshot();
        assert_eq!(s1, s2, "snapshot is non-destructive");
    }

    #[test]
    fn begin_end_pairs_feed_span_classes() {
        let mut rec = Recorder::new();
        let ch = rec.track("channel 0", None);
        let server = rec.track("server", Some(ch));
        rec.span_begin(server, "batch#0 (2 req)", 5);
        rec.span_end(server, 25);
        let a = Aggregates::from_recorder(&rec);
        assert_eq!(a.channels[0].busy_cycles, 20);
        assert_eq!(a.spans[0].0, "batch");
        assert_eq!(a.spans[0].1.max(), 20);
    }

    #[test]
    fn fate_and_class_parsers() {
        assert_eq!(parse_fate("req#12 completed"), Some("completed"));
        assert_eq!(parse_fate("req#0 queue-shed"), Some("queue-shed"));
        assert_eq!(parse_fate("batch#0 (3 req)"), None);
        assert_eq!(span_class("req#12 completed"), "req");
        assert_eq!(span_class("batch#0 (3 req)"), "batch");
        assert_eq!(span_class("Act r17 c3"), "Act");
        assert_eq!(span_class("plain"), "plain");
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let a = live_aggregates(record_serving);
        let json = a.to_json();
        assert!(json.starts_with("{\"experiment\":\"obs_agg\",\"events\":"));
        assert!(json.contains("\"tenants\":[{\"name\":\"rt\""));
        assert!(json.contains("\"busy_fraction\":0.7"));
        assert!(json.contains("\"gauges\":[{\"name\":\"channel 0/depth\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json, a.to_json());
    }
}
