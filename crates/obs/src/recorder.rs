//! The structured-event recorder: interned strings, a track forest, and
//! an append-only event stream fanned out to attached
//! [`EventSink`](crate::EventSink)s.

use std::collections::HashMap;
use std::io;

use crate::sink::{EventSink, MemorySink, SinkStats};

/// Handle to an interned string (see [`Recorder::intern`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub(crate) u32);

/// Handle to a track (see [`Recorder::track`]). Tracks form a forest:
/// roots map to Chrome-trace *processes*, descendants to *threads*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) u32);

/// What an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A complete span starting at the event timestamp; `dur` cycles long.
    Span {
        /// Duration in cycles (may be zero).
        dur: u64,
    },
    /// Opens a span (closed by the next matching [`EventKind::End`] on the
    /// same track — begin/end pairs nest like a stack per track).
    Begin,
    /// Closes the innermost open span on the track.
    End,
    /// A point event.
    Instant,
    /// A counter (gauge) sample.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event: a kind on a track, named, at an integer-cycle
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Track the event belongs to.
    pub track: TrackId,
    /// Interned event name.
    pub name: StrId,
    /// Timestamp in cycles (span start for [`EventKind::Span`]).
    pub ts: u64,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Debug, Clone)]
struct Track {
    name: StrId,
    parent: Option<TrackId>,
}

/// A deterministic structured-event recorder.
///
/// The recorder is the *producer* half of the pipeline: it owns the
/// interning table and the track forest, and fans every recorded event
/// out to its attached [`EventSink`]s. [`Recorder::new`] installs a
/// [`MemorySink`] so the classic in-memory workflow (`events()`,
/// `validate()`, export-after-the-fact) works unchanged;
/// [`Recorder::unbuffered`] starts with no sinks at all for
/// bounded-memory streaming runs.
///
/// All mutating methods are no-ops on a recorder built with
/// [`Recorder::disabled`]; none of them allocate in that state — even
/// [`Recorder::attach`] is a no-op, so a disabled recorder with sinks
/// "attached" still holds zero heap (checked by
/// [`Recorder::heap_capacity`], which stays `0`). Hot paths that would
/// allocate just to *format* an event name should additionally guard on
/// [`Recorder::is_enabled`].
pub struct Recorder {
    enabled: bool,
    strings: Vec<String>,
    lookup: HashMap<String, StrId>,
    tracks: Vec<Track>,
    sinks: Vec<Box<dyn EventSink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("strings", &self.strings.len())
            .field("tracks", &self.tracks.len())
            .field(
                "sinks",
                &self.sinks.iter().map(|s| s.kind()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An enabled, empty recorder with the default in-memory sink (every
    /// event retained; `events()` and `validate()` work).
    pub fn new() -> Self {
        let mut rec = Self::unbuffered();
        rec.sinks.push(Box::new(MemorySink::new()));
        rec
    }

    /// An enabled recorder with *no* sinks: events vanish until something
    /// is [`attach`](Recorder::attach)ed. This is the streaming
    /// configuration — attach a
    /// [`ChromeStreamSink`](crate::ChromeStreamSink) (and/or an
    /// [`Aggregator`](crate::agg::Aggregator)) and the resident footprint
    /// stays bounded by the interning/track tables regardless of run
    /// length.
    pub fn unbuffered() -> Self {
        Self {
            enabled: true,
            strings: Vec::new(),
            lookup: HashMap::new(),
            tracks: Vec::new(),
            sinks: Vec::new(),
        }
    }

    /// The no-op sink: every recording method returns immediately without
    /// touching the heap, so instrumented code costs nothing when tracing
    /// is off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::unbuffered()
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches a sink. The sink is first caught up on everything already
    /// recorded — all interned strings and tracks, plus any events a
    /// [`MemorySink`] retained (events recorded before attach on an
    /// unbuffered recorder are gone and stay gone) — then receives the
    /// live stream.
    ///
    /// No-op on a disabled recorder: the box is dropped without
    /// allocating, preserving the zero-allocation guarantee.
    pub fn attach(&mut self, mut sink: Box<dyn EventSink>) {
        if !self.enabled {
            return;
        }
        self.replay(&mut *sink);
        self.sinks.push(sink);
    }

    /// Detaches every [`MemorySink`], dropping the retained events. After
    /// this, `events()` is empty and stays empty — use it to convert a
    /// recorder to streaming-only *before* recording starts.
    pub fn unbuffer(&mut self) {
        self.sinks.retain(|s| s.as_memory().is_none());
    }

    /// Feeds a sink the recorder's current state: every interned string
    /// (in id order), every track (in id order, parents first), then
    /// every retained event in recording order. This is how the in-memory
    /// and streaming exporters are guaranteed byte-identical: the
    /// in-memory path *is* a replay through the streaming sink.
    pub fn replay(&self, sink: &mut dyn EventSink) {
        for (i, s) in self.strings.iter().enumerate() {
            sink.on_string(StrId(i as u32), s);
        }
        for (i, t) in self.tracks.iter().enumerate() {
            sink.on_track(TrackId(i as u32), t.name, t.parent);
        }
        for e in self.events() {
            sink.on_event(e);
        }
    }

    /// Finalizes every attached sink (flushes streamed output, writes
    /// trailing metadata). Returns the first error but still finishes the
    /// remaining sinks.
    pub fn finish(&mut self) -> io::Result<()> {
        let mut first_err = None;
        for sink in &mut self.sinks {
            if let Err(e) = sink.finish() {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Per-sink accounting (kind, drop counter, resident heap), in attach
    /// order.
    pub fn sink_stats(&self) -> Vec<SinkStats> {
        self.sinks
            .iter()
            .map(|s| SinkStats {
                kind: s.kind(),
                dropped: s.dropped(),
                heap_capacity: s.heap_capacity(),
            })
            .collect()
    }

    /// Total events dropped across all sinks (`0` means every sink saw
    /// the complete stream).
    pub fn dropped_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped()).sum()
    }

    /// Total heap capacity (in entries) held by the recorder's internal
    /// storage and its sinks — `0` for a disabled recorder no matter how
    /// many events (or sinks) were offered to it (the zero-allocation
    /// guarantee). For a streaming recorder this is the bounded resident
    /// footprint: interning + track tables plus each sink's fixed chunk.
    pub fn heap_capacity(&self) -> usize {
        self.strings.capacity()
            + self.lookup.capacity()
            + self.tracks.capacity()
            + self.sinks.capacity()
            + self.sinks.iter().map(|s| s.heap_capacity()).sum::<usize>()
    }

    /// Interns `s`, returning a stable handle; repeated interning of the
    /// same string returns the same handle without allocating.
    pub fn intern(&mut self, s: &str) -> StrId {
        if !self.enabled {
            return StrId(0);
        }
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = StrId(u32::try_from(self.strings.len()).expect("string table overflow"));
        self.strings.push(s.to_string());
        self.lookup.insert(s.to_string(), id);
        for sink in &mut self.sinks {
            sink.on_string(id, s);
        }
        id
    }

    /// The string behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this recorder.
    pub fn string(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Creates a track named `name` under `parent` (`None` for a new
    /// root). Parents must be created before their children, so track ids
    /// are topologically ordered by construction.
    ///
    /// # Panics
    ///
    /// Panics (when enabled) if `parent` is not a track of this recorder.
    pub fn track(&mut self, name: &str, parent: Option<TrackId>) -> TrackId {
        if !self.enabled {
            return TrackId(0);
        }
        if let Some(p) = parent {
            assert!((p.0 as usize) < self.tracks.len(), "parent track must exist");
        }
        let name = self.intern(name);
        let id = TrackId(u32::try_from(self.tracks.len()).expect("track table overflow"));
        self.tracks.push(Track { name, parent });
        for sink in &mut self.sinks {
            sink.on_track(id, name, parent);
        }
        id
    }

    /// Number of tracks created so far.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// A track's name.
    pub fn track_name(&self, id: TrackId) -> &str {
        self.string(self.tracks[id.0 as usize].name)
    }

    /// A track's parent (`None` for roots).
    pub fn track_parent(&self, id: TrackId) -> Option<TrackId> {
        self.tracks[id.0 as usize].parent
    }

    fn push(&mut self, track: TrackId, name: StrId, ts: u64, kind: EventKind) {
        debug_assert!((track.0 as usize) < self.tracks.len(), "event on unknown track");
        let e = Event {
            track,
            name,
            ts,
            kind,
        };
        for sink in &mut self.sinks {
            sink.on_event(&e);
        }
    }

    /// Records a complete span `[start, end]` on `track`.
    ///
    /// # Panics
    ///
    /// Panics (when enabled) if `end < start`.
    pub fn span(&mut self, track: TrackId, name: &str, start: u64, end: u64) {
        if !self.enabled {
            return;
        }
        assert!(end >= start, "span must not end before it starts");
        let name = self.intern(name);
        self.push(track, name, start, EventKind::Span { dur: end - start });
    }

    /// Opens a span on `track`; close it with [`Recorder::span_end`].
    pub fn span_begin(&mut self, track: TrackId, name: &str, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Begin);
    }

    /// Closes the innermost open span on `track`.
    pub fn span_end(&mut self, track: TrackId, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern("");
        self.push(track, name, ts, EventKind::End);
    }

    /// Records a point event.
    pub fn instant(&mut self, track: TrackId, name: &str, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Instant);
    }

    /// Records a counter (gauge) sample.
    pub fn counter(&mut self, track: TrackId, name: &str, ts: u64, value: f64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Counter { value });
    }

    /// The recorded events, in recording order — read from the first
    /// attached [`MemorySink`]; empty for unbuffered (streaming-only)
    /// recorders.
    pub fn events(&self) -> &[Event] {
        self.sinks
            .iter()
            .find_map(|s| s.as_memory())
            .map(|m| m.events())
            .unwrap_or(&[])
    }

    /// Checks the stream is well formed: every event sits on a known
    /// track, per-track timestamps are nondecreasing in recording order,
    /// and every [`EventKind::Begin`] has a matching [`EventKind::End`]
    /// (balanced, stack-nested, per track). Returns the first violation.
    /// Only sees what a [`MemorySink`] retained (nothing, if unbuffered).
    pub fn validate(&self) -> Result<(), String> {
        let mut last_ts: Vec<Option<u64>> = vec![None; self.tracks.len()];
        let mut open: Vec<u32> = vec![0; self.tracks.len()];
        for (i, e) in self.events().iter().enumerate() {
            let t = e.track.0 as usize;
            if t >= self.tracks.len() {
                return Err(format!("event {i} on unknown track {t}"));
            }
            if let Some(prev) = last_ts[t] {
                if e.ts < prev {
                    return Err(format!(
                        "event {i} on track '{}' goes back in time ({} < {prev})",
                        self.track_name(e.track),
                        e.ts
                    ));
                }
            }
            last_ts[t] = Some(e.ts);
            match e.kind {
                EventKind::Begin => open[t] += 1,
                EventKind::End => {
                    if open[t] == 0 {
                        return Err(format!(
                            "event {i} on track '{}' closes a span that was never opened",
                            self.track_name(e.track)
                        ));
                    }
                    open[t] -= 1;
                }
                EventKind::Span { .. } | EventKind::Instant | EventKind::Counter { .. } => {}
            }
        }
        for (t, &n) in open.iter().enumerate() {
            if n > 0 {
                return Err(format!(
                    "track '{}' ends with {n} unclosed span(s)",
                    self.track_name(TrackId(t as u32))
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let mut rec = Recorder::new();
        let a = rec.intern("alpha");
        let b = rec.intern("beta");
        let a2 = rec.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rec.string(a), "alpha");
        assert_eq!(rec.string(b), "beta");
    }

    #[test]
    fn disabled_recorder_never_allocates_even_with_sinks_attached() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        // Attach is a no-op while disabled: the boxes are dropped, the
        // sink list never allocates.
        rec.attach(Box::new(RingSink::new(64)));
        rec.attach(Box::new(MemorySink::new()));
        let t = rec.track("root", None);
        let c = rec.track("child", Some(t));
        for i in 0..10_000u64 {
            rec.span(c, "work", i, i + 1);
            rec.span_begin(c, "outer", i);
            rec.span_end(c, i + 1);
            rec.instant(t, "tick", i);
            rec.counter(t, "depth", i, i as f64);
            rec.intern("some string");
        }
        assert_eq!(rec.events().len(), 0);
        assert_eq!(rec.track_count(), 0);
        assert!(rec.sink_stats().is_empty());
        assert_eq!(
            rec.heap_capacity(),
            0,
            "disabled recorder must not touch the heap"
        );
    }

    #[test]
    fn attach_catches_a_sink_up_on_retained_state() {
        let mut rec = Recorder::new();
        let t = rec.track("root", None);
        rec.instant(t, "before", 1);
        // The ring attached mid-run still sees the earlier event (the
        // memory sink retained it) and everything after.
        rec.attach(Box::new(RingSink::new(8)));
        rec.instant(t, "after", 2);
        let stats = rec.sink_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].kind, "memory");
        assert_eq!(stats[1].kind, "ring");
        assert_eq!(rec.events().len(), 2);
        // Ring heap holds both events: catch-up delivered "before".
        assert!(stats[1].heap_capacity >= 2);
    }

    #[test]
    fn unbuffered_recorder_retains_tables_but_no_events() {
        let mut rec = Recorder::unbuffered();
        let t = rec.track("root", None);
        for i in 0..1_000u64 {
            rec.instant(t, "tick", i);
        }
        assert_eq!(rec.events().len(), 0, "no memory sink, nothing retained");
        assert_eq!(rec.track_count(), 1);
        let tick = rec.intern("tick");
        assert_eq!(rec.string(tick), "tick");
        assert_eq!(rec.validate(), Ok(()), "validate sees the empty stream");
        assert_eq!(rec.finish().ok(), Some(()));
    }

    #[test]
    fn unbuffer_drops_only_memory_sinks() {
        let mut rec = Recorder::new();
        rec.attach(Box::new(RingSink::new(4)));
        let t = rec.track("root", None);
        rec.instant(t, "x", 1);
        assert_eq!(rec.events().len(), 1);
        rec.unbuffer();
        assert_eq!(rec.events().len(), 0);
        let stats = rec.sink_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].kind, "ring");
    }

    #[test]
    fn replay_reproduces_the_stream_in_order() {
        let mut rec = Recorder::new();
        let root = rec.track("root", None);
        let child = rec.track("child", Some(root));
        rec.span(child, "work", 0, 10);
        rec.instant(root, "tick", 5);
        let mut copy = MemorySink::new();
        rec.replay(&mut copy);
        assert_eq!(copy.events(), rec.events());
    }

    #[test]
    fn validate_accepts_well_formed_streams() {
        let mut rec = Recorder::new();
        let root = rec.track("root", None);
        let child = rec.track("child", Some(root));
        rec.span_begin(child, "outer", 10);
        rec.span_begin(child, "inner", 12);
        rec.span_end(child, 20);
        rec.span_end(child, 30);
        rec.span(root, "flat", 0, 100);
        rec.counter(root, "depth", 50, 2.0);
        assert_eq!(rec.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unclosed_spans() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span_begin(t, "open", 1);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn validate_rejects_stray_end() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span_end(t, 1);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("never opened"), "{err}");
    }

    #[test]
    fn validate_rejects_time_travel_per_track() {
        let mut rec = Recorder::new();
        let a = rec.track("a", None);
        let b = rec.track("b", None);
        // Interleaving across tracks is fine; regression within one is not.
        rec.instant(a, "x", 10);
        rec.instant(b, "y", 5);
        rec.instant(a, "z", 9);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("back in time"), "{err}");
    }

    #[test]
    #[should_panic(expected = "span must not end before it starts")]
    fn backwards_span_panics() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span(t, "bad", 10, 9);
    }
}
