//! The structured-event recorder: interned strings, a track forest, and
//! an append-only event stream.

use std::collections::HashMap;

/// Handle to an interned string (see [`Recorder::intern`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub(crate) u32);

/// Handle to a track (see [`Recorder::track`]). Tracks form a forest:
/// roots map to Chrome-trace *processes*, descendants to *threads*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) u32);

/// What an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A complete span starting at the event timestamp; `dur` cycles long.
    Span {
        /// Duration in cycles (may be zero).
        dur: u64,
    },
    /// Opens a span (closed by the next matching [`EventKind::End`] on the
    /// same track — begin/end pairs nest like a stack per track).
    Begin,
    /// Closes the innermost open span on the track.
    End,
    /// A point event.
    Instant,
    /// A counter (gauge) sample.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event: a kind on a track, named, at an integer-cycle
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Track the event belongs to.
    pub track: TrackId,
    /// Interned event name.
    pub name: StrId,
    /// Timestamp in cycles (span start for [`EventKind::Span`]).
    pub ts: u64,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Debug, Clone)]
struct Track {
    name: StrId,
    parent: Option<TrackId>,
}

/// A deterministic structured-event recorder.
///
/// All mutating methods are no-ops on a recorder built with
/// [`Recorder::disabled`]; none of them allocate in that state (checked
/// by [`Recorder::heap_capacity`], which stays `0`). Hot paths that would
/// allocate just to *format* an event name should additionally guard on
/// [`Recorder::is_enabled`].
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    strings: Vec<String>,
    lookup: HashMap<String, StrId>,
    tracks: Vec<Track>,
    events: Vec<Event>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An enabled, empty recorder.
    pub fn new() -> Self {
        Self {
            enabled: true,
            strings: Vec::new(),
            lookup: HashMap::new(),
            tracks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The no-op sink: every recording method returns immediately without
    /// touching the heap, so instrumented code costs nothing when tracing
    /// is off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total heap capacity (in entries) held by the recorder's internal
    /// storage — `0` for a disabled recorder no matter how many events
    /// were offered to it (the zero-allocation guarantee).
    pub fn heap_capacity(&self) -> usize {
        self.strings.capacity()
            + self.lookup.capacity()
            + self.tracks.capacity()
            + self.events.capacity()
    }

    /// Interns `s`, returning a stable handle; repeated interning of the
    /// same string returns the same handle without allocating.
    pub fn intern(&mut self, s: &str) -> StrId {
        if !self.enabled {
            return StrId(0);
        }
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = StrId(u32::try_from(self.strings.len()).expect("string table overflow"));
        self.strings.push(s.to_string());
        self.lookup.insert(s.to_string(), id);
        id
    }

    /// The string behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this recorder.
    pub fn string(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Creates a track named `name` under `parent` (`None` for a new
    /// root). Parents must be created before their children, so track ids
    /// are topologically ordered by construction.
    ///
    /// # Panics
    ///
    /// Panics (when enabled) if `parent` is not a track of this recorder.
    pub fn track(&mut self, name: &str, parent: Option<TrackId>) -> TrackId {
        if !self.enabled {
            return TrackId(0);
        }
        if let Some(p) = parent {
            assert!((p.0 as usize) < self.tracks.len(), "parent track must exist");
        }
        let name = self.intern(name);
        let id = TrackId(u32::try_from(self.tracks.len()).expect("track table overflow"));
        self.tracks.push(Track { name, parent });
        id
    }

    /// Number of tracks created so far.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// A track's name.
    pub fn track_name(&self, id: TrackId) -> &str {
        self.string(self.tracks[id.0 as usize].name)
    }

    /// A track's parent (`None` for roots).
    pub fn track_parent(&self, id: TrackId) -> Option<TrackId> {
        self.tracks[id.0 as usize].parent
    }

    fn push(&mut self, track: TrackId, name: StrId, ts: u64, kind: EventKind) {
        debug_assert!((track.0 as usize) < self.tracks.len(), "event on unknown track");
        self.events.push(Event {
            track,
            name,
            ts,
            kind,
        });
    }

    /// Records a complete span `[start, end]` on `track`.
    ///
    /// # Panics
    ///
    /// Panics (when enabled) if `end < start`.
    pub fn span(&mut self, track: TrackId, name: &str, start: u64, end: u64) {
        if !self.enabled {
            return;
        }
        assert!(end >= start, "span must not end before it starts");
        let name = self.intern(name);
        self.push(track, name, start, EventKind::Span { dur: end - start });
    }

    /// Opens a span on `track`; close it with [`Recorder::span_end`].
    pub fn span_begin(&mut self, track: TrackId, name: &str, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Begin);
    }

    /// Closes the innermost open span on `track`.
    pub fn span_end(&mut self, track: TrackId, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern("");
        self.push(track, name, ts, EventKind::End);
    }

    /// Records a point event.
    pub fn instant(&mut self, track: TrackId, name: &str, ts: u64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Instant);
    }

    /// Records a counter (gauge) sample.
    pub fn counter(&mut self, track: TrackId, name: &str, ts: u64, value: f64) {
        if !self.enabled {
            return;
        }
        let name = self.intern(name);
        self.push(track, name, ts, EventKind::Counter { value });
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Checks the stream is well formed: every event sits on a known
    /// track, per-track timestamps are nondecreasing in recording order,
    /// and every [`EventKind::Begin`] has a matching [`EventKind::End`]
    /// (balanced, stack-nested, per track). Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_ts: Vec<Option<u64>> = vec![None; self.tracks.len()];
        let mut open: Vec<u32> = vec![0; self.tracks.len()];
        for (i, e) in self.events.iter().enumerate() {
            let t = e.track.0 as usize;
            if t >= self.tracks.len() {
                return Err(format!("event {i} on unknown track {t}"));
            }
            if let Some(prev) = last_ts[t] {
                if e.ts < prev {
                    return Err(format!(
                        "event {i} on track '{}' goes back in time ({} < {prev})",
                        self.track_name(e.track),
                        e.ts
                    ));
                }
            }
            last_ts[t] = Some(e.ts);
            match e.kind {
                EventKind::Begin => open[t] += 1,
                EventKind::End => {
                    if open[t] == 0 {
                        return Err(format!(
                            "event {i} on track '{}' closes a span that was never opened",
                            self.track_name(e.track)
                        ));
                    }
                    open[t] -= 1;
                }
                EventKind::Span { .. } | EventKind::Instant | EventKind::Counter { .. } => {}
            }
        }
        for (t, &n) in open.iter().enumerate() {
            if n > 0 {
                return Err(format!(
                    "track '{}' ends with {n} unclosed span(s)",
                    self.track_name(TrackId(t as u32))
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let mut rec = Recorder::new();
        let a = rec.intern("alpha");
        let b = rec.intern("beta");
        let a2 = rec.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rec.string(a), "alpha");
        assert_eq!(rec.string(b), "beta");
    }

    #[test]
    fn disabled_recorder_never_allocates() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let t = rec.track("root", None);
        let c = rec.track("child", Some(t));
        for i in 0..10_000u64 {
            rec.span(c, "work", i, i + 1);
            rec.span_begin(c, "outer", i);
            rec.span_end(c, i + 1);
            rec.instant(t, "tick", i);
            rec.counter(t, "depth", i, i as f64);
            rec.intern("some string");
        }
        assert_eq!(rec.events().len(), 0);
        assert_eq!(rec.track_count(), 0);
        assert_eq!(
            rec.heap_capacity(),
            0,
            "disabled recorder must not touch the heap"
        );
    }

    #[test]
    fn validate_accepts_well_formed_streams() {
        let mut rec = Recorder::new();
        let root = rec.track("root", None);
        let child = rec.track("child", Some(root));
        rec.span_begin(child, "outer", 10);
        rec.span_begin(child, "inner", 12);
        rec.span_end(child, 20);
        rec.span_end(child, 30);
        rec.span(root, "flat", 0, 100);
        rec.counter(root, "depth", 50, 2.0);
        assert_eq!(rec.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unclosed_spans() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span_begin(t, "open", 1);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn validate_rejects_stray_end() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span_end(t, 1);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("never opened"), "{err}");
    }

    #[test]
    fn validate_rejects_time_travel_per_track() {
        let mut rec = Recorder::new();
        let a = rec.track("a", None);
        let b = rec.track("b", None);
        // Interleaving across tracks is fine; regression within one is not.
        rec.instant(a, "x", 10);
        rec.instant(b, "y", 5);
        rec.instant(a, "z", 9);
        let err = rec.validate().unwrap_err();
        assert!(err.contains("back in time"), "{err}");
    }

    #[test]
    #[should_panic(expected = "span must not end before it starts")]
    fn backwards_span_panics() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span(t, "bad", 10, 9);
    }
}
