//! Canonical JSON scalar formatting shared by every exporter in the
//! workspace: hand-rolled, dependency-free, and byte-deterministic.

/// Formats an `f64` for JSON: shortest round-trip decimal, always with a
/// fractional part (`1` → `"1.0"`), non-finite values as `null` (JSON has
/// no NaN/Inf).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits ".0" for integral floats (and never uses scientific
        // notation); keep the result visibly a float.
        if s.contains('.') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the escapes our names can need.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_keep_a_fractional_part() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-3.0), "-3.0");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_quotes_and_control_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
