//! `recross-obs`: a zero-dependency, deterministic structured-event
//! recorder for the ReCross reproduction.
//!
//! Every layer of the stack — the serving simulator, the NMP engines, and
//! the cycle-level DRAM controller — emits its events into one
//! [`Recorder`]: named **tracks** arranged in a forest (tenant → request
//! lane, channel → server / queue depth / DRAM banks), and on each track
//! **spans** (complete or begin/end pairs), **instants**, and **counter**
//! samples, all timestamped in integer controller cycles. The recorder is
//! append-only and allocation-free when disabled (see
//! [`Recorder::disabled`]), so the hot simulation path pays nothing when
//! tracing is off.
//!
//! The recorder is a *producer*: everything downstream is an
//! [`EventSink`] attached to it (see the [`mod@sink`] module):
//!
//! * [`MemorySink`] retains the raw [`Event`] stream (the default, via
//!   [`Recorder::new`]) for after-the-fact export and validation;
//! * [`ChromeStreamSink`] streams the forest as a Chrome-trace /
//!   Perfetto JSON file (root tracks become processes, descendants
//!   become threads) in bounded memory — [`write_chrome_trace`] is the
//!   same formatter replayed over a buffered recorder, so streamed and
//!   in-memory exports are byte-identical;
//! * [`RingSink`] keeps only the newest N events with an explicit drop
//!   counter;
//! * [`agg::Aggregator`] folds the stream into online summaries —
//!   per-tenant time-in-queue/-service histograms (the log-scale
//!   [`hist::LatencyHistogram`] lives here too), per-channel busy
//!   fractions, span-duration stats, counter-gauge percentiles — without
//!   retaining events.
//!
//! Cycle-level bottleneck attribution lives next to the DRAM command
//! model in `recross-dram`, not here.
//!
//! # Determinism
//!
//! Everything is reproducible byte-for-byte: timestamps are integer
//! cycles scaled to microseconds only at export time with fixed `{:.3}`
//! formatting, strings are interned in first-use order, track and event
//! order is recording order, and floats in counter samples are printed
//! with the same shortest-round-trip formatting the rest of the workspace
//! uses ([`fmt_f64`]). Two identical runs produce identical trace files —
//! whether buffered or streamed.
//!
//! ```
//! use recross_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! let sys = rec.track("system", None);
//! let worker = rec.track("worker 0", Some(sys));
//! rec.span(worker, "job", 100, 250);
//! rec.counter(sys, "queue depth", 100, 3.0);
//! rec.validate().unwrap();
//! let json = recross_obs::chrome_trace_string(&rec, 0.4167);
//! assert!(json.starts_with("[\n"));
//! ```
//!
//! Streaming the same events instead (no retention, bounded memory):
//!
//! ```
//! use recross_obs::{ChromeStreamSink, Recorder, SharedWriter};
//!
//! let out = SharedWriter::new();
//! let mut rec = Recorder::unbuffered();
//! rec.attach(Box::new(ChromeStreamSink::new(out.clone(), 0.4167)));
//! let sys = rec.track("system", None);
//! rec.span(sys, "job", 100, 250);
//! rec.finish().unwrap();
//! assert!(out.contents().starts_with("[\n"));
//! ```

#![deny(missing_docs)]

pub mod agg;
mod chrome;
pub mod hist;
mod json;
mod recorder;
pub mod sink;

pub use chrome::{chrome_trace_string, write_chrome_trace, ChromeStreamSink, STREAM_CHUNK};
pub use json::{fmt_f64, json_string};
pub use recorder::{Event, EventKind, Recorder, StrId, TrackId};
pub use sink::{EventSink, MemorySink, RingSink, SharedWriter, SinkStats};
