//! `recross-obs`: a zero-dependency, deterministic structured-event
//! recorder for the ReCross reproduction.
//!
//! Every layer of the stack — the serving simulator, the NMP engines, and
//! the cycle-level DRAM controller — emits its events into one
//! [`Recorder`]: named **tracks** arranged in a forest (tenant → request
//! lane, channel → server / queue depth / DRAM banks), and on each track
//! **spans** (complete or begin/end pairs), **instants**, and **counter**
//! samples, all timestamped in integer controller cycles. The recorder is
//! append-only and allocation-free when disabled (see
//! [`Recorder::disabled`]), so the hot simulation path pays nothing when
//! tracing is off.
//!
//! Two consumers sit on top:
//!
//! * [`write_chrome_trace`] exports the whole forest as a Chrome-trace /
//!   Perfetto JSON file (root tracks become processes, descendants become
//!   threads) that loads directly in `ui.perfetto.dev`;
//! * the raw [`Event`] stream, which downstream crates fold into
//!   deterministic summary reports (bottleneck attribution lives next to
//!   the DRAM command model in `recross-dram`, not here).
//!
//! # Determinism
//!
//! Everything is reproducible byte-for-byte: timestamps are integer
//! cycles scaled to microseconds only at export time with fixed `{:.3}`
//! formatting, strings are interned in first-use order, track and event
//! order is recording order, and floats in counter samples are printed
//! with the same shortest-round-trip formatting the rest of the workspace
//! uses ([`fmt_f64`]). Two identical runs produce identical trace files.
//!
//! ```
//! use recross_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! let sys = rec.track("system", None);
//! let worker = rec.track("worker 0", Some(sys));
//! rec.span(worker, "job", 100, 250);
//! rec.counter(sys, "queue depth", 100, 3.0);
//! rec.validate().unwrap();
//! let json = recross_obs::chrome_trace_string(&rec, 0.4167);
//! assert!(json.starts_with("[\n"));
//! ```

#![deny(missing_docs)]

mod chrome;
mod json;
mod recorder;

pub use chrome::{chrome_trace_string, write_chrome_trace};
pub use json::{fmt_f64, json_string};
pub use recorder::{Event, EventKind, Recorder, StrId, TrackId};
