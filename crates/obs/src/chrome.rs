//! Chrome-trace / Perfetto JSON exporter — streaming and in-memory.
//!
//! Root tracks become trace *processes* (`pid` = root creation order),
//! every track in a root's subtree becomes a *thread* of that process
//! (`tid` = creation order within the subtree, root itself is `tid 0`),
//! and `process_name` / `thread_name` / sort-index metadata records the
//! human-readable hierarchy. Timestamps are converted from integer cycles
//! to microseconds with fixed `{:.3}` formatting, so export is
//! byte-deterministic.
//!
//! There is exactly **one** formatter: [`ChromeStreamSink`], an
//! [`EventSink`] that renders each event to JSON as it arrives and
//! flushes to its writer whenever the pending text reaches
//! [`STREAM_CHUNK`] bytes. The classic after-the-fact exporter
//! [`write_chrome_trace`] is a thin wrapper that *replays* a buffered
//! recorder through the same sink — which is why a streamed trace file
//! is byte-identical to the in-memory export of the same run, by
//! construction rather than by parallel maintenance.
//!
//! The sink's resident state is bounded by the *table* sizes (its own
//! pre-escaped copy of the interning table, per-track placements) plus
//! the fixed flush chunk — never by the number of events, which is what
//! makes long-run tracing viable.

use std::io::{self, Write};

use crate::json::{fmt_f64, json_string};
use crate::recorder::{Event, EventKind, Recorder, StrId, TrackId};
use crate::sink::EventSink;

/// Flush threshold for [`ChromeStreamSink`]'s pending-text buffer, in
/// bytes. The resident buffer never grows meaningfully past this (at most
/// one entry beyond it before a flush).
pub const STREAM_CHUNK: usize = 64 * 1024;

/// Microseconds with fixed three-decimal formatting.
fn us(cycles: u64, ns_per_cycle: f64) -> String {
    format!("{:.3}", cycles as f64 * ns_per_cycle / 1_000.0)
}

/// An [`EventSink`] that renders the stream as a Chrome-trace JSON array
/// (the format `ui.perfetto.dev` and `chrome://tracing` load directly),
/// incrementally, in bounded memory.
///
/// Event entries are emitted in recording order; the per-track
/// `process_name` / `thread_name` metadata block is appended by
/// [`finish`](EventSink::finish) (call it — or
/// [`Recorder::finish`](crate::Recorder::finish) — or the file ends
/// without its metadata and closing bracket). Recording-time callbacks
/// are infallible: an I/O error is latched, subsequent events are counted
/// as dropped, and the error surfaces from `finish`.
pub struct ChromeStreamSink<W: Write> {
    w: W,
    ns_per_cycle: f64,
    chunk: usize,
    /// Pre-escaped (`json_string`) copy of the interning table.
    names: Vec<String>,
    /// `(pid, tid)` per track, maintained incrementally (same placement
    /// rule the module docs describe).
    place: Vec<(u32, u32)>,
    /// Name [`StrId`] index per track, for the metadata block.
    track_names: Vec<u32>,
    threads_in_root: Vec<u32>,
    roots: u32,
    buf: String,
    first: bool,
    finished: bool,
    err: Option<io::Error>,
    dropped: u64,
}

impl<W: Write> std::fmt::Debug for ChromeStreamSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeStreamSink")
            .field("tracks", &self.place.len())
            .field("strings", &self.names.len())
            .field("buffered_bytes", &self.buf.len())
            .field("finished", &self.finished)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl<W: Write> ChromeStreamSink<W> {
    /// A streaming exporter writing to `w`, flushing every
    /// [`STREAM_CHUNK`] bytes. `ns_per_cycle` converts the recorder's
    /// integer-cycle timestamps to trace microseconds.
    pub fn new(w: W, ns_per_cycle: f64) -> Self {
        Self::with_chunk_size(w, ns_per_cycle, STREAM_CHUNK)
    }

    /// [`ChromeStreamSink::new`] with an explicit flush threshold
    /// (mainly for tests that want to exercise many flushes cheaply).
    pub fn with_chunk_size(w: W, ns_per_cycle: f64, chunk: usize) -> Self {
        Self {
            w,
            ns_per_cycle,
            chunk: chunk.max(1),
            names: Vec::new(),
            place: Vec::new(),
            track_names: Vec::new(),
            threads_in_root: Vec::new(),
            roots: 0,
            buf: String::from("[\n"),
            first: true,
            finished: false,
            err: None,
            dropped: 0,
        }
    }

    /// The underlying writer (borrow; useful after `finish`).
    pub fn writer(&self) -> &W {
        &self.w
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn flush_buf(&mut self) {
        if self.err.is_none() {
            if let Err(e) = self.w.write_all(self.buf.as_bytes()) {
                self.err = Some(e);
            }
        }
        self.buf.clear();
    }

    fn push_entry(&mut self, entry: &str) {
        if self.err.is_some() {
            return;
        }
        if self.first {
            self.first = false;
        } else {
            self.buf.push_str(",\n");
        }
        self.buf.push_str(entry);
        if self.buf.len() >= self.chunk {
            self.flush_buf();
        }
    }
}

impl<W: Write> EventSink for ChromeStreamSink<W> {
    fn kind(&self) -> &'static str {
        "chrome-stream"
    }

    fn on_string(&mut self, id: StrId, s: &str) {
        debug_assert_eq!(id.0 as usize, self.names.len(), "dense string ids");
        self.names.push(json_string(s));
    }

    fn on_track(&mut self, id: TrackId, name: StrId, parent: Option<TrackId>) {
        debug_assert_eq!(id.0 as usize, self.place.len(), "dense track ids");
        match parent {
            None => {
                self.place.push((self.roots, 0));
                self.threads_in_root.push(1);
                self.roots += 1;
            }
            Some(p) => {
                // Parents precede children, so the parent is placed.
                let pid = self.place[p.0 as usize].0;
                let tid = self.threads_in_root[pid as usize];
                self.threads_in_root[pid as usize] += 1;
                self.place.push((pid, tid));
            }
        }
        self.track_names.push(name.0);
    }

    fn on_event(&mut self, e: &Event) {
        if self.finished || self.err.is_some() {
            self.dropped += 1;
            return;
        }
        let (pid, tid) = self.place[e.track.0 as usize];
        let name = &self.names[e.name.0 as usize];
        let ts = us(e.ts, self.ns_per_cycle);
        let entry = match e.kind {
            EventKind::Span { dur } => {
                // Zero-length spans are widened to 1 ns so they stay
                // visible in the viewer.
                let dur_us = (dur as f64 * self.ns_per_cycle / 1_000.0).max(0.001);
                format!(
                    "{{\"name\":{name},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur_us:.3}}}"
                )
            }
            EventKind::Begin => format!(
                "{{\"name\":{name},\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
            ),
            EventKind::End => {
                format!("{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}")
            }
            EventKind::Instant => format!(
                "{{\"name\":{name},\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
            ),
            EventKind::Counter { value } => format!(
                "{{\"name\":{name},\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{}}}}}",
                fmt_f64(value)
            ),
        };
        self.push_entry(&entry);
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.finished {
            self.finished = true;
            for t in 0..self.place.len() {
                let (pid, tid) = self.place[t];
                let name = self.names[self.track_names[t] as usize].clone();
                if tid == 0 {
                    self.push_entry(&format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{name}}}}}"
                    ));
                    self.push_entry(&format!(
                        "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
                    ));
                }
                self.push_entry(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{name}}}}}"
                ));
                self.push_entry(&format!(
                    "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
                ));
            }
            self.buf.push_str("\n]");
            self.flush_buf();
            if self.err.is_none() {
                if let Err(e) = self.w.flush() {
                    self.err = Some(e);
                }
            }
        }
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn heap_capacity(&self) -> usize {
        self.buf.capacity()
            + self.names.capacity()
            + self.names.iter().map(|s| s.capacity()).sum::<usize>()
            + self.place.capacity()
            + self.track_names.capacity()
            + self.threads_in_root.capacity()
    }
}

/// Writes the recorder's full retained event stream as a Chrome-trace
/// JSON array by replaying it through a [`ChromeStreamSink`] — so this
/// produces the exact bytes a live-attached streaming sink would have
/// written for the same run. `ns_per_cycle` converts the recorder's
/// integer-cycle timestamps to trace microseconds.
pub fn write_chrome_trace<W: Write>(rec: &Recorder, ns_per_cycle: f64, w: W) -> io::Result<()> {
    let mut sink = ChromeStreamSink::new(w, ns_per_cycle);
    rec.replay(&mut sink);
    sink.finish()
}

/// [`write_chrome_trace`] into a `String`.
pub fn chrome_trace_string(rec: &Recorder, ns_per_cycle: f64) -> String {
    let mut out = Vec::new();
    write_chrome_trace(rec, ns_per_cycle, &mut out).expect("write to Vec cannot fail");
    String::from_utf8(out).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::SharedWriter;

    /// Records the sample forest into `rec` (works for buffered and
    /// unbuffered recorders alike).
    fn record_sample(rec: &mut Recorder) {
        let tenant = rec.track("tenant rt", None);
        let lane = rec.track("lane 0", Some(tenant));
        let ch = rec.track("channel 0", None);
        let server = rec.track("server", Some(ch));
        rec.span(lane, "request", 0, 240);
        rec.span_begin(server, "batch 0", 40);
        rec.span_end(server, 200);
        rec.instant(lane, "dispatch ch0", 40);
        rec.counter(ch, "queue depth", 0, 1.0);
        rec.counter(ch, "queue depth", 40, 0.0);
    }

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        record_sample(&mut rec);
        rec
    }

    /// Minimal structural parse of the exporter's output: counts events
    /// by phase and checks brace/bracket balance, without a JSON
    /// dependency.
    fn count(json: &str, needle: &str) -> usize {
        json.matches(needle).count()
    }

    #[test]
    fn round_trip_counts_match_recorded_events() {
        let rec = sample();
        rec.validate().unwrap();
        let json = chrome_trace_string(&rec, 0.4167);
        assert!(json.starts_with("[\n") && json.ends_with("\n]"));
        assert_eq!(count(&json, "\"ph\":\"X\""), 1);
        assert_eq!(count(&json, "\"ph\":\"B\""), 1);
        assert_eq!(count(&json, "\"ph\":\"E\""), 1);
        assert_eq!(count(&json, "\"ph\":\"i\""), 1);
        assert_eq!(count(&json, "\"ph\":\"C\""), 2);
        // One thread_name per track, one process_name per root.
        assert_eq!(count(&json, "\"thread_name\""), 4);
        assert_eq!(count(&json, "\"process_name\""), 2);
        let opens = json.chars().filter(|&c| c == '{').count();
        let closes = json.chars().filter(|&c| c == '}').count();
        assert_eq!(opens, closes, "balanced braces");
    }

    #[test]
    fn children_share_their_roots_pid() {
        let rec = sample();
        let json = chrome_trace_string(&rec, 1.0);
        // "lane 0" is a thread of pid 0, "server" a thread of pid 1.
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"lane 0\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"server\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"channel 0\"}}"
        ));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_string(&sample(), 0.4167);
        let b = chrome_trace_string(&sample(), 0.4167);
        assert_eq!(a, b);
    }

    #[test]
    fn live_stream_is_byte_identical_to_in_memory_export() {
        // In-memory path: record everything, export afterwards.
        let in_memory = chrome_trace_string(&sample(), 0.4167);

        // Streaming path: no memory sink, events rendered as they land,
        // tiny chunk so multiple flushes actually happen.
        let out = SharedWriter::new();
        let mut rec = Recorder::unbuffered();
        rec.attach(Box::new(ChromeStreamSink::with_chunk_size(
            out.clone(),
            0.4167,
            64,
        )));
        record_sample(&mut rec);
        assert!(rec.events().is_empty(), "nothing retained");
        rec.finish().unwrap();
        assert_eq!(out.contents(), in_memory);
    }

    #[test]
    fn streaming_heap_stays_bounded() {
        let out = SharedWriter::new();
        let mut rec = Recorder::unbuffered();
        rec.attach(Box::new(ChromeStreamSink::with_chunk_size(
            out.clone(),
            1.0,
            1024,
        )));
        let t = rec.track("t", None);
        let mut high_water = 0usize;
        for i in 0..50_000u64 {
            rec.span(t, "tick", i, i + 1);
            high_water = high_water.max(rec.heap_capacity());
        }
        rec.finish().unwrap();
        // One interned name, one track, and a ~1 KiB chunk: the resident
        // footprint must not scale with the 50k events...
        assert!(high_water < 8 * 1024, "resident {high_water} not bounded");
        // ...but the streamed file does.
        assert!(out.len() > 50_000 * 40, "events actually streamed");
    }

    #[test]
    fn finish_is_required_and_idempotent() {
        let out = SharedWriter::new();
        let mut sink = ChromeStreamSink::new(out.clone(), 1.0);
        let rec = sample();
        rec.replay(&mut sink);
        assert!(
            !out.contents().ends_with("]"),
            "small trace stays buffered until finish"
        );
        sink.finish().unwrap();
        sink.finish().unwrap();
        assert_eq!(out.contents(), chrome_trace_string(&rec, 1.0));
    }

    #[test]
    fn io_errors_surface_at_finish_and_count_drops() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = ChromeStreamSink::with_chunk_size(Failing, 1.0, 16);
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.instant(t, "a", 1);
        rec.instant(t, "b", 2);
        rec.replay(&mut sink);
        // First entry triggers the failed flush; the second is dropped.
        assert!(sink.dropped() >= 1);
        assert!(sink.finish().is_err());
    }

    #[test]
    fn timestamps_are_scaled_to_microseconds() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span(t, "s", 1_000, 3_000);
        // 1000 cycles at 0.5 ns/cycle = 0.5 µs.
        let json = chrome_trace_string(&rec, 0.5);
        assert!(json.contains("\"ts\":0.500,\"dur\":1.000"), "{json}");
    }

    #[test]
    fn empty_recorder_exports_an_empty_array() {
        let rec = Recorder::new();
        let json = chrome_trace_string(&rec, 1.0);
        assert_eq!(json, "[\n\n]");
    }
}
