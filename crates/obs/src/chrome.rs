//! Chrome-trace / Perfetto JSON exporter.
//!
//! Root tracks become trace *processes* (`pid` = root creation order),
//! every track in a root's subtree becomes a *thread* of that process
//! (`tid` = creation order within the subtree, root itself is `tid 0`),
//! and `process_name` / `thread_name` / sort-index metadata records the
//! human-readable hierarchy. Timestamps are converted from integer cycles
//! to microseconds with fixed `{:.3}` formatting, so export is
//! byte-deterministic.

use std::io::{self, Write};

use crate::json::{fmt_f64, json_string};
use crate::recorder::{EventKind, Recorder, TrackId};

/// Microseconds with fixed three-decimal formatting.
fn us(cycles: u64, ns_per_cycle: f64) -> String {
    format!("{:.3}", cycles as f64 * ns_per_cycle / 1_000.0)
}

/// Per-track `(pid, tid)` assignment (see module docs).
fn place_tracks(rec: &Recorder) -> Vec<(u32, u32)> {
    let n = rec.track_count();
    let mut place = Vec::with_capacity(n);
    let mut roots = 0u32;
    let mut threads_in_root: Vec<u32> = Vec::new();
    for t in 0..n {
        let id = TrackId(t as u32);
        match rec.track_parent(id) {
            None => {
                place.push((roots, 0));
                threads_in_root.push(1);
                roots += 1;
            }
            Some(parent) => {
                // Parents precede children, so the parent is placed.
                let pid = place[parent.0 as usize].0;
                let tid = threads_in_root[pid as usize];
                threads_in_root[pid as usize] += 1;
                place.push((pid, tid));
            }
        }
    }
    place
}

/// Writes the recorder's full event stream as a Chrome-trace JSON array
/// (the format `ui.perfetto.dev` and `chrome://tracing` load directly).
/// `ns_per_cycle` converts the recorder's integer-cycle timestamps to
/// trace microseconds. Zero-length spans are widened to 1 ns so they stay
/// visible in the viewer.
pub fn write_chrome_trace<W: Write>(rec: &Recorder, ns_per_cycle: f64, mut w: W) -> io::Result<()> {
    let place = place_tracks(rec);
    let mut entries: Vec<String> = Vec::with_capacity(rec.events().len() + 3 * rec.track_count());
    for e in rec.events() {
        let (pid, tid) = place[e.track.0 as usize];
        let name = json_string(rec.string(e.name));
        let ts = us(e.ts, ns_per_cycle);
        match e.kind {
            EventKind::Span { dur } => {
                let dur_us = (dur as f64 * ns_per_cycle / 1_000.0).max(0.001);
                entries.push(format!(
                    "{{\"name\":{name},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur_us:.3}}}"
                ));
            }
            EventKind::Begin => entries.push(format!(
                "{{\"name\":{name},\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
            )),
            EventKind::End => entries.push(format!(
                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
            )),
            EventKind::Instant => entries.push(format!(
                "{{\"name\":{name},\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
            )),
            EventKind::Counter { value } => entries.push(format!(
                "{{\"name\":{name},\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{}}}}}",
                fmt_f64(value)
            )),
        }
    }
    for (t, &(pid, tid)) in place.iter().enumerate() {
        let id = TrackId(t as u32);
        let name = json_string(rec.track_name(id));
        if rec.track_parent(id).is_none() {
            entries.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{name}}}}}"
            ));
            entries.push(format!(
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
            ));
        }
        entries.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{name}}}}}"
        ));
        entries.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }
    write!(w, "[\n{}\n]", entries.join(",\n"))
}

/// [`write_chrome_trace`] into a `String`.
pub fn chrome_trace_string(rec: &Recorder, ns_per_cycle: f64) -> String {
    let mut out = Vec::new();
    write_chrome_trace(rec, ns_per_cycle, &mut out).expect("write to Vec cannot fail");
    String::from_utf8(out).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        let tenant = rec.track("tenant rt", None);
        let lane = rec.track("lane 0", Some(tenant));
        let ch = rec.track("channel 0", None);
        let server = rec.track("server", Some(ch));
        rec.span(lane, "request", 0, 240);
        rec.span_begin(server, "batch 0", 40);
        rec.span_end(server, 200);
        rec.instant(lane, "dispatch ch0", 40);
        rec.counter(ch, "queue depth", 0, 1.0);
        rec.counter(ch, "queue depth", 40, 0.0);
        rec
    }

    /// Minimal structural parse of the exporter's output: counts events
    /// by phase and checks brace/bracket balance, without a JSON
    /// dependency.
    fn count(json: &str, needle: &str) -> usize {
        json.matches(needle).count()
    }

    #[test]
    fn round_trip_counts_match_recorded_events() {
        let rec = sample();
        rec.validate().unwrap();
        let json = chrome_trace_string(&rec, 0.4167);
        assert!(json.starts_with("[\n") && json.ends_with("\n]"));
        assert_eq!(count(&json, "\"ph\":\"X\""), 1);
        assert_eq!(count(&json, "\"ph\":\"B\""), 1);
        assert_eq!(count(&json, "\"ph\":\"E\""), 1);
        assert_eq!(count(&json, "\"ph\":\"i\""), 1);
        assert_eq!(count(&json, "\"ph\":\"C\""), 2);
        // One thread_name per track, one process_name per root.
        assert_eq!(count(&json, "\"thread_name\""), 4);
        assert_eq!(count(&json, "\"process_name\""), 2);
        let opens = json.chars().filter(|&c| c == '{').count();
        let closes = json.chars().filter(|&c| c == '}').count();
        assert_eq!(opens, closes, "balanced braces");
    }

    #[test]
    fn children_share_their_roots_pid() {
        let rec = sample();
        let json = chrome_trace_string(&rec, 1.0);
        // "lane 0" is a thread of pid 0, "server" a thread of pid 1.
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"lane 0\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"server\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"channel 0\"}}"
        ));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_string(&sample(), 0.4167);
        let b = chrome_trace_string(&sample(), 0.4167);
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_are_scaled_to_microseconds() {
        let mut rec = Recorder::new();
        let t = rec.track("t", None);
        rec.span(t, "s", 1_000, 3_000);
        // 1000 cycles at 0.5 ns/cycle = 0.5 µs.
        let json = chrome_trace_string(&rec, 0.5);
        assert!(json.contains("\"ts\":0.500,\"dur\":1.000"), "{json}");
    }

    #[test]
    fn empty_recorder_exports_an_empty_array() {
        let rec = Recorder::new();
        let json = chrome_trace_string(&rec, 1.0);
        assert_eq!(json, "[\n\n]");
    }
}
