//! A fixed-bucket log-scale latency histogram.
//!
//! Tail latency is the serving metric that matters (RecNMP and UpDLRM both
//! report latency-bounded throughput), and per-request latencies under load
//! span many orders of magnitude, so we bucket logarithmically: each
//! power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets
//! (the HdrHistogram scheme). Quantiles are then answered with bounded
//! relative error (≤ 1/`SUB_BUCKETS` ≈ 3.1 %) from a fixed ~2.5 KiB count
//! array that merges across channels/shards by plain addition — no sorting,
//! no per-sample storage.

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 32;
const LOG_SUB: u32 = SUB_BUCKETS.trailing_zeros(); // 5
/// Total bucket count covering the full `u64` range: one linear group for
/// values below [`SUB_BUCKETS`] plus one group per octave above it.
pub const NUM_BUCKETS: usize = (64 - LOG_SUB as usize + 1) * SUB_BUCKETS;

/// Mergeable log-scale histogram over `u64` samples (latencies in cycles).
///
/// # Examples
///
/// ```
/// use recross_obs::hist::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.05);
/// assert_eq!(h.quantile(1.0), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: exact below `SUB_BUCKETS`, log-linear above.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - LOG_SUB;
    let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
    (msb - LOG_SUB + 1) as usize * SUB_BUCKETS + sub
}

/// Largest value mapping to `bucket` (the quantile answer: an upper bound,
/// so reported quantiles never understate the tail).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB_BUCKETS {
        return bucket as u64;
    }
    let octave = (bucket / SUB_BUCKETS - 1) as u32;
    let sub = (bucket % SUB_BUCKETS) as u64;
    let base = (SUB_BUCKETS as u64 + sub) << octave;
    base + ((1u64 << octave) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (q in [0, 1]): an upper bound on the value at rank
    /// `ceil(q·count)`, within one log-bucket of the exact answer, clamped
    /// to the exact observed `[min, max]`. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (counts add; equivalent to
    /// having recorded both sample streams into a single histogram).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard serving percentiles `(p50, p90, p95, p99, p999)`.
    pub fn tail_summary(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// A deterministic JSON summary object
    /// (`{"count":…,"mean":…,"min":…,"p50":…,"p90":…,"p99":…,"max":…}`);
    /// the shared shape for histogram blocks across report JSON.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count(),
            crate::json::fmt_f64(self.mean()),
            self.min(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::rng::Xoshiro256pp;

    /// Exact oracle: value at rank ceil(q·n) of the sorted samples.
    fn oracle(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        // bucket_upper(bucket_of(v)) >= v, and bucket indexing is monotone
        // in v.
        let mut vals: Vec<u64> = (0..60)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift) + off))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        vals.sort_unstable();
        vals.dedup();
        let mut prev = 0usize;
        for v in vals {
            let b = bucket_of(v);
            assert!(b < NUM_BUCKETS, "v={v}");
            assert!(bucket_upper(b) >= v, "v={v}");
            assert!(b >= prev, "v={v}: bucket {b} < previous {prev}");
            prev = b;
        }
        // Small values are exact.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_match_sorted_oracle_within_bucket_error() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for case in 0..20 {
            let n = 100 + rng.next_bounded(5000) as usize;
            // Mix of scales: uniform, heavy-tailed, constant.
            let samples: Vec<u64> = (0..n)
                .map(|_| match case % 3 {
                    0 => rng.next_bounded(1_000_000),
                    1 => {
                        let e = rng.next_bounded(40);
                        rng.next_bounded(1 << e.max(1))
                    }
                    _ => 77_777,
                })
                .collect();
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &q in &[0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let got = h.quantile(q);
                let want = oracle(&sorted, q);
                // Upper bound within one log-bucket (relative error ≤ 1/32),
                // never below the exact answer.
                assert!(got >= want, "case {case} q={q}: {got} < exact {want}");
                let bound = want + want / SUB_BUCKETS as u64 + 1;
                assert!(
                    got <= bound,
                    "case {case} q={q}: {got} > bound {bound} (exact {want})"
                );
            }
            assert_eq!(h.max(), *sorted.last().unwrap());
            assert_eq!(h.min(), sorted[0]);
            let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
            assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        }
    }

    #[test]
    fn merge_is_associative_and_matches_combined() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let streams: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                (0..500)
                    .map(|_| rng.next_bounded(1 << 30))
                    .collect::<Vec<_>>()
            })
            .collect();
        let hist_of = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let [a, b, c] = [
            hist_of(&streams[0]),
            hist_of(&streams[1]),
            hist_of(&streams[2]),
        ];
        // (a ∪ b) ∪ c == a ∪ (b ∪ c) == hist(all samples)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let all: Vec<u64> = streams.concat();
        assert_eq!(ab_c, hist_of(&all));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_rejected() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn summary_json_is_deterministic_and_complete() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let json = h.summary_json();
        assert!(json.starts_with("{\"count\":3,\"mean\":20.0,\"min\":10,"), "{json}");
        assert!(json.ends_with(",\"max\":30}"), "{json}");
        assert_eq!(json, h.clone().summary_json());
        assert_eq!(
            LatencyHistogram::new().summary_json(),
            "{\"count\":0,\"mean\":0.0,\"min\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"max\":0}"
        );
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
