//! Randomized properties of the channel-partitioning planner
//! (`ChannelPlan::balance_by_load`), checked over seeded case sets from the
//! in-repo deterministic PRNG.

use recross_nmp::multichannel::ChannelPlan;
use recross_workload::rng::Xoshiro256pp;
use recross_workload::stats::imbalance_ratio;
use recross_workload::{AccessDistribution, EmbeddingTableSpec, TraceGenerator};

/// A random skewed workload: a handful of tables with wildly different
/// cardinalities, hot-table probabilities, and per-table Zipf skew.
fn random_generator(rng: &mut Xoshiro256pp) -> TraceGenerator {
    let n_tables = 2 + rng.next_bounded(10) as usize;
    let tables: Vec<EmbeddingTableSpec> = (0..n_tables)
        .map(|_| EmbeddingTableSpec {
            rows: 16 + rng.next_bounded(100_000),
            dim: 1 << (2 + rng.next_bounded(5)),
            dtype_bytes: 4,
        })
        .collect();
    let dists = tables
        .iter()
        .map(|t| AccessDistribution::zipf(t.rows, 0.2 + rng.next_f64()))
        .collect();
    // Skew which tables the trace touches at all.
    let probs: Vec<f64> = (0..n_tables).map(|_| 0.05 + 0.95 * rng.next_f64()).collect();
    TraceGenerator::new(tables, dists)
        .table_probabilities(probs)
        .batch_size(1 + rng.next_bounded(6) as usize)
        .pooling(1 + rng.next_bounded(32) as u32)
        .batches(1 + rng.next_bounded(4) as usize)
}

/// Per-channel access-volume loads (lookups × vector bytes) under a plan.
fn channel_loads(plan: &ChannelPlan, trace: &recross_workload::Trace) -> Vec<u64> {
    let mut loads = vec![0u64; plan.channels()];
    for op in trace.iter_ops() {
        loads[plan.channel_of(op.table)] +=
            op.indices.len() as u64 * trace.tables[op.table].vector_bytes();
    }
    loads
}

#[test]
fn every_table_assigned_to_a_valid_channel() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA1A_0001);
    for case in 0..32 {
        let g = random_generator(&mut rng);
        let trace = g.generate(case);
        let channels = 1 + rng.next_bounded(6) as usize;
        let plan = ChannelPlan::balance_by_load(&trace, channels);
        assert_eq!(plan.channels(), channels, "case {case}");
        // Every table has exactly one in-range channel, and splitting
        // loses no work.
        for t in 0..trace.tables.len() {
            assert!(plan.channel_of(t) < channels, "case {case} table {t}");
        }
        let subs = plan.split(&trace);
        assert_eq!(subs.len(), channels, "case {case}");
        let ops: usize = subs.iter().map(|(s, _)| s.ops()).sum();
        let lookups: usize = subs.iter().map(|(s, _)| s.lookups()).sum();
        assert_eq!(ops, trace.ops(), "case {case}");
        assert_eq!(lookups, trace.lookups(), "case {case}");
        // The dense remaps partition the original table set.
        let mut seen = vec![false; trace.tables.len()];
        for (_, orig) in &subs {
            for &t in orig {
                assert!(!seen[t], "case {case}: table {t} mapped twice");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}: all tables mapped");
    }
}

#[test]
fn balanced_plan_beats_random_assignment_on_skewed_traces() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA1A_0002);
    let mut planner_total = 0.0;
    let mut random_total = 0.0;
    for case in 0..24 {
        let g = random_generator(&mut rng);
        let trace = g.generate(1000 + case);
        let channels = 2 + rng.next_bounded(3) as usize;
        let plan = ChannelPlan::balance_by_load(&trace, channels);
        let planned = imbalance_ratio(&channel_loads(&plan, &trace));
        // Average a few random assignments as the strawman.
        let mut random_sum = 0.0;
        for _ in 0..8 {
            let assignment = (0..trace.tables.len())
                .map(|_| rng.next_bounded(channels as u64) as usize)
                .collect();
            let rand_plan = ChannelPlan::new(assignment, channels);
            random_sum += imbalance_ratio(&channel_loads(&rand_plan, &trace));
        }
        let random_mean = random_sum / 8.0;
        // Greedy LPT can't always be perfect with few huge tables, but it
        // must never be *worse* than a random scatter (small tolerance for
        // the degenerate all-load-on-one-table traces where both tie).
        assert!(
            planned <= random_mean + 1e-9,
            "case {case}: planned {planned:.3} worse than random {random_mean:.3}"
        );
        planner_total += planned;
        random_total += random_mean;
    }
    // And in aggregate it should be strictly better, not merely tied.
    assert!(
        planner_total < random_total,
        "planner {planner_total:.2} should beat random {random_total:.2} overall"
    );
}

#[test]
fn single_channel_plan_is_trivial() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA1A_0003);
    let g = random_generator(&mut rng);
    let trace = g.generate(9);
    let plan = ChannelPlan::balance_by_load(&trace, 1);
    assert!((0..trace.tables.len()).all(|t| plan.channel_of(t) == 0));
    let loads = channel_loads(&plan, &trace);
    assert_eq!(loads.len(), 1);
    assert_eq!(loads[0], trace.gathered_bytes());
    assert_eq!(imbalance_ratio(&loads), 1.0);
}
