//! TensorDIMM (Kwon et al., MICRO 2019): rank-level NMP with *vertical*
//! table partitioning.
//!
//! Each embedding vector is sliced across the ranks (dimension-wise), so
//! every lookup touches every rank with a short read and the rank PEs each
//! reduce their own slice — perfectly load balanced, but each access is
//! short (more row activations per byte) and the internal bandwidth is only
//! rank-level.

use recross_dram::controller::BusScope;
use recross_dram::DramConfig;
use recross_workload::model::embedding_value;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};
use crate::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use crate::layout::TableLayout;
use crate::session::{MemoizedSession, ServiceSession};

/// TensorDIMM accelerator model.
#[derive(Debug, Clone)]
pub struct TensorDimm {
    dram: DramConfig,
}

impl TensorDimm {
    /// Creates the model.
    pub fn new(dram: DramConfig) -> Self {
        Self { dram }
    }

    /// Slice width in bytes for one rank (vector split evenly, rounded up
    /// to whole bursts).
    fn slice_bytes(&self, spec: &EmbeddingTableSpec) -> u64 {
        let ranks = u64::from(self.dram.topology.ranks);
        let per = spec.vector_bytes().div_ceil(ranks);
        per.div_ceil(u64::from(self.dram.topology.burst_bytes))
            * u64::from(self.dram.topology.burst_bytes)
    }

    /// The intra-rank layout: each rank holds a sliced copy of the whole
    /// table set (slices are addressed identically within every rank), so
    /// a single-rank view gives every rank's addressing.
    fn rank_layout(&self, tables: &[EmbeddingTableSpec]) -> TableLayout {
        let sliced: Vec<EmbeddingTableSpec> = tables
            .iter()
            .map(|t| {
                let slice = self.slice_bytes(t) as u32;
                EmbeddingTableSpec {
                    rows: t.rows,
                    dim: (slice / t.dtype_bytes).max(1),
                    dtype_bytes: t.dtype_bytes,
                }
            })
            .collect();
        let mut rank_topo = self.dram.topology;
        rank_topo.ranks = 1;
        TableLayout::pack(rank_topo, &sliced, 0)
    }

    /// Builds the per-lookup placement plans (public for the
    /// benchmark harness and custom engine configurations).
    pub fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        Self::plans_prepared(&self.rank_layout(&trace.tables), self.dram.topology.ranks, trace)
    }

    /// [`plans`](Self::plans) with the per-rank layout already resolved —
    /// the per-batch half, shared with [`open_session`]'s prepared path.
    fn plans_prepared(layout: &TableLayout, ranks: u32, trace: &Trace) -> Vec<LookupPlan> {
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            for &row in &op.indices {
                let loc = layout.locate(op.table, row);
                let reads = (0..ranks)
                    .map(|rank| {
                        let mut addr = loc.addr;
                        addr.rank = rank;
                        PlacedRead {
                            addr,
                            bursts: loc.bursts,
                            dest: BusScope::Rank,
                            salp: false,
                            auto_precharge: true,
                            write: false,
                            node: rank as usize,
                        }
                    })
                    .collect();
                plans.push(LookupPlan {
                    op: op_idx,
                    reads,
                    cached: false,
                });
            }
        }
        plans
    }
}

impl EmbeddingAccelerator for TensorDimm {
    fn name(&self) -> &str {
        "TensorDIMM"
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let cfg = EngineConfig::nmp(
            "TensorDIMM",
            self.dram.clone(),
            self.dram.topology.ranks as usize,
        );
        execute(&cfg, trace, &plans)
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        let layout = self.rank_layout(tables);
        let ranks = self.dram.topology.ranks;
        let mut cfg = EngineConfig::nmp("TensorDIMM", self.dram.clone(), ranks as usize);
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            "TensorDIMM",
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                cfg.trace_commands = traced;
                let plans = Self::plans_prepared(&layout, ranks, &trace);
                execute(&cfg, &trace, &plans).into()
            }),
        ))
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // Each rank PE reduces its dimension slice; the host concatenates.
        let ranks = self.dram.topology.ranks as usize;
        trace
            .iter_ops()
            .map(|op| {
                let dim = trace.tables[op.table].dim as usize;
                let per_rank = dim.div_ceil(ranks);
                let mut out = vec![0.0f32; dim];
                for r in 0..ranks {
                    let lo = r * per_rank;
                    let hi = ((r + 1) * per_rank).min(dim);
                    for (&row, &w) in op.indices.iter().zip(&op.weights) {
                        for (d, slot) in out[lo..hi].iter_mut().enumerate() {
                            *slot += w * embedding_value(op.table, row, (lo + d) as u32);
                        }
                    }
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(2)
            .pooling(8)
            .generate(2)
    }

    #[test]
    fn every_lookup_touches_every_rank() {
        let t = trace();
        let mut td = TensorDimm::new(DramConfig::ddr5_4800());
        let r = td.run(&t);
        let loads = &r.node_loads;
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0], loads[1], "vertical slicing is perfectly balanced");
        assert_eq!(loads[0], t.lookups() as u64);
        assert!((r.imbalance.mean - 1.0).abs() < 1e-9, "imbalance ratio 1.0");
    }

    #[test]
    fn results_match_golden() {
        let t = trace();
        let mut td = TensorDimm::new(DramConfig::ddr5_4800());
        let got = td.compute_results(&t);
        let want = recross_workload::model::reduce_trace(&t);
        recross_workload::model::assert_results_close(&got, &want, 1e-4);
    }

    #[test]
    fn slice_rounding_covers_vector() {
        let td = TensorDimm::new(DramConfig::ddr5_4800());
        let spec = EmbeddingTableSpec::new(10, 48); // 192 B over 2 ranks
        assert_eq!(td.slice_bytes(&spec), 128, "96 B rounds up to 2 bursts");
    }
}
