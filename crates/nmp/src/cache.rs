//! A small fixed-capacity LRU cache.
//!
//! Used for the RecNMP per-rank hot-entry caches (1 MiB per rank PE, paper
//! §5.1) and the CPU baseline's last-level cache. Implemented with a
//! HashMap + intrusive doubly-linked list over a slab, so every operation
//! is O(1) and deterministic.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU set: `touch` inserts/refreshes a key and reports
/// whether it was already present.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Clone> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (use an `Option` at the call site for
    /// "no cache").
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `key` is currently cached (no recency update, no stats).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Accesses `key`: returns `true` on hit. On miss the key is inserted,
    /// evicting the least recently used key if full.
    pub fn touch(&mut self, key: K) -> bool {
        self.touch_evict(key).0
    }

    /// [`touch`](Self::touch), additionally returning the key evicted to
    /// make room (always `None` on a hit). Lets callers that pair this
    /// recency list with an external value store drop the evicted value.
    pub fn touch_evict(&mut self, key: K) -> (bool, Option<K>) {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.move_to_front(idx);
            return (true, None);
        }
        self.misses += 1;
        let evicted = if self.map.len() == self.capacity {
            Some(self.evict_tail())
        } else {
            None
        };
        let idx = self.nodes.len();
        self.nodes.push(Node {
            key: key.clone(),
            prev: NIL,
            next: self.head,
        });
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.map.insert(key, idx);
        (false, evicted)
    }

    fn move_to_front(&mut self, idx: usize) {
        if idx == self.head {
            return;
        }
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        }
        if idx == self.tail {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
    }

    fn evict_tail(&mut self) -> K {
        let old_tail = self.tail;
        debug_assert_ne!(old_tail, NIL, "evict from empty cache");
        let key = self.nodes[old_tail].key.clone();
        self.map.remove(&key);
        let prev = self.nodes[old_tail].prev;
        self.tail = prev;
        if prev != NIL {
            self.nodes[prev].next = NIL;
        } else {
            self.head = NIL;
        }
        // Reuse the slab slot: swap-remove pattern.
        let last = self.nodes.len() - 1;
        if old_tail != last {
            self.nodes.swap(old_tail, last);
            let moved_key = self.nodes[old_tail].key.clone();
            self.map.insert(moved_key, old_tail);
            let (p, n) = (self.nodes[old_tail].prev, self.nodes[old_tail].next);
            if p != NIL {
                self.nodes[p].next = old_tail;
            }
            if n != NIL {
                self.nodes[n].prev = old_tail;
            }
            if self.head == last {
                self.head = old_tail;
            }
            if self.tail == last {
                self.tail = old_tail;
            }
        }
        self.nodes.pop();
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // refresh 1; 2 is now LRU
        c.touch(3); // evicts 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert!(!c.touch("a"));
        assert!(!c.touch("b"));
        assert!(c.touch("b"));
        assert!(!c.touch("a"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        LruCache::<u64>::new(0);
    }

    #[test]
    fn touch_evict_reports_victim() {
        let mut c = LruCache::new(2);
        assert_eq!(c.touch_evict(1), (false, None));
        assert_eq!(c.touch_evict(2), (false, None));
        assert_eq!(c.touch_evict(1), (true, None), "hit never evicts");
        assert_eq!(c.touch_evict(3), (false, Some(2)), "LRU key 2 evicted");
        assert!(c.contains(&1) && c.contains(&3));
    }

    #[test]
    fn long_stream_consistency() {
        // Compare against a naive reference implementation.
        let cap = 8;
        let mut c = LruCache::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // front = most recent
        let mut state = 12345u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 20;
            let expect_hit = reference.contains(&key);
            assert_eq!(c.touch(key), expect_hit, "key {key}");
            reference.retain(|&k| k != key);
            reference.insert(0, key);
            reference.truncate(cap);
            assert_eq!(c.len(), reference.len());
        }
    }
}
