//! Access-frequency profiling of embedding traces.
//!
//! The paper's data characterization step (§4.3) captures per-row access
//! statistics "during the training phase". Both TRiM's hot-entry
//! replication and ReCross's bandwidth-aware partitioning consume such a
//! profile; this module computes it from a (profiling) trace.

use std::collections::HashMap;

use recross_workload::Trace;

/// Per-row access counts over a trace.
#[derive(Debug, Clone, Default)]
pub struct AccessProfile {
    counts: HashMap<(usize, u64), u64>,
    total: u64,
    per_table_total: Vec<u64>,
    per_table_lookups: Vec<u64>,
    ops_per_table: Vec<u64>,
    ops_total: u64,
}

impl AccessProfile {
    /// Profiles `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.tables.len();
        let mut p = Self {
            per_table_total: vec![0; n],
            per_table_lookups: vec![0; n],
            ops_per_table: vec![0; n],
            ..Default::default()
        };
        for op in trace.iter_ops() {
            p.ops_per_table[op.table] += 1;
            p.ops_total += 1;
            for &row in &op.indices {
                *p.counts.entry((op.table, row)).or_insert(0) += 1;
                p.total += 1;
                p.per_table_total[op.table] += 1;
            }
        }
        p.per_table_lookups = p.per_table_total.clone();
        p
    }

    /// Total lookups profiled.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Access count of `(table, row)` (0 if never seen).
    pub fn count(&self, table: usize, row: u64) -> u64 {
        self.counts.get(&(table, row)).copied().unwrap_or(0)
    }

    /// Number of distinct rows touched.
    pub fn distinct_rows(&self) -> usize {
        self.counts.len()
    }

    /// Empirical probability that an op targets table `i` (`prob_i` of the
    /// paper's Table 1, folded with batch composition).
    pub fn table_probability(&self, table: usize) -> f64 {
        if self.ops_total == 0 {
            0.0
        } else {
            self.ops_per_table[table] as f64 / self.ops_total as f64
        }
    }

    /// Empirical average pooling factor of table `i`.
    pub fn avg_pooling(&self, table: usize) -> f64 {
        if self.ops_per_table[table] == 0 {
            0.0
        } else {
            self.per_table_lookups[table] as f64 / self.ops_per_table[table] as f64
        }
    }

    /// The hottest rows overall: `(table, row, count)`, hottest first,
    /// truncated to `limit` entries. Ties break deterministically by key.
    pub fn hottest(&self, limit: usize) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> =
            self.counts.iter().map(|(&(t, r), &c)| (t, r, c)).collect();
        v.sort_unstable_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        v.truncate(limit);
        v
    }

    /// The hottest rows of one table, hottest first, `(row, count)`.
    pub fn hottest_of_table(&self, table: usize, limit: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|((t, _), _)| *t == table)
            .map(|(&(_, r), &c)| (r, c))
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }

    /// Fraction of all accesses captured by the globally hottest
    /// `fraction`-share of *touched* rows — the empirical Figure 3 statistic.
    pub fn capture_of_hottest(&self, fraction: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64 * fraction).ceil() as usize).clamp(1, self.counts.len());
        let top: u64 = self.hottest(k).iter().map(|&(_, _, c)| c).sum();
        top as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(16, 1000)
            .batch_size(8)
            .pooling(20)
            .generate(3)
    }

    #[test]
    fn totals_match_trace() {
        let t = trace();
        let p = AccessProfile::from_trace(&t);
        assert_eq!(p.total(), t.lookups() as u64);
        assert!(p.distinct_rows() > 0);
        assert!(p.distinct_rows() as u64 <= p.total());
    }

    #[test]
    fn counts_sum_per_table() {
        let t = trace();
        let p = AccessProfile::from_trace(&t);
        let prob_sum: f64 = (0..t.tables.len()).map(|i| p.table_probability(i)).sum();
        assert!((prob_sum - 1.0).abs() < 1e-9);
        // Every table appears once per sample → equal probabilities.
        assert!((p.table_probability(0) - 1.0 / 26.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_is_sorted_and_skewed() {
        let t = trace();
        let p = AccessProfile::from_trace(&t);
        let hot = p.hottest(50);
        assert!(hot.windows(2).all(|w| w[0].2 >= w[1].2));
        // Long tail: hottest 10% of touched rows capture well over 10%.
        assert!(p.capture_of_hottest(0.1) > 0.2);
    }

    #[test]
    fn avg_pooling_close_to_configured() {
        let t = trace();
        let p = AccessProfile::from_trace(&t);
        // Tables bigger than the pooling factor get exactly 20.
        let big_table = t.tables.iter().position(|s| s.rows > 20).unwrap();
        assert!((p.avg_pooling(big_table) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = AccessProfile::default();
        assert_eq!(p.total(), 0);
        assert_eq!(p.capture_of_hottest(0.5), 0.0);
        assert_eq!(p.count(0, 0), 0);
    }
}
