//! RecNMP (Liu et al., ISCA 2020): rank-level NMP with *horizontal* table
//! partitioning and a per-rank hot-entry cache.
//!
//! Whole vectors live in one rank (row-hashed), each rank-buffer PE reduces
//! locally, and a 1 MiB cache per rank PE (paper §5.1) filters the hottest
//! entries — the paper's §3.1 notes this helps but cannot cover the hot set
//! of large models.

use recross_dram::controller::BusScope;
use recross_dram::DramConfig;
use recross_workload::model::reduce_trace;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};
use crate::cache::LruCache;
use crate::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use crate::layout::TableLayout;
use crate::session::{MemoizedSession, ServiceSession};

/// RecNMP accelerator model.
#[derive(Debug, Clone)]
pub struct RecNmp {
    dram: DramConfig,
    cache_bytes_per_rank: u64,
}

impl RecNmp {
    /// Creates the model with the paper's 1 MiB per-rank PE cache.
    pub fn new(dram: DramConfig) -> Self {
        Self {
            dram,
            cache_bytes_per_rank: 1024 * 1024,
        }
    }

    /// Overrides the per-rank cache size (bytes); 0 disables caching.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes_per_rank = bytes;
        self
    }

    /// Per-rank PE-cache capacity in entries for a table universe.
    fn cache_entries(&self, tables: &[EmbeddingTableSpec]) -> usize {
        let max_vec = tables.iter().map(|t| t.vector_bytes()).max().unwrap_or(256);
        (self.cache_bytes_per_rank / max_vec.max(1)) as usize
    }

    /// Builds the per-lookup placement plans (public for the
    /// benchmark harness and custom engine configurations).
    pub fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        let layout = TableLayout::pack(self.dram.topology, &trace.tables, 0);
        Self::plans_prepared(
            &layout,
            self.cache_entries(&trace.tables),
            self.dram.topology.ranks,
            trace,
        )
    }

    /// [`plans`](Self::plans) with the layout already resolved — the
    /// per-batch half, shared with [`open_session`]'s prepared path. The
    /// PE caches start cold on every call (per-call semantics keep the
    /// serving memo cache exact).
    fn plans_prepared(
        layout: &TableLayout,
        entries: usize,
        ranks: u32,
        trace: &Trace,
    ) -> Vec<LookupPlan> {
        let mut caches: Vec<Option<LruCache<(usize, u64)>>> = (0..ranks)
            .map(|_| (entries > 0).then(|| LruCache::new(entries)))
            .collect();
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            for &row in &op.indices {
                let loc = layout.locate(op.table, row);
                let rank = loc.addr.rank as usize;
                let hit = caches[rank]
                    .as_mut()
                    .map(|c| c.touch((op.table, row)))
                    .unwrap_or(false);
                if hit {
                    plans.push(LookupPlan {
                        op: op_idx,
                        reads: vec![],
                        cached: true,
                    });
                } else {
                    plans.push(LookupPlan {
                        op: op_idx,
                        reads: vec![PlacedRead {
                            addr: loc.addr,
                            bursts: loc.bursts,
                            dest: BusScope::Rank,
                            salp: false,
                            auto_precharge: true,
                            write: false,
                            node: rank,
                        }],
                        cached: false,
                    });
                }
            }
        }
        plans
    }
}

impl EmbeddingAccelerator for RecNmp {
    fn name(&self) -> &str {
        "RecNMP"
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let cfg = EngineConfig::nmp(
            "RecNMP",
            self.dram.clone(),
            self.dram.topology.ranks as usize,
        );
        execute(&cfg, trace, &plans)
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        let layout = TableLayout::pack(self.dram.topology, tables, 0);
        let entries = self.cache_entries(tables);
        let ranks = self.dram.topology.ranks;
        let mut cfg = EngineConfig::nmp("RecNMP", self.dram.clone(), ranks as usize);
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            "RecNMP",
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                cfg.trace_commands = traced;
                let plans = Self::plans_prepared(&layout, entries, ranks, &trace);
                execute(&cfg, &trace, &plans).into()
            }),
        ))
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // Rank PEs reduce whole vectors (cached or fetched) in trace order;
        // numerically identical to the golden order.
        reduce_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(20)
            .generate(9)
    }

    #[test]
    fn cache_captures_hot_entries() {
        let t = trace();
        let no_cache = RecNmp::new(DramConfig::ddr5_4800())
            .with_cache_bytes(0)
            .run(&t);
        let cached = RecNmp::new(DramConfig::ddr5_4800()).run(&t);
        assert_eq!(no_cache.cache_hits, 0);
        assert!(cached.cache_hits > 0, "skewed trace must hit the PE cache");
        assert!(cached.counters.rd_wr_bits < no_cache.counters.rd_wr_bits);
        assert!(cached.cycles <= no_cache.cycles);
    }

    #[test]
    fn horizontal_partitioning_is_imbalanced() {
        let t = trace();
        let r = RecNmp::new(DramConfig::ddr5_4800())
            .with_cache_bytes(0)
            .run(&t);
        // Unlike TensorDIMM, per-op rank loads are skewed.
        assert!(r.imbalance.mean > 1.0);
    }

    #[test]
    fn results_match_golden() {
        let t = trace();
        let got = RecNmp::new(DramConfig::ddr5_4800()).compute_results(&t);
        let want = recross_workload::model::reduce_trace(&t);
        recross_workload::model::assert_results_close(&got, &want, 1e-6);
    }
}
