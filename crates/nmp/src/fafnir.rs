//! FAFNIR (Asgari et al., HPCA 2021): rank-level NMP with a reduction tree
//! (the paper's related work, §6).
//!
//! FAFNIR statically partitions the embedding tables across ranks at table
//! granularity and reduces partial sums through a tree of reduction units,
//! so exactly one result vector reaches the host per op regardless of how
//! many ranks contributed. The paper's critique: it "still utilizes
//! rank-level parallelism ... improving little the internal bandwidth" —
//! which is exactly how it behaves here.

use recross_dram::controller::BusScope;
use recross_dram::DramConfig;
use recross_workload::model::reduce_trace;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};
use crate::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use crate::layout::TableLayout;
use crate::session::{MemoizedSession, ServiceSession};

/// FAFNIR accelerator model.
#[derive(Debug, Clone)]
pub struct Fafnir {
    dram: DramConfig,
}

impl Fafnir {
    /// Creates the model.
    pub fn new(dram: DramConfig) -> Self {
        Self { dram }
    }

    /// Greedy table→rank assignment balancing bytes (FAFNIR's static
    /// partitioning at table granularity).
    fn assign_tables(&self, tables: &[EmbeddingTableSpec]) -> Vec<u32> {
        let ranks = self.dram.topology.ranks;
        let mut sized: Vec<(usize, u64)> = tables
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.bytes()))
            .collect();
        sized.sort_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
        let mut totals = vec![0u64; ranks as usize];
        let mut assign = vec![0u32; tables.len()];
        for (table, bytes) in sized {
            let r = totals
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i as u32)
                .expect("ranks > 0");
            assign[table] = r;
            totals[r as usize] += bytes;
        }
        assign
    }

    /// The shared single-rank layout. Every rank packs all tables (only
    /// the assigned ones are addressed through it); packing all keeps
    /// indices aligned without a remap table, and makes the per-rank
    /// layouts identical — one suffices.
    fn rank_layout(&self, tables: &[EmbeddingTableSpec]) -> TableLayout {
        let mut rank_topo = self.dram.topology;
        rank_topo.ranks = 1;
        TableLayout::pack(rank_topo, tables, 0)
    }

    /// Builds the per-lookup placement plans.
    pub fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        Self::plans_prepared(
            &self.assign_tables(&trace.tables),
            &self.rank_layout(&trace.tables),
            trace,
        )
    }

    /// [`plans`](Self::plans) with the table assignment and layout already
    /// resolved — the per-batch half, shared with [`open_session`]'s
    /// prepared path.
    fn plans_prepared(assign: &[u32], layout: &TableLayout, trace: &Trace) -> Vec<LookupPlan> {
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            let rank = assign[op.table];
            for &row in &op.indices {
                let loc = layout.locate(op.table, row);
                let mut addr = loc.addr;
                addr.rank = rank;
                plans.push(LookupPlan {
                    op: op_idx,
                    reads: vec![PlacedRead {
                        addr,
                        bursts: loc.bursts,
                        dest: BusScope::Rank,
                        salp: false,
                        auto_precharge: true,
                        write: false,
                        node: rank as usize,
                    }],
                    cached: false,
                });
            }
        }
        plans
    }
}

impl EmbeddingAccelerator for Fafnir {
    fn name(&self) -> &str {
        "FAFNIR"
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let cfg = EngineConfig::nmp(
            "FAFNIR",
            self.dram.clone(),
            self.dram.topology.ranks as usize,
        );
        execute(&cfg, trace, &plans)
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        let assign = self.assign_tables(tables);
        let layout = self.rank_layout(tables);
        let mut cfg = EngineConfig::nmp(
            "FAFNIR",
            self.dram.clone(),
            self.dram.topology.ranks as usize,
        );
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            "FAFNIR",
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                cfg.trace_commands = traced;
                let plans = Self::plans_prepared(&assign, &layout, &trace);
                execute(&cfg, &trace, &plans).into()
            }),
        ))
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // Each op's lookups live in one rank; the tree forwards its psum
        // unchanged — numerically the golden order.
        reduce_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(16)
            .generate(8)
    }

    #[test]
    fn tables_pin_to_one_rank() {
        let t = trace();
        let f = Fafnir::new(DramConfig::ddr5_4800());
        let plans = f.plans(&t);
        // Every lookup of one op lands in a single rank.
        let mut per_op_rank: std::collections::HashMap<usize, u32> =
            std::collections::HashMap::new();
        for p in &plans {
            let rank = p.reads[0].addr.rank;
            let prev = per_op_rank.insert(p.op, rank);
            if let Some(prev) = prev {
                assert_eq!(prev, rank, "op {} split across ranks", p.op);
            }
        }
    }

    #[test]
    fn assignment_balances_bytes() {
        let t = trace();
        let f = Fafnir::new(DramConfig::ddr5_4800());
        let assign = f.assign_tables(&t.tables);
        let mut totals = [0u64; 2];
        for (table, &r) in assign.iter().enumerate() {
            totals[r as usize] += t.tables[table].bytes();
        }
        let max = totals.iter().max().unwrap();
        let min = totals.iter().min().unwrap().max(&1);
        assert!((*max as f64) / (*min as f64) < 2.0, "{totals:?}");
    }

    #[test]
    fn runs_and_matches_golden() {
        let t = trace();
        let mut f = Fafnir::new(DramConfig::ddr5_4800());
        let r = f.run(&t);
        assert_eq!(r.lookups as usize, t.lookups());
        let got = f.compute_results(&t);
        recross_workload::model::assert_results_close(
            &got,
            &recross_workload::model::reduce_trace(&t),
            1e-6,
        );
    }

    #[test]
    fn rank_level_only_is_slower_than_bank_group() {
        // The paper's critique: FAFNIR improves internal bandwidth little.
        let t = trace();
        let fafnir = Fafnir::new(DramConfig::ddr5_4800()).run(&t);
        let trim_g = crate::trim::Trim::bank_group(DramConfig::ddr5_4800()).run(&t);
        assert!(trim_g.cycles < fafnir.cycles);
    }
}
