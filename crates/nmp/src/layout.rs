//! Contiguous embedding-table memory layout.
//!
//! The baselines store embedding tables contiguously: "the embedding tables
//! are allocated contiguously in the memory and a row index also serves as
//! the memory offset" (paper §3.1). Vectors pack into DRAM rows;
//! consecutive DRAM rows rotate across the channel's banks (the standard
//! bandwidth-friendly interleave of [`recross_dram::AddressMapper`]), so
//! hot embedding rows land on effectively random banks.

use recross_dram::{PhysAddr, Topology};
use recross_workload::EmbeddingTableSpec;

/// Where one embedding vector lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorLocation {
    /// Decomposed DRAM address of the vector's first byte.
    pub addr: PhysAddr,
    /// Bursts needed to read the whole vector.
    pub bursts: u32,
}

/// A contiguous layout of a set of embedding tables over one channel.
#[derive(Debug, Clone)]
pub struct TableLayout {
    topo: Topology,
    /// Per table: starting global DRAM-row slot.
    base_slot: Vec<u64>,
    /// Per table: vectors per DRAM row.
    vectors_per_row: Vec<u32>,
    /// Per table: vector size in bytes.
    vector_bytes: Vec<u32>,
    /// Total DRAM-row slots consumed.
    total_slots: u64,
}

impl TableLayout {
    /// Packs `tables` contiguously starting at global row slot
    /// `start_slot`.
    ///
    /// A *global row slot* `g` denotes DRAM row `g / banks_per_channel` of
    /// flat bank `g % banks_per_channel` — consecutive slots rotate across
    /// banks.
    ///
    /// # Panics
    ///
    /// Panics if a vector is larger than a DRAM row or the tables overflow
    /// the channel capacity.
    pub fn pack(topo: Topology, tables: &[EmbeddingTableSpec], start_slot: u64) -> Self {
        let mut base_slot = Vec::with_capacity(tables.len());
        let mut vectors_per_row = Vec::with_capacity(tables.len());
        let mut vector_bytes = Vec::with_capacity(tables.len());
        let mut slot = start_slot;
        for t in tables {
            let vbytes = t.vector_bytes() as u32;
            assert!(
                vbytes <= topo.row_bytes,
                "embedding vector larger than a DRAM row"
            );
            let vpr = topo.row_bytes / vbytes;
            base_slot.push(slot);
            vectors_per_row.push(vpr);
            vector_bytes.push(vbytes);
            slot += t.rows.div_ceil(u64::from(vpr));
        }
        let max_slots = u64::from(topo.rows_per_bank) * u64::from(topo.banks_per_channel());
        assert!(slot <= max_slots, "tables overflow channel capacity");
        Self {
            topo,
            base_slot,
            vectors_per_row,
            vector_bytes,
            total_slots: slot,
        }
    }

    /// Number of global row slots used (including the starting offset).
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Location of `(table, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn locate(&self, table: usize, row: u64) -> VectorLocation {
        let vpr = u64::from(self.vectors_per_row[table]);
        let slot = self.base_slot[table] + row / vpr;
        let col_byte = (row % vpr) as u32 * self.vector_bytes[table];
        let addr = slot_to_addr(&self.topo, slot, col_byte);
        VectorLocation {
            addr,
            bursts: self.vector_bytes[table].div_ceil(self.topo.burst_bytes),
        }
    }
}

/// Converts a global row slot + column offset to a physical address.
///
/// # Panics
///
/// Panics if the slot exceeds the channel's rows.
pub fn slot_to_addr(topo: &Topology, slot: u64, col_byte: u32) -> PhysAddr {
    let banks = u64::from(topo.banks_per_channel());
    let row = slot / banks;
    assert!(row < u64::from(topo.rows_per_bank), "row slot out of range");
    let flat = (slot % banks) as u32;
    let rank = flat / topo.banks_per_rank();
    let within_rank = flat % topo.banks_per_rank();
    PhysAddr {
        channel: 0,
        rank,
        bank_group: within_rank / topo.banks_per_group,
        bank: within_rank % topo.banks_per_group,
        row: row as u32,
        col_byte,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_dram::DramConfig;

    fn topo() -> Topology {
        DramConfig::ddr5_4800().topology
    }

    #[test]
    fn vectors_pack_into_rows() {
        let t = topo();
        let tables = vec![EmbeddingTableSpec::new(100, 64)]; // 256 B vectors
        let l = TableLayout::pack(t, &tables, 0);
        // 32 vectors per 8 KiB row.
        let v0 = l.locate(0, 0);
        let v31 = l.locate(0, 31);
        let v32 = l.locate(0, 32);
        assert_eq!(v0.addr.flat_bank(&t), v31.addr.flat_bank(&t));
        assert_eq!(v0.addr.row, v31.addr.row);
        assert_eq!(v31.addr.col_byte, 31 * 256);
        assert_ne!(
            v0.addr.flat_bank(&t),
            v32.addr.flat_bank(&t),
            "next slot rotates bank"
        );
        assert_eq!(v0.bursts, 4);
    }

    #[test]
    fn tables_are_disjoint() {
        let t = topo();
        let tables = vec![
            EmbeddingTableSpec::new(33, 64),
            EmbeddingTableSpec::new(10, 64),
        ];
        let l = TableLayout::pack(t, &tables, 0);
        // Table 0 occupies ceil(33/32) = 2 slots; table 1 starts at slot 2.
        let a = l.locate(0, 32);
        let b = l.locate(1, 0);
        assert_ne!(
            (a.addr.rank, a.addr.bank_group, a.addr.bank, a.addr.row),
            (b.addr.rank, b.addr.bank_group, b.addr.bank, b.addr.row)
        );
        assert_eq!(l.total_slots(), 3);
    }

    #[test]
    fn locations_are_unique() {
        let t = topo();
        let tables = vec![
            EmbeddingTableSpec::new(200, 32),
            EmbeddingTableSpec::new(77, 16),
        ];
        let l = TableLayout::pack(t, &tables, 5);
        let mut seen = std::collections::HashSet::new();
        for (ti, spec) in tables.iter().enumerate() {
            for row in 0..spec.rows {
                let v = l.locate(ti, row);
                assert!(
                    seen.insert((
                        v.addr.rank,
                        v.addr.bank_group,
                        v.addr.bank,
                        v.addr.row,
                        v.addr.col_byte
                    )),
                    "collision at table {ti} row {row}"
                );
            }
        }
    }

    #[test]
    fn start_slot_offsets_layout() {
        let t = topo();
        let tables = vec![EmbeddingTableSpec::new(1, 64)];
        let l0 = TableLayout::pack(t, &tables, 0);
        let l9 = TableLayout::pack(t, &tables, 9);
        assert_ne!(l0.locate(0, 0).addr, l9.locate(0, 0).addr);
    }

    #[test]
    #[should_panic(expected = "overflow channel capacity")]
    fn capacity_overflow_detected() {
        let t = topo();
        // 64 Ki rows × 64 banks × 32 vectors = 134 M vectors fit; ask more.
        let tables = vec![EmbeddingTableSpec::new(200_000_000, 64)];
        TableLayout::pack(t, &tables, 0);
    }

    #[test]
    fn slot_addr_roundtrip_fields() {
        let t = topo();
        let a = slot_to_addr(&t, 12_345, 128);
        assert!(a.is_valid(&t));
        let flat = a.flat_bank(&t);
        assert_eq!(
            u64::from(flat) + u64::from(t.banks_per_channel()) * u64::from(a.row),
            12_345 % u64::from(t.banks_per_channel())
                + u64::from(t.banks_per_channel()) * (12_345 / u64::from(t.banks_per_channel()))
        );
    }
}
