//! Area and cost models of the NMP processing elements.
//!
//! The paper synthesizes PEs in 40 nm CMOS at 300 MHz (§5.1) and reports
//! per-solution areas in Table 3. We carry those synthesized constants and
//! recombine them per configuration: the per-PE areas below are the Table 3
//! totals divided by the PE counts of each design, so the table is
//! reproduced exactly for the published configurations and extrapolates
//! sensibly for the Figure 14 exploration configs.

/// Synthesized PE area constants (mm², 40 nm, conservative DRAM-process
/// 2× factor already included for in-chip PEs — paper §5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// TensorDIMM rank PE (buffer chip).
    pub tensordimm_rank_pe: f64,
    /// RecNMP rank PE + its 1 MiB cache (buffer chip).
    pub recnmp_rank_pe: f64,
    /// TRiM rank-level summarizer PE (buffer chip).
    pub trim_rank_pe: f64,
    /// ReCross rank PE + rank summarizer (buffer chip).
    pub recross_rank_pe: f64,
    /// One bank-group-level PE (in-chip).
    pub bank_group_pe: f64,
    /// One bank-level PE (in-chip).
    pub bank_pe: f64,
    /// Per-bank SALP support (subarray access controllers, in-chip).
    pub salp_per_bank: f64,
}

impl AreaParams {
    /// Constants back-derived from Table 3:
    /// TRiM-G: 8 BG PEs = 2.03 mm² → 0.254 mm²/PE;
    /// TRiM-B: 32 bank PEs = 11.5 mm² → 0.359 mm²/PE;
    /// ReCross: 4 BG + 4 bank(+SALP) PEs = 2.35 mm².
    pub fn paper_defaults() -> Self {
        Self {
            tensordimm_rank_pe: 0.28,
            recnmp_rank_pe: 0.54,
            trim_rank_pe: 0.36,
            recross_rank_pe: 0.34,
            bank_group_pe: 2.03 / 8.0,
            bank_pe: 11.5 / 32.0,
            salp_per_bank: (2.35 - 4.0 * (2.03 / 8.0) - 4.0 * (11.5 / 32.0)) / 4.0,
        }
    }
}

/// Area overhead of one solution (Table 3's two columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaReport {
    /// Buffer-chip (per-DIMM) PE area, mm².
    pub buffer_chip_mm2: f64,
    /// In-DRAM-chip PE area (per chip), mm².
    pub dram_chip_mm2: f64,
}

impl AreaReport {
    /// Total added silicon (buffer chip + DRAM chip), mm².
    pub fn total_mm2(&self) -> f64 {
        self.buffer_chip_mm2 + self.dram_chip_mm2
    }
}

/// Table 3 rows for the published designs, plus a parametric entry for any
/// ReCross configuration.
#[derive(Debug, Clone)]
pub struct AreaModel {
    params: AreaParams,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::new(AreaParams::paper_defaults())
    }
}

impl AreaModel {
    /// Creates a model from constants.
    pub fn new(params: AreaParams) -> Self {
        Self { params }
    }

    /// TensorDIMM (rank PEs only).
    pub fn tensordimm(&self) -> AreaReport {
        AreaReport {
            buffer_chip_mm2: self.params.tensordimm_rank_pe,
            dram_chip_mm2: 0.0,
        }
    }

    /// RecNMP (rank PEs + caches).
    pub fn recnmp(&self) -> AreaReport {
        AreaReport {
            buffer_chip_mm2: self.params.recnmp_rank_pe,
            dram_chip_mm2: 0.0,
        }
    }

    /// TRiM-G (8 bank-group PEs per chip).
    pub fn trim_g(&self) -> AreaReport {
        AreaReport {
            buffer_chip_mm2: self.params.trim_rank_pe,
            dram_chip_mm2: 8.0 * self.params.bank_group_pe,
        }
    }

    /// TRiM-B (32 bank PEs per chip).
    pub fn trim_b(&self) -> AreaReport {
        AreaReport {
            buffer_chip_mm2: self.params.trim_rank_pe,
            dram_chip_mm2: 32.0 * self.params.bank_pe,
        }
    }

    /// ReCross with `bg_pes` bank-group PEs and `bank_pes` SALP bank PEs
    /// per rank (per chip).
    pub fn recross(&self, bg_pes: u32, bank_pes: u32) -> AreaReport {
        AreaReport {
            buffer_chip_mm2: self.params.recross_rank_pe,
            dram_chip_mm2: f64::from(bg_pes) * self.params.bank_group_pe
                + f64::from(bank_pes) * (self.params.bank_pe + self.params.salp_per_bank),
        }
    }

    /// Area efficiency: speedup per mm² of added silicon.
    pub fn area_efficiency(&self, speedup: f64, area: &AreaReport) -> f64 {
        if area.total_mm2() == 0.0 {
            f64::INFINITY
        } else {
            speedup / area.total_mm2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn reproduces_table3() {
        let m = AreaModel::default();
        close(m.tensordimm().buffer_chip_mm2, 0.28, 1e-9);
        close(m.recnmp().buffer_chip_mm2, 0.54, 1e-9);
        close(m.trim_g().dram_chip_mm2, 2.03, 1e-9);
        close(m.trim_b().dram_chip_mm2, 11.5, 1e-9);
        // The default ReCross config: 4 BG + 4 bank PEs = 2.35 mm².
        close(m.recross(4, 4).dram_chip_mm2, 2.35, 1e-9);
        close(m.recross(4, 4).buffer_chip_mm2, 0.34, 1e-9);
    }

    #[test]
    fn trim_b_is_about_4x_trim_g() {
        // The paper: "TRiM-B ... with an area overhead reduction of 4×"
        // relative to ReCross ≈ TRiM-G.
        let m = AreaModel::default();
        let ratio = m.trim_b().dram_chip_mm2 / m.trim_g().dram_chip_mm2;
        assert!(ratio > 4.0 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn exploration_configs_scale() {
        let m = AreaModel::default();
        let d = m.recross(4, 4);
        let c5 = m.recross(8, 32);
        assert!(c5.dram_chip_mm2 > 3.0 * d.dram_chip_mm2);
    }

    #[test]
    fn area_efficiency_ordering() {
        let m = AreaModel::default();
        // Same speedup at larger area → lower efficiency.
        let e_small = m.area_efficiency(2.0, &m.recross(4, 4));
        let e_big = m.area_efficiency(2.0, &m.recross(8, 32));
        assert!(e_small > e_big);
        assert!(m.area_efficiency(1.0, &AreaReport::default()).is_infinite());
    }
}
