//! Multi-channel scaling.
//!
//! The paper evaluates one channel (Table 2) and argues ReCross "ensures
//! well scalability" (§5.2); production servers populate several channels.
//! Channels are fully independent in DDR systems — own controller, C/A and
//! data pins — so the model is: partition the embedding tables across
//! channels (balancing expected access *load*, not just bytes), split each
//! trace accordingly, run one accelerator instance per channel, and combine
//! (makespan = slowest channel; energy adds).

use recross_workload::{Batch, EmbeddingOp, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};

/// Assignment of every table to a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelPlan {
    assignment: Vec<usize>,
    channels: usize,
}

impl ChannelPlan {
    /// Balances tables across `channels` greedily by *observed access
    /// volume* (lookups × vector bytes from a profiling trace) — the load
    /// metric that actually determines per-channel time.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn balance_by_load(trace: &Trace, channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        let mut load: Vec<(usize, u64)> = trace
            .tables
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let lookups: u64 = trace
                    .iter_ops()
                    .filter(|op| op.table == i)
                    .map(|op| op.indices.len() as u64)
                    .sum();
                (i, lookups * spec.vector_bytes())
            })
            .collect();
        // Largest first onto the least-loaded channel.
        load.sort_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
        let mut totals = vec![0u64; channels];
        let mut assignment = vec![0usize; trace.tables.len()];
        for (table, bytes) in load {
            let ch = totals
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .expect("channels > 0");
            assignment[table] = ch;
            totals[ch] += bytes;
        }
        Self {
            assignment,
            channels,
        }
    }

    /// Explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any channel id is out of range or `channels == 0`.
    pub fn new(assignment: Vec<usize>, channels: usize) -> Self {
        assert!(channels > 0);
        assert!(assignment.iter().all(|&c| c < channels));
        Self {
            assignment,
            channels,
        }
    }

    /// Channel of a table.
    pub fn channel_of(&self, table: usize) -> usize {
        self.assignment[table]
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Splits a trace into per-channel traces. Table indices are remapped
    /// densely within each channel; returns the traces plus, per channel,
    /// the original table index of each remapped table.
    pub fn split(&self, trace: &Trace) -> Vec<(Trace, Vec<usize>)> {
        assert_eq!(self.assignment.len(), trace.tables.len());
        // Dense remap per channel.
        let mut remap = vec![Vec::new(); self.channels]; // channel -> original tables
        let mut dense = vec![usize::MAX; trace.tables.len()];
        for (table, &ch) in self.assignment.iter().enumerate() {
            dense[table] = remap[ch].len();
            remap[ch].push(table);
        }
        (0..self.channels)
            .map(|ch| {
                let tables = remap[ch].iter().map(|&orig| trace.tables[orig]).collect();
                let batches = trace
                    .batches
                    .iter()
                    .map(|b| Batch {
                        ops: b
                            .ops
                            .iter()
                            .filter(|op| self.assignment[op.table] == ch)
                            .map(|op| EmbeddingOp {
                                table: dense[op.table],
                                indices: op.indices.clone(),
                                weights: op.weights.clone(),
                            })
                            .collect(),
                    })
                    .collect();
                (Trace { tables, batches }, remap[ch].clone())
            })
            .collect()
    }
}

/// Runs a trace over `plan.channels()` independent accelerator instances
/// (built by `make`, which receives the channel id and its sub-trace) and
/// combines the reports: makespan = slowest channel, energies add.
pub fn run_multichannel<A, F>(plan: &ChannelPlan, trace: &Trace, mut make: F) -> RunReport
where
    A: EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    let mut combined = RunReport {
        name: format!("{}-channel", plan.channels()),
        ..Default::default()
    };
    let mut ratios_weighted = 0.0;
    let mut hits_weighted = 0.0;
    for (ch, (sub, _orig)) in plan.split(trace).into_iter().enumerate() {
        if sub.ops() == 0 {
            continue;
        }
        let mut accel = make(ch, &sub);
        let r = accel.run(&sub);
        combined.cycles = combined.cycles.max(r.cycles);
        combined.ns = combined.ns.max(r.ns);
        combined.lookups += r.lookups;
        combined.ops += r.ops;
        combined.cache_hits += r.cache_hits;
        combined.counters.merge(&r.counters);
        combined.energy.act_pj += r.energy.act_pj;
        combined.energy.rd_wr_pj += r.energy.rd_wr_pj;
        combined.energy.io_pj += r.energy.io_pj;
        combined.energy.pe_pj += r.energy.pe_pj;
        combined.energy.static_pj += r.energy.static_pj;
        combined.node_loads.extend(r.node_loads);
        ratios_weighted += r.imbalance.mean * r.ops as f64;
        hits_weighted += r.row_hit_rate * r.lookups as f64;
        combined.op_latency.max = combined.op_latency.max.max(r.op_latency.max);
        combined.op_latency.p99 = combined.op_latency.p99.max(r.op_latency.p99);
        combined.op_latency.p90 = combined.op_latency.p90.max(r.op_latency.p90);
        combined.op_latency.p50 = combined.op_latency.p50.max(r.op_latency.p50);
    }
    if combined.ops > 0 {
        combined.imbalance.mean = ratios_weighted / combined.ops as f64;
    }
    if combined.lookups > 0 {
        combined.row_hit_rate = hits_weighted / combined.lookups as f64;
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trim::Trim;
    use recross_dram::DramConfig;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(16)
            .generate(3)
    }

    #[test]
    fn split_preserves_every_op() {
        let t = trace();
        let plan = ChannelPlan::balance_by_load(&t, 3);
        let subs = plan.split(&t);
        let total_ops: usize = subs.iter().map(|(s, _)| s.ops()).sum();
        let total_lookups: usize = subs.iter().map(|(s, _)| s.lookups()).sum();
        assert_eq!(total_ops, t.ops());
        assert_eq!(total_lookups, t.lookups());
        // Remapped table indices are in range.
        for (sub, orig) in &subs {
            assert_eq!(sub.tables.len(), orig.len());
            for op in sub.iter_ops() {
                assert!(op.table < sub.tables.len());
            }
        }
    }

    #[test]
    fn balance_spreads_load() {
        let t = trace();
        let plan = ChannelPlan::balance_by_load(&t, 2);
        let subs = plan.split(&t);
        let loads: Vec<u64> = subs.iter().map(|(s, _)| s.gathered_bytes()).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 2.0,
            "channels roughly balanced: {loads:?}"
        );
    }

    #[test]
    fn two_channels_beat_one() {
        let t = trace();
        let one = Trim::bank_group(DramConfig::ddr5_4800()).run(&t);
        let plan = ChannelPlan::balance_by_load(&t, 2);
        let two = run_multichannel(&plan, &t, |_, _| Trim::bank_group(DramConfig::ddr5_4800()));
        assert!(two.cycles < one.cycles, "{} vs {}", two.cycles, one.cycles);
        assert_eq!(two.lookups, one.lookups);
        // Energy does not vanish — both channels' events are accounted.
        assert!(two.counters.rd_wr_bits == one.counters.rd_wr_bits);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        ChannelPlan::balance_by_load(&trace(), 0);
    }

    use crate::accel::EmbeddingAccelerator;

    #[test]
    fn explicit_assignment_validated() {
        let plan = ChannelPlan::new(vec![0, 1, 0], 2);
        assert_eq!(plan.channel_of(1), 1);
        assert_eq!(plan.channels(), 2);
    }
}
