//! The accelerator interface and run reports.

use recross_dram::{Cycle, EnergyBreakdown, EnergyCounters};
use recross_workload::stats::ImbalanceSummary;
use recross_workload::{EmbeddingTableSpec, Trace};

use crate::session::ServiceSession;

/// Per-embedding-op latency percentiles (serving-tail view), in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean op latency.
    pub mean: f64,
    /// Median op latency.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Slowest op.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a list of per-op latencies (cycles). Returns the default
    /// (all zeros) for an empty input.
    pub fn from_latencies(latencies: &[Cycle]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Self {
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: pick(0.5),
            p90: pick(0.9),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl core::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mean {:.0} / p50 {} / p90 {} / p99 {} / max {} cycles",
            self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Result of running one trace through an accelerator model.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Accelerator name.
    pub name: String,
    /// End-to-end cycles until the last result reached the host.
    pub cycles: Cycle,
    /// The same in nanoseconds.
    pub ns: f64,
    /// Total embedding-vector lookups executed.
    pub lookups: u64,
    /// Total embedding (pooling) operations.
    pub ops: u64,
    /// Energy breakdown (Figure 15 components).
    pub energy: EnergyBreakdown,
    /// Raw energy event counters.
    pub counters: EnergyCounters,
    /// Load-imbalance summary across this architecture's memory nodes
    /// (Figures 4 and 13 metric).
    pub imbalance: ImbalanceSummary,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Per-memory-node DRAM lookup loads.
    pub node_loads: Vec<u64>,
    /// Lookups served from PE-side caches (RecNMP) without DRAM access.
    pub cache_hits: u64,
    /// Per-op latency percentiles.
    pub op_latency: LatencySummary,
    /// Per-batch latency percentiles (completion − arrival; closed-loop
    /// runs measure completion − previous-batch floor).
    pub batch_latency: LatencySummary,
    /// Full DRAM command trace, cycle-sorted — populated only when
    /// [`EngineConfig::trace_commands`](crate::engine::EngineConfig) is
    /// set (the observability path feeding obs tracks and
    /// `recross_dram::CommandAttribution`).
    pub commands: Option<Vec<recross_dram::IssuedCommand>>,
}

impl RunReport {
    /// Throughput in lookups per microsecond.
    pub fn lookups_per_us(&self) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            self.lookups as f64 * 1_000.0 / self.ns
        }
    }

    /// Speedup of `self` over `other` in execution time.
    ///
    /// A zero-time run is infinitely fast, not infinitely slow: when
    /// `self.ns == 0` this returns `f64::INFINITY` if `other` took any
    /// time, and `1.0` when both took none (two empty runs are equally
    /// fast). `speedup_over` therefore never reports `0.0` unless `other`
    /// finished in zero time and `self` did not.
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        if self.ns == 0.0 {
            if other.ns == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            other.ns / self.ns
        }
    }
}

/// An embedding-layer accelerator model.
///
/// The trait has two faces:
///
/// * the **offline trace API** — [`run`](Self::run) and
///   [`compute_results`](Self::compute_results) consume a whole [`Trace`]
///   and rebuild all table-dependent state per call (the right shape for
///   regenerating a paper figure);
/// * the **serving API** — [`open_session`](Self::open_session) resolves
///   layout/placement state for a fixed table universe *once* and returns
///   a [`ServiceSession`] whose `service(&Batch)` prices individual
///   dispatched batches, with an exact memoized service-time cache. The
///   online simulator (`recross-serve`) holds one session per channel.
///
/// Implementations must be *functionally correct*: the reduction results
/// they produce are checked against the golden model
/// ([`recross_workload::model::reduce_trace`]) by the integration tests.
pub trait EmbeddingAccelerator {
    /// Human-readable architecture name (e.g. `"TRiM-G"`).
    fn name(&self) -> &str;

    /// Simulates the trace; returns timing/energy/load statistics.
    fn run(&mut self, trace: &Trace) -> RunReport;

    /// Computes the functional f32 results for every op of the trace, via
    /// this architecture's placement round-trip.
    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>>;

    /// Opens a prepared serving session for `tables`: all table-dependent
    /// state (layouts, caches' geometry, placements, engine configuration)
    /// is resolved here, once, and owned by the returned session. The
    /// batches later passed to [`ServiceSession::service`] index into this
    /// table universe.
    ///
    /// A session's uncached path must price a batch exactly as
    /// [`run`](EmbeddingAccelerator::run)
    /// prices the equivalent single-batch trace (the serving simulator's
    /// results are invariant under this refactor, and the session tests
    /// assert it per model).
    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let lats: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&lats);
        assert_eq!(s.p50, 51); // (99 × 0.5).round() = index 50 → value 51
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }

    #[test]
    fn speedup_and_throughput() {
        let a = RunReport {
            ns: 100.0,
            lookups: 1000,
            ..Default::default()
        };
        let b = RunReport {
            ns: 400.0,
            lookups: 1000,
            ..Default::default()
        };
        assert_eq!(a.speedup_over(&b), 4.0);
        assert_eq!(a.lookups_per_us(), 10_000.0);
        assert_eq!(RunReport::default().lookups_per_us(), 0.0);
    }

    #[test]
    fn zero_time_run_is_infinitely_fast_not_zero() {
        let timed = RunReport {
            ns: 100.0,
            ..Default::default()
        };
        let zero = RunReport::default();
        // A zero-time run beats any timed run by an unbounded factor...
        assert_eq!(zero.speedup_over(&timed), f64::INFINITY);
        // ...two zero-time runs tie...
        assert_eq!(zero.speedup_over(&zero), 1.0);
        // ...and only a timed run compared against a zero-time one is 0×.
        assert_eq!(timed.speedup_over(&zero), 0.0);
    }
}
