//! The accelerator interface and run reports.

use recross_dram::{Cycle, EnergyBreakdown, EnergyCounters};
use recross_workload::stats::ImbalanceSummary;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

/// Per-embedding-op latency percentiles (serving-tail view), in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean op latency.
    pub mean: f64,
    /// Median op latency.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Slowest op.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a list of per-op latencies (cycles). Returns the default
    /// (all zeros) for an empty input.
    pub fn from_latencies(latencies: &[Cycle]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Self {
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: pick(0.5),
            p90: pick(0.9),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl core::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mean {:.0} / p50 {} / p90 {} / p99 {} / max {} cycles",
            self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Result of running one trace through an accelerator model.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Accelerator name.
    pub name: String,
    /// End-to-end cycles until the last result reached the host.
    pub cycles: Cycle,
    /// The same in nanoseconds.
    pub ns: f64,
    /// Total embedding-vector lookups executed.
    pub lookups: u64,
    /// Total embedding (pooling) operations.
    pub ops: u64,
    /// Energy breakdown (Figure 15 components).
    pub energy: EnergyBreakdown,
    /// Raw energy event counters.
    pub counters: EnergyCounters,
    /// Load-imbalance summary across this architecture's memory nodes
    /// (Figures 4 and 13 metric).
    pub imbalance: ImbalanceSummary,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Per-memory-node DRAM lookup loads.
    pub node_loads: Vec<u64>,
    /// Lookups served from PE-side caches (RecNMP) without DRAM access.
    pub cache_hits: u64,
    /// Per-op latency percentiles.
    pub op_latency: LatencySummary,
    /// Per-batch latency percentiles (completion − arrival; closed-loop
    /// runs measure completion − previous-batch floor).
    pub batch_latency: LatencySummary,
}

impl RunReport {
    /// Throughput in lookups per microsecond.
    pub fn lookups_per_us(&self) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            self.lookups as f64 * 1_000.0 / self.ns
        }
    }

    /// Speedup of `self` over `other` in execution time.
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            other.ns / self.ns
        }
    }
}

/// An embedding-layer accelerator model.
///
/// Implementations must be *functionally correct*: the reduction results
/// they produce are checked against the golden model
/// ([`recross_workload::model::reduce_trace`]) by the integration tests.
pub trait EmbeddingAccelerator {
    /// Human-readable architecture name (e.g. `"TRiM-G"`).
    fn name(&self) -> &str;

    /// Simulates the trace; returns timing/energy/load statistics.
    fn run(&mut self, trace: &Trace) -> RunReport;

    /// Computes the functional f32 results for every op of the trace, via
    /// this architecture's placement round-trip.
    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>>;

    /// Cycles to service one dispatched batch, the online-serving entry
    /// point: the serving simulator (`recross-serve`) forms batches from a
    /// queue and charges each one this cycle-accurate cost. `tables` must
    /// describe the same table universe the accelerator was built for (the
    /// batch's `op.table` indices refer into it).
    ///
    /// The default wraps the batch in a single-batch [`Trace`] and reuses
    /// [`run`](Self::run); models with cheaper incremental paths can
    /// override it.
    fn service_time(&mut self, tables: &[EmbeddingTableSpec], batch: &Batch) -> Cycle {
        let trace = Trace {
            tables: tables.to_vec(),
            batches: vec![batch.clone()],
        };
        self.run(&trace).cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let lats: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&lats);
        assert_eq!(s.p50, 51); // (99 × 0.5).round() = index 50 → value 51
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }

    #[test]
    fn speedup_and_throughput() {
        let a = RunReport {
            ns: 100.0,
            lookups: 1000,
            ..Default::default()
        };
        let b = RunReport {
            ns: 400.0,
            lookups: 1000,
            ..Default::default()
        };
        assert_eq!(a.speedup_over(&b), 4.0);
        assert_eq!(a.lookups_per_us(), 10_000.0);
        let zero = RunReport::default();
        assert_eq!(zero.speedup_over(&a), 0.0);
        assert_eq!(zero.lookups_per_us(), 0.0);
    }
}
