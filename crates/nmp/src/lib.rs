//! # recross-nmp
//!
//! Near-memory-processing accelerator models for the ReCross reproduction
//! (Liu et al., ISCA 2023): the shared command-level execution engine plus
//! the paper's four NMP baselines and the CPU baseline.
//!
//! * [`accel`] — the [`EmbeddingAccelerator`] trait and [`RunReport`];
//! * [`session`] — the prepare-once / service-many [`ServiceSession`]
//!   serving surface with its memoized service-time cache;
//! * [`engine`] — placement plans → DRAM command streams, the 82-bit
//!   NMP-instruction channel (§4.2), PE/result-return accounting;
//! * [`layout`] — contiguous table layout (row index = memory offset);
//! * [`cpu`] — the 16-core CPU baseline with a 32 MiB LLC;
//! * [`tensordimm`] — rank-level NMP, vertical (dimension-sliced) tables;
//! * [`recnmp`] — rank-level NMP, horizontal tables + 1 MiB PE caches;
//! * [`trim`] — TRiM-G / TRiM-B with 0.05 % hot-entry replication;
//! * [`profile`] — training-phase access profiling;
//! * [`cache`] — the LRU used by RecNMP/CPU caches;
//! * [`cost`] — the Table 3 area model.
//!
//! The ReCross architecture itself lives in the `recross` crate and builds
//! on the same engine.
//!
//! # Examples
//!
//! ```
//! use recross_dram::DramConfig;
//! use recross_nmp::accel::EmbeddingAccelerator;
//! use recross_nmp::trim::Trim;
//! use recross_workload::TraceGenerator;
//!
//! let trace = TraceGenerator::criteo_scaled(64, 10_000)
//!     .batch_size(2)
//!     .pooling(8)
//!     .generate(1);
//! let mut trim_g = Trim::bank_group(DramConfig::ddr5_4800());
//! let report = trim_g.run(&trace);
//! assert!(report.cycles > 0);
//! ```

pub mod accel;
pub mod cache;
pub mod cost;
pub mod cpu;
pub mod engine;
pub mod fafnir;
pub mod layout;
pub mod multichannel;
pub mod profile;
pub mod recnmp;
pub mod session;
pub mod tensordimm;
pub mod trim;

pub use accel::{EmbeddingAccelerator, LatencySummary, RunReport};
pub use session::{MemoizedSession, ServiceSession, Serviced, SessionStats, DEFAULT_MEMO_CAPACITY};
pub use cost::{AreaModel, AreaParams, AreaReport};
pub use cpu::CpuBaseline;
pub use engine::{execute, internal_bandwidth, EngineConfig, LookupPlan, PlacedRead};
pub use fafnir::Fafnir;
pub use multichannel::{run_multichannel, ChannelPlan};
pub use profile::AccessProfile;
pub use recnmp::RecNmp;
pub use tensordimm::TensorDimm;
pub use trim::{Trim, TrimLevel};
