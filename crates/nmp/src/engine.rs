//! The shared command-level NMP execution engine.
//!
//! Every accelerator model reduces to the same skeleton: decide *where each
//! lookup's data lives and which PE reduces it* (the placement plan), then
//! drive the plan through the DRAM controller with the right bus
//! destinations, the NMP-instruction channel (§4.2), and PE/result-return
//! accounting. The engine owns that skeleton so baselines and ReCross
//! differ only in their plans.

use std::collections::HashMap;

use recross_dram::bus::InstructionBus;
use recross_dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_dram::{Cycle, DramConfig, EnergyBreakdown, PhysAddr};
use recross_workload::stats::{imbalance_ratio, ImbalanceSummary};
use recross_workload::{Reduction, Trace};

use crate::accel::RunReport;

/// One physical read a lookup requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedRead {
    /// DRAM address of the data's first byte.
    pub addr: PhysAddr,
    /// Bursts to read.
    pub bursts: u32,
    /// The PE level the data travels to.
    pub dest: BusScope,
    /// Whether the bank supports subarray-parallel access.
    pub salp: bool,
    /// Closed-page access (ACT-RD-PRE per vector, paper Figure 6) — the
    /// baseline NMPs' deterministic access pattern.
    pub auto_precharge: bool,
    /// Write instead of read (embedding updates, §4.5).
    pub write: bool,
    /// Memory-node id for load accounting (architecture-defined).
    pub node: usize,
}

/// Placement plan of one lookup.
#[derive(Debug, Clone, Default)]
pub struct LookupPlan {
    /// Index of the owning embedding op (trace order).
    pub op: usize,
    /// Physical reads (empty if served from a PE-side cache).
    pub reads: Vec<PlacedRead>,
    /// Served from a PE cache (no DRAM access, PE still reduces).
    pub cached: bool,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The DRAM system.
    pub dram: DramConfig,
    /// Controller scheduling policy.
    pub policy: SchedulePolicy,
    /// Architecture name for the report.
    pub name: String,
    /// Number of memory nodes (PEs) for imbalance accounting.
    pub num_nodes: usize,
    /// NMP-instruction size in bits (82, §4.2); `None` disables the
    /// instruction channel (CPU baseline: plain DRAM commands).
    pub inst_bits: Option<u32>,
    /// Use the two-stage (C/A + DQ) instruction transfer (§4.2).
    pub two_stage_inst: bool,
    /// Whether reduction happens host-side (CPU baseline): result vectors
    /// do not cross the channel again, but all gathered data already did.
    pub reduce_at_host: bool,
    /// Per-bank reorder window (PE-side queue depth).
    pub bank_window: usize,
    /// Host-controller global request-queue bound (Table 2: 64 entries for
    /// the CPU baseline); `None` for NMP designs whose requests queue at
    /// the PEs.
    pub global_window: Option<usize>,
    /// Embedding ops in flight at once, bounded by the PEs' partial-sum
    /// buffer capacity (each in-flight op pins one psum register in every
    /// PE it touches). `None` = unbounded (CPU reduces host-side).
    pub max_inflight_ops: Option<usize>,
    /// The reduction operation PEs perform (§4.1: summation, weighted
    /// summation, average, concatenation, quantized). Affects PE arithmetic
    /// energy and the result-return volume.
    pub reduction: Reduction,
    /// Open-loop serving: arrival cycle of each batch (one entry per trace
    /// batch). A batch may not start before its arrival; per-batch latency
    /// = completion − arrival. `None` = closed-loop (back-to-back batches).
    pub batch_arrivals: Option<Vec<Cycle>>,
    /// Record the full DRAM command trace into
    /// [`RunReport::commands`](crate::accel::RunReport::commands) (the
    /// observability path). Off by default: recording allocates per
    /// command, so keep it disabled on untraced hot paths.
    pub trace_commands: bool,
}

impl EngineConfig {
    /// A standard NMP engine configuration.
    pub fn nmp(name: &str, dram: DramConfig, num_nodes: usize) -> Self {
        Self {
            dram,
            policy: SchedulePolicy::FrFcfs,
            name: name.to_owned(),
            num_nodes,
            inst_bits: Some(82),
            two_stage_inst: true,
            reduce_at_host: false,
            bank_window: 16,
            global_window: None,
            max_inflight_ops: Some(64),
            reduction: Reduction::WeightedSum,
            batch_arrivals: None,
            trace_commands: false,
        }
    }
}

/// Executes `plans` (one per lookup, in trace order) and assembles the
/// report.
///
/// # Panics
///
/// Panics if `plans` length mismatches the trace's lookups, or the plan
/// contains invalid addresses.
pub fn execute(cfg: &EngineConfig, trace: &Trace, plans: &[LookupPlan]) -> RunReport {
    let total_lookups: usize = trace.lookups();
    assert_eq!(plans.len(), total_lookups, "one plan per lookup");

    let mut ctl = Controller::new(cfg.dram.clone(), cfg.policy).with_bank_window(cfg.bank_window);
    if let Some(w) = cfg.global_window {
        ctl = ctl.with_global_window(w);
    }
    if cfg.trace_commands {
        ctl.record_trace();
    }
    let mut inst_bus = cfg.inst_bits.map(|bits| {
        let pins = if cfg.two_stage_inst {
            cfg.dram.two_stage_bits_per_cycle
        } else {
            cfg.dram.ca_bits_per_cycle
        };
        InstructionBus::new(bits, pins)
    });

    // Per-op metadata in trace order.
    let num_ops = trace.ops();
    let mut op_result_bursts = Vec::with_capacity(num_ops);
    let mut op_result_bytes = Vec::with_capacity(num_ops);
    for op in trace.iter_ops() {
        let bytes = cfg
            .reduction
            .result_bytes(trace.tables[op.table].dim, op.indices.len());
        op_result_bursts.push(cfg.dram.topology.bursts_for(bytes) as u32);
        op_result_bytes.push(bytes);
    }

    let mut node_loads = vec![0u64; cfg.num_nodes.max(1)];
    let mut cache_hits = 0u64;
    let mut op_done = vec![0 as Cycle; num_ops];
    let mut op_start = vec![Cycle::MAX; num_ops];
    let mut finish: Cycle = 0;
    let mut io_bits = 0u64;

    // Psum-bounded execution (§4.2): PEs hold per-op partial sums until the
    // op's result is read out (lastTag). With double-buffered psum storage,
    // op group k may enter the PEs once group k-2's results have drained.
    // The CPU baseline reduces host-side and needs no such bound.
    if let Some(arrivals) = &cfg.batch_arrivals {
        assert_eq!(arrivals.len(), trace.batches.len(), "one arrival per batch");
    }
    let mut batch_latencies: Vec<Cycle> = Vec::with_capacity(trace.batches.len());
    let mut barrier: Cycle = 0; // ready floor for the current group
    let mut group_done_history: [Cycle; 2] = [0, 0];
    let mut group_counter = 0usize;
    let mut plan_idx = 0usize;
    let mut op_base = 0usize;
    for (batch_idx, batch) in trace.batches.iter().enumerate() {
        let arrival = cfg
            .batch_arrivals
            .as_ref()
            .map(|a| a[batch_idx])
            .unwrap_or(0);
        barrier = barrier.max(arrival);
        let mut batch_end: Cycle = arrival;
        // Ops issue in groups bounded by psum capacity.
        let group = cfg.max_inflight_ops.unwrap_or(batch.ops.len()).max(1);
        let mut ops_iter = batch.ops.iter().enumerate().peekable();
        while ops_iter.peek().is_some() {
            let mut group_ops: Vec<usize> = Vec::with_capacity(group);
            for (local_idx, op) in ops_iter.by_ref().take(group) {
                let op_idx = op_base + local_idx;
                group_ops.push(op_idx);
                for _ in 0..op.indices.len() {
                    let plan = &plans[plan_idx];
                    debug_assert_eq!(plan.op, op_idx, "plan/op order mismatch");
                    let ready = match &mut inst_bus {
                        Some(bus) => bus.deliver(barrier),
                        None => 0,
                    };
                    if plan.cached {
                        cache_hits += 1;
                    }
                    for r in &plan.reads {
                        assert!(r.node < cfg.num_nodes, "node id out of range");
                        node_loads[r.node] += 1;
                        ctl.enqueue(ReadRequest {
                            id: plan_idx as u64,
                            addr: r.addr,
                            bursts: r.bursts,
                            ready_at: ready.max(barrier),
                            dest: r.dest,
                            salp: r.salp,
                            auto_precharge: r.auto_precharge,
                            write: r.write,
                        });
                    }
                    // Cached lookups complete at instruction arrival.
                    op_done[plan.op] = op_done[plan.op].max(ready).max(barrier);
                    op_start[plan.op] = op_start[plan.op].min(ready.max(barrier));
                    plan_idx += 1;
                }
            }
            let completions = ctl.run();
            for c in &completions {
                let plan = &plans[c.id as usize];
                op_done[plan.op] = op_done[plan.op].max(c.done_at);
            }
            finish = finish.max(ctl.stats().finish);
            // Result return for this group's ops frees the psums.
            let group_end = if cfg.reduce_at_host {
                group_ops
                    .iter()
                    .map(|&i| op_done[i])
                    .max()
                    .unwrap_or(barrier)
            } else {
                let mut order = group_ops.clone();
                order.sort_by_key(|&i| op_done[i]);
                let mut end = barrier;
                for &op_idx in &order {
                    let done = ctl.reserve_channel(op_done[op_idx], op_result_bursts[op_idx]);
                    io_bits += op_result_bytes[op_idx] * 8;
                    end = end.max(done);
                }
                end
            };
            finish = finish.max(group_end);
            batch_end = batch_end.max(group_end);
            // Double-buffered psums: the next group's floor is the
            // completion of the group *two back*.
            group_done_history[group_counter % 2] = group_end;
            group_counter += 1;
            barrier = group_done_history[group_counter % 2];
        }
        batch_latencies.push(batch_end.saturating_sub(arrival));
        op_base += batch.ops.len();
    }
    ctl.energy_mut().io_bits += io_bits;

    // PE arithmetic per the configured reduction (§4.1).
    {
        let e = ctl.energy_mut();
        for op in trace.iter_ops() {
            let dim = trace.tables[op.table].dim;
            let vectors = op.indices.len() as u64;
            e.fp_muls += vectors * cfg.reduction.muls_per_vector(dim);
            e.fp_adds += vectors * cfg.reduction.adds_per_vector(dim);
        }
    }

    // Imbalance: per-op per-node DRAM-read loads.
    let mut per_op_loads: Vec<HashMap<usize, u64>> = vec![HashMap::new(); num_ops];
    for plan in plans.iter() {
        for r in &plan.reads {
            *per_op_loads[plan.op].entry(r.node).or_insert(0) += 1;
        }
    }
    let ratios: Vec<f64> = per_op_loads
        .iter()
        .map(|loads| {
            let mut v = vec![0u64; cfg.num_nodes.max(1)];
            for (&n, &c) in loads {
                v[n] = c;
            }
            imbalance_ratio(&v)
        })
        .collect();

    let op_latencies: Vec<Cycle> = (0..num_ops)
        .map(|i| {
            let start = if op_start[i] == Cycle::MAX {
                0
            } else {
                op_start[i]
            };
            op_done[i].saturating_sub(start)
        })
        .collect();

    let stats = ctl.stats();
    let counters = stats.energy;
    RunReport {
        name: cfg.name.clone(),
        cycles: finish,
        ns: cfg.dram.cycles_to_ns(finish),
        lookups: plans.len() as u64,
        ops: num_ops as u64,
        energy: EnergyBreakdown::from_counters(&counters, finish, &cfg.dram),
        counters,
        imbalance: ImbalanceSummary::from_ratios(&ratios),
        row_hit_rate: stats.row_hit_rate(),
        node_loads,
        cache_hits,
        op_latency: crate::accel::LatencySummary::from_latencies(&op_latencies),
        batch_latency: crate::accel::LatencySummary::from_latencies(&batch_latencies),
        commands: ctl.trace(),
    }
}

/// Peak aggregate internal bandwidth (bytes/cycle) available to PEs at a
/// given level — the Figure 5 "internal bandwidth" series.
pub fn internal_bandwidth(dram: &DramConfig, level: BusScope) -> f64 {
    let t = &dram.topology;
    let burst = f64::from(t.burst_bytes);
    let tim = &dram.timing;
    match level {
        BusScope::Channel => burst / tim.t_bl as f64,
        BusScope::Rank => f64::from(t.ranks) * burst / tim.t_ccd_s as f64,
        BusScope::BankGroup => f64::from(t.ranks * t.bank_groups) * burst / tim.t_ccd_l as f64,
        BusScope::Bank => f64::from(t.banks_per_channel()) * burst / tim.t_ccd_l as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TableLayout;
    use recross_workload::TraceGenerator;

    fn small_trace() -> Trace {
        TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(2)
            .pooling(4)
            .generate(7)
    }

    fn plans_for(trace: &Trace, dest: BusScope, num_nodes: usize) -> Vec<LookupPlan> {
        let topo = DramConfig::ddr5_4800().topology;
        let layout = TableLayout::pack(topo, &trace.tables, 0);
        let mut plans = Vec::new();
        for (op_idx, op) in trace.iter_ops().enumerate() {
            for &row in &op.indices {
                let loc = layout.locate(op.table, row);
                let node = loc.addr.flat_bank(&topo) as usize % num_nodes;
                plans.push(LookupPlan {
                    op: op_idx,
                    reads: vec![PlacedRead {
                        addr: loc.addr,
                        bursts: loc.bursts,
                        dest,
                        salp: false,
                        auto_precharge: false,
                        write: false,
                        node,
                    }],
                    cached: false,
                });
            }
        }
        plans
    }

    #[test]
    fn executes_and_reports() {
        let trace = small_trace();
        let cfg = EngineConfig::nmp("test", DramConfig::ddr5_4800(), 2);
        let plans = plans_for(&trace, BusScope::Rank, 2);
        let report = execute(&cfg, &trace, &plans);
        assert_eq!(report.lookups as usize, plans.len());
        assert_eq!(report.ops as usize, trace.ops());
        assert!(report.cycles > 0);
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.counters.fp_muls > 0);
        assert_eq!(report.node_loads.iter().sum::<u64>(), plans.len() as u64);
    }

    #[test]
    fn finer_level_is_faster() {
        let trace = TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(20)
            .generate(1);
        let d = DramConfig::ddr5_4800();
        let run = |dest, nodes| {
            let cfg = EngineConfig::nmp("x", d.clone(), nodes);
            execute(&cfg, &trace, &plans_for(&trace, dest, nodes))
        };
        let host = run(BusScope::Channel, 1);
        let rank = run(BusScope::Rank, 2);
        let bg = run(BusScope::BankGroup, 16);
        assert!(rank.cycles < host.cycles, "rank NMP beats host transfer");
        assert!(bg.cycles < rank.cycles, "bank-group NMP beats rank NMP");
    }

    #[test]
    fn instruction_channel_throttles_short_vectors() {
        let trace = TraceGenerator::criteo_scaled(16, 1000)
            .batch_size(4)
            .pooling(20)
            .generate(1);
        let d = DramConfig::ddr5_4800();
        let mut two_stage = EngineConfig::nmp("x", d.clone(), 64);
        two_stage.two_stage_inst = true;
        let mut ca_only = two_stage.clone();
        ca_only.two_stage_inst = false;
        let plans = plans_for(&trace, BusScope::Bank, 64);
        let fast = execute(&two_stage, &trace, &plans);
        let slow = execute(&ca_only, &trace, &plans);
        assert!(
            slow.cycles > fast.cycles,
            "C/A-only instruction delivery must throttle: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn cached_lookups_skip_dram() {
        let trace = small_trace();
        let cfg = EngineConfig::nmp("cached", DramConfig::ddr5_4800(), 2);
        let plans: Vec<LookupPlan> = trace
            .iter_ops()
            .enumerate()
            .flat_map(|(op_idx, op)| {
                op.indices.iter().map(move |_| LookupPlan {
                    op: op_idx,
                    reads: vec![],
                    cached: true,
                })
            })
            .collect();
        let report = execute(&cfg, &trace, &plans);
        assert_eq!(report.cache_hits, report.lookups);
        assert_eq!(report.counters.rd_wr_bits, 0);
        assert_eq!(report.counters.activations, 0);
        // Results still return over the channel.
        assert!(report.counters.io_bits > 0);
    }

    #[test]
    fn trace_commands_captures_the_schedule_without_changing_it() {
        let trace = small_trace();
        let mut cfg = EngineConfig::nmp("test", DramConfig::ddr5_4800(), 2);
        let plans = plans_for(&trace, BusScope::Rank, 2);
        let plain = execute(&cfg, &trace, &plans);
        cfg.trace_commands = true;
        let traced = execute(&cfg, &trace, &plans);
        assert_eq!(traced.cycles, plain.cycles, "tracing must not perturb timing");
        assert!(plain.commands.is_none(), "untraced runs carry no commands");
        let commands = traced.commands.expect("traced run records commands");
        assert!(!commands.is_empty());
        assert!(commands.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn internal_bandwidth_scales_with_level() {
        let d = DramConfig::ddr5_4800();
        let ch = internal_bandwidth(&d, BusScope::Channel);
        let rank = internal_bandwidth(&d, BusScope::Rank);
        let bg = internal_bandwidth(&d, BusScope::BankGroup);
        let bank = internal_bandwidth(&d, BusScope::Bank);
        assert!(rank > ch);
        assert!(bg > rank);
        assert!(bank > bg);
        assert!((bank / bg - 4.0).abs() < 1e-9, "4 banks per group");
    }

    #[test]
    fn batch_arrivals_gate_start_and_measure_latency() {
        let trace = TraceGenerator::criteo_scaled(16, 10_000)
            .batch_size(1)
            .pooling(4)
            .batches(3)
            .generate(2);
        let plans = {
            let topo = DramConfig::ddr5_4800().topology;
            let layout = crate::layout::TableLayout::pack(topo, &trace.tables, 0);
            let mut out = Vec::new();
            for (op_idx, op) in trace.iter_ops().enumerate() {
                for &row in &op.indices {
                    let loc = layout.locate(op.table, row);
                    out.push(LookupPlan {
                        op: op_idx,
                        reads: vec![PlacedRead {
                            addr: loc.addr,
                            bursts: loc.bursts,
                            dest: BusScope::Rank,
                            salp: false,
                            auto_precharge: false,
                            write: false,
                            node: loc.addr.rank as usize,
                        }],
                        cached: false,
                    });
                }
            }
            out
        };
        let mut closed = EngineConfig::nmp("closed", DramConfig::ddr5_4800(), 2);
        let mut open = closed.clone();
        open.batch_arrivals = Some(vec![0, 1_000_000, 2_000_000]);
        let rc = execute(&closed, &trace, &plans);
        let ro = execute(&open, &trace, &plans);
        // Widely spaced arrivals: each batch runs unloaded, so per-batch
        // latency is small but the total run stretches to the last arrival.
        assert!(ro.cycles > 2_000_000);
        assert!(ro.batch_latency.max < rc.cycles);
        assert!(ro.batch_latency.p50 > 0);
        let _ = closed.batch_arrivals.take();
    }

    #[test]
    fn reduction_kind_changes_energy_and_io() {
        let trace = small_trace();
        let plans = plans_for(&trace, BusScope::Rank, 2);
        let mut weighted = EngineConfig::nmp("w", DramConfig::ddr5_4800(), 2);
        weighted.reduction = Reduction::WeightedSum;
        let mut concat = weighted.clone();
        concat.reduction = Reduction::Concat;
        let rw = execute(&weighted, &trace, &plans);
        let rc = execute(&concat, &trace, &plans);
        // Concat streams every vector back: far more result I/O, no PE math.
        assert!(rc.counters.io_bits > rw.counters.io_bits);
        assert_eq!(rc.counters.fp_adds, 0);
        assert!(rw.counters.fp_muls > 0);
    }

    #[test]
    #[should_panic(expected = "one plan per lookup")]
    fn plan_count_validated() {
        let trace = small_trace();
        let cfg = EngineConfig::nmp("x", DramConfig::ddr5_4800(), 1);
        execute(&cfg, &trace, &[]);
    }
}
