//! TRiM (Park et al., MICRO 2021): in-DRAM NMP at bank-group (TRiM-G) or
//! bank (TRiM-B) level, with hot-entry replication.
//!
//! PEs sit inside the DRAM chips next to each bank group / bank; tables
//! stay contiguously laid out (row index = memory offset, §3.1), so hot
//! rows scatter across nodes but each hot row pins its node. TRiM
//! replicates the hottest 0.05 % of entries (paper §5.1) across nodes and
//! round-robins accesses among the replicas.

use recross_dram::controller::BusScope;
use recross_dram::DramConfig;
use recross_workload::model::reduce_trace;
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};
use crate::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use crate::layout::{slot_to_addr, TableLayout};
use crate::profile::AccessProfile;
use crate::session::{MemoizedSession, ServiceSession};
use std::collections::HashMap;

/// Which TRiM variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrimLevel {
    /// PEs per bank group (TRiM-G).
    BankGroup,
    /// PEs per bank (TRiM-B).
    Bank,
}

/// TRiM accelerator model.
#[derive(Debug, Clone)]
pub struct Trim {
    dram: DramConfig,
    level: TrimLevel,
    /// Fraction of (touched) entries replicated (paper: 0.05 %).
    replication: f64,
    /// Replicas per hot entry (one per node, capped here).
    replicas: u32,
    profile: Option<AccessProfile>,
}

impl Trim {
    /// Creates a TRiM-G model with the paper's 0.05 % replication.
    pub fn bank_group(dram: DramConfig) -> Self {
        Self::new(dram, TrimLevel::BankGroup)
    }

    /// Creates a TRiM-B model with the paper's 0.05 % replication.
    pub fn bank(dram: DramConfig) -> Self {
        Self::new(dram, TrimLevel::Bank)
    }

    fn new(dram: DramConfig, level: TrimLevel) -> Self {
        Self {
            dram,
            level,
            replication: 0.0005,
            replicas: 8,
            profile: None,
        }
    }

    /// Supplies the training-phase profile used to pick hot entries.
    /// Without a profile, no replication happens.
    pub fn with_profile(mut self, profile: AccessProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Overrides the replicated fraction (0 disables replication).
    pub fn with_replication(mut self, fraction: f64, replicas: u32) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        assert!(replicas >= 1);
        self.replication = fraction;
        self.replicas = replicas;
        self
    }

    /// Variant name.
    fn level_name(&self) -> &'static str {
        match self.level {
            TrimLevel::BankGroup => "TRiM-G",
            TrimLevel::Bank => "TRiM-B",
        }
    }

    fn num_nodes(&self) -> usize {
        let t = &self.dram.topology;
        match self.level {
            TrimLevel::BankGroup => (t.ranks * t.bank_groups) as usize,
            TrimLevel::Bank => t.banks_per_channel() as usize,
        }
    }

    fn dest(&self) -> BusScope {
        match self.level {
            TrimLevel::BankGroup => BusScope::BankGroup,
            TrimLevel::Bank => BusScope::Bank,
        }
    }

    fn node_of(&self, addr: &recross_dram::PhysAddr) -> usize {
        let t = &self.dram.topology;
        match self.level {
            TrimLevel::BankGroup => addr.flat_bank_group(t) as usize,
            TrimLevel::Bank => addr.flat_bank(t) as usize,
        }
    }

    /// Hot-entry replica directory: (table, row) -> replica slot base.
    /// Replicas live in the slots right after the packed tables, one
    /// DRAM-row-slot stride per replica so copies land on distinct banks.
    fn hot_directory(&self) -> HashMap<(usize, u64), u64> {
        let mut hot: HashMap<(usize, u64), u64> = HashMap::new();
        if let Some(p) = &self.profile {
            if self.replication > 0.0 {
                let k = ((p.distinct_rows() as f64) * self.replication).ceil() as usize;
                for (i, (t, r, _)) in p.hottest(k).into_iter().enumerate() {
                    hot.insert((t, r), i as u64);
                }
            }
        }
        hot
    }

    /// Builds the per-lookup placement plans (public for the
    /// benchmark harness and custom engine configurations).
    pub fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        let layout = TableLayout::pack(self.dram.topology, &trace.tables, 0);
        self.plans_prepared(&layout, &self.hot_directory(), trace)
    }

    /// [`plans`](Self::plans) with the layout and replica directory
    /// already resolved — the per-batch half, shared with
    /// [`open_session`]'s prepared path. The replica round-robin counter
    /// starts at zero on every call (per-call semantics keep the serving
    /// memo cache exact).
    fn plans_prepared(
        &self,
        layout: &TableLayout,
        hot: &HashMap<(usize, u64), u64>,
        trace: &Trace,
    ) -> Vec<LookupPlan> {
        let topo = self.dram.topology;
        let replica_base = layout.total_slots();
        let replicas = u64::from(self.replicas);
        let mut rr_counter = 0u64;
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            let bursts = topo.bursts_for(trace.tables[op.table].vector_bytes()) as u32;
            for &row in &op.indices {
                let addr = if let Some(&hot_idx) = hot.get(&(op.table, row)) {
                    // Round-robin over the entry's replicas.
                    rr_counter += 1;
                    let slot = replica_base + hot_idx * replicas + (rr_counter % replicas);
                    slot_to_addr(&topo, slot, 0)
                } else {
                    layout.locate(op.table, row).addr
                };
                plans.push(LookupPlan {
                    op: op_idx,
                    reads: vec![PlacedRead {
                        addr,
                        bursts,
                        dest: self.dest(),
                        salp: false,
                        auto_precharge: true,
                        write: false,
                        node: self.node_of(&addr),
                    }],
                    cached: false,
                });
            }
        }
        plans
    }
}

impl EmbeddingAccelerator for Trim {
    fn name(&self) -> &str {
        self.level_name()
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let cfg = EngineConfig::nmp(self.level_name(), self.dram.clone(), self.num_nodes());
        execute(&cfg, trace, &plans)
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        let layout = TableLayout::pack(self.dram.topology, tables, 0);
        let hot = self.hot_directory();
        let mut cfg = EngineConfig::nmp(self.level_name(), self.dram.clone(), self.num_nodes());
        let model = self.clone();
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            self.level_name(),
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                cfg.trace_commands = traced;
                let plans = model.plans_prepared(&layout, &hot, &trace);
                execute(&cfg, &trace, &plans).into()
            }),
        ))
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // PEs reduce whole vectors in trace order (replicas hold identical
        // data), numerically identical to the golden order.
        reduce_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(4)
            .pooling(20)
            .generate(4)
    }

    #[test]
    fn bank_level_has_more_nodes() {
        let g = Trim::bank_group(DramConfig::ddr5_4800());
        let b = Trim::bank(DramConfig::ddr5_4800());
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(b.num_nodes(), 64);
    }

    #[test]
    fn runs_both_levels() {
        let t = trace();
        let rg = Trim::bank_group(DramConfig::ddr5_4800()).run(&t);
        let rb = Trim::bank(DramConfig::ddr5_4800()).run(&t);
        assert_eq!(rg.lookups, t.lookups() as u64);
        assert_eq!(rb.lookups, t.lookups() as u64);
        // The paper's §3.2: bank-level NMP yields only modest gains over
        // bank-group level because of serial same-bank operation.
        assert!(rb.cycles <= rg.cycles);
    }

    #[test]
    fn replication_spreads_hot_load() {
        let t = trace();
        let profile = AccessProfile::from_trace(&t);
        let plain = Trim::bank(DramConfig::ddr5_4800())
            .with_replication(0.0, 1)
            .run(&t);
        let replicated = Trim::bank(DramConfig::ddr5_4800())
            .with_profile(profile)
            .with_replication(0.01, 8)
            .run(&t);
        assert!(
            replicated.imbalance.mean < plain.imbalance.mean,
            "replication must reduce imbalance: {} vs {}",
            replicated.imbalance.mean,
            plain.imbalance.mean
        );
    }

    #[test]
    fn results_match_golden() {
        let t = trace();
        let got = Trim::bank_group(DramConfig::ddr5_4800()).compute_results(&t);
        let want = recross_workload::model::reduce_trace(&t);
        recross_workload::model::assert_results_close(&got, &want, 1e-6);
    }
}
