//! The CPU baseline: conventional DRAM, all gathered vectors cross the
//! channel to the host, reduction runs on the cores.
//!
//! The embedding layer is memory-bandwidth-bound on CPUs (paper §2.1), so
//! the model is the DRAM command stream of every gather through the
//! channel-scoped controller, with the 32 MiB last-level cache (Table 2)
//! filtering hot vectors.

use recross_dram::controller::BusScope;
use recross_dram::DramConfig;
use recross_workload::model::{embedding_value, reduce_trace};
use recross_workload::{Batch, EmbeddingTableSpec, Trace};

use crate::accel::{EmbeddingAccelerator, RunReport};
use crate::cache::LruCache;
use crate::engine::{execute, EngineConfig, LookupPlan, PlacedRead};
use crate::layout::TableLayout;
use crate::session::{MemoizedSession, ServiceSession};

/// CPU baseline model (16-core Broadwell-class host of the paper's Table 2).
///
/// The LLC is *disabled by default for embedding data*: production-scale
/// embedding tables reach hundreds of GB to TBs (paper §2.1), so a 32 MiB
/// LLC covers a negligible fraction of the working set; our synthetic
/// Criteo-scale trace would otherwise let the LLC absorb an unrealistic
/// share of the hot set. Enable it with [`CpuBaseline::with_llc_bytes`] for
/// sensitivity studies.
#[derive(Debug, Clone)]
pub struct CpuBaseline {
    dram: DramConfig,
    llc_bytes: u64,
}

impl CpuBaseline {
    /// Creates the baseline (no LLC filtering of embedding data; see the
    /// type docs).
    pub fn new(dram: DramConfig) -> Self {
        Self { dram, llc_bytes: 0 }
    }

    /// Overrides the LLC size (bytes); 0 disables caching.
    pub fn with_llc_bytes(mut self, bytes: u64) -> Self {
        self.llc_bytes = bytes;
        self
    }

    /// LLC capacity in entries for a table universe, sized by the (common)
    /// vector footprint; cache lines would be finer-grained but vectors
    /// are gathered whole.
    fn llc_entries(&self, tables: &[EmbeddingTableSpec]) -> usize {
        let avg_vec = tables.iter().map(|t| t.vector_bytes()).max().unwrap_or(256);
        (self.llc_bytes / avg_vec.max(1)) as usize
    }

    /// The engine configuration shared by the offline and serving paths.
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::nmp("CPU", self.dram.clone(), 1);
        cfg.inst_bits = None; // plain DRAM commands, no NMP instruction channel
        cfg.reduce_at_host = true;
        // The host controller holds at most 64 outstanding requests
        // (Table 2), unlike NMP designs whose requests queue at the PEs;
        // host-side reduction needs no psum-capacity op bound.
        cfg.global_window = Some(64);
        cfg.max_inflight_ops = None;
        cfg
    }

    /// Builds the per-lookup placement plans (public for the
    /// benchmark harness and custom engine configurations).
    pub fn plans(&self, trace: &Trace) -> Vec<LookupPlan> {
        let layout = TableLayout::pack(self.dram.topology, &trace.tables, 0);
        Self::plans_prepared(&layout, self.llc_entries(&trace.tables), trace)
    }

    /// [`plans`](Self::plans) with the table layout already resolved —
    /// the per-batch half, shared with [`open_session`]'s prepared path.
    /// The LLC starts cold on every call (per-call semantics keep the
    /// serving memo cache exact).
    fn plans_prepared(layout: &TableLayout, entries: usize, trace: &Trace) -> Vec<LookupPlan> {
        let mut llc = (entries > 0).then(|| LruCache::new(entries));
        let mut plans = Vec::with_capacity(trace.lookups());
        for (op_idx, op) in trace.iter_ops().enumerate() {
            for &row in &op.indices {
                let hit = llc
                    .as_mut()
                    .map(|c| c.touch((op.table, row)))
                    .unwrap_or(false);
                if hit {
                    plans.push(LookupPlan {
                        op: op_idx,
                        reads: vec![],
                        cached: true,
                    });
                } else {
                    let loc = layout.locate(op.table, row);
                    plans.push(LookupPlan {
                        op: op_idx,
                        reads: vec![PlacedRead {
                            addr: loc.addr,
                            bursts: loc.bursts,
                            dest: BusScope::Channel,
                            salp: false,
                            auto_precharge: false,
                            write: false,
                            node: 0,
                        }],
                        cached: false,
                    });
                }
            }
        }
        plans
    }
}

impl EmbeddingAccelerator for CpuBaseline {
    fn name(&self) -> &str {
        "CPU"
    }

    fn run(&mut self, trace: &Trace) -> RunReport {
        let plans = self.plans(trace);
        let cfg = self.engine_config();
        execute(&cfg, trace, &plans)
    }

    fn compute_results(&mut self, trace: &Trace) -> Vec<Vec<f32>> {
        // Host-side reduction in trace order: the golden path itself.
        let _ = embedding_value(0, 0, 0);
        reduce_trace(trace)
    }

    fn open_session(&self, tables: &[EmbeddingTableSpec]) -> Box<dyn ServiceSession> {
        let layout = TableLayout::pack(self.dram.topology, tables, 0);
        let entries = self.llc_entries(tables);
        let mut cfg = self.engine_config();
        let mut trace = Trace {
            tables: tables.to_vec(),
            batches: Vec::new(),
        };
        Box::new(MemoizedSession::new(
            "CPU",
            Box::new(move |batch: &Batch, traced: bool| {
                trace.batches.clear();
                trace.batches.push(batch.clone());
                cfg.trace_commands = traced;
                let plans = Self::plans_prepared(&layout, entries, &trace);
                execute(&cfg, &trace, &plans).into()
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_workload::TraceGenerator;

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(16, 1000)
            .batch_size(2)
            .pooling(8)
            .generate(5)
    }

    #[test]
    fn runs_and_moves_all_data() {
        let t = trace();
        let mut cpu = CpuBaseline::new(DramConfig::ddr5_4800()).with_llc_bytes(0);
        let r = cpu.run(&t);
        assert_eq!(r.lookups as usize, t.lookups());
        // Without LLC, every gathered byte crosses the channel.
        assert_eq!(r.counters.io_bits, t.gathered_bytes() * 8);
    }

    #[test]
    fn llc_reduces_dram_traffic() {
        let t = trace();
        let no_llc = CpuBaseline::new(DramConfig::ddr5_4800()).run(&t);
        let with_llc = CpuBaseline::new(DramConfig::ddr5_4800())
            .with_llc_bytes(32 * 1024 * 1024)
            .run(&t);
        assert!(with_llc.counters.io_bits < no_llc.counters.io_bits);
        assert!(with_llc.cycles <= no_llc.cycles);
        assert!(with_llc.cache_hits > 0);
    }

    #[test]
    fn results_match_golden() {
        let t = trace();
        let mut cpu = CpuBaseline::new(DramConfig::ddr5_4800());
        let got = cpu.compute_results(&t);
        let want = recross_workload::model::reduce_trace(&t);
        recross_workload::model::assert_results_close(&got, &want, 1e-5);
    }
}
