//! The prepare-once / service-many serving surface.
//!
//! The offline API ([`EmbeddingAccelerator::run`]) consumes a whole
//! [`Trace`](recross_workload::Trace); it rebuilds the architecture's
//! table layout, engine
//! configuration, and (for ReCross) placement state on every call. That is
//! the right shape for regenerating a paper figure and the wrong shape for
//! the serving simulator, which charges a cycle-accurate cost to *every
//! dispatched batch* — thousands of calls against one fixed table universe.
//!
//! [`EmbeddingAccelerator::open_session`] resolves all table-dependent
//! state once and returns a [`ServiceSession`]: a lightweight object whose
//! [`service`](ServiceSession::service) prices one batch. Sessions also
//! memoize service times keyed on the batch's canonical op signature, so a
//! batch composition the session has already priced (common across the
//! probes of an SLO search, which replays the same request set at different
//! rates) costs a hash lookup instead of a DRAM-level simulation. Hit/miss
//! counters are exposed through [`ServiceSession::stats`] and surfaced by
//! the serving simulator's `ServeReport`.
//!
//! The cache is exact, not approximate: the key encodes the full op
//! sequence (tables, row ids, weight bits, order), and every model's
//! uncached path is deterministic and stateless across calls, so a hit
//! returns bit-identical cycles to a re-simulation. Disabling the cache
//! ([`ServiceSession::set_cache_enabled`]) therefore changes wall-clock
//! time, never reported cycles — CI byte-compares the two.
//!
//! Long-lived sessions (a server that stays up across many traffic mixes)
//! would grow an unbounded memo, so the cache is **bounded**: at most
//! [`DEFAULT_MEMO_CAPACITY`] distinct batch signatures are retained, with
//! least-recently-used eviction beyond that
//! ([`ServiceSession::set_cache_capacity`] reconfigures the bound).
//! Eviction only ever discards memoized *timings* — an evicted signature is
//! simply re-simulated on its next appearance — so the capacity changes
//! hit/miss/eviction accounting, never reported cycles.

use std::collections::HashMap;

use recross_dram::{Cycle, IssuedCommand};
use recross_workload::Batch;

use crate::cache::LruCache;

/// Default bound on distinct batch signatures a session memoizes.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 16;

/// Hit/miss/eviction counters of a session's memoized service-time cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batches priced from the memo cache.
    pub hits: u64,
    /// Batches priced by full simulation (and then memoized).
    pub misses: u64,
    /// Memoized entries discarded by LRU eviction (capacity pressure).
    pub evictions: u64,
}

impl SessionStats {
    /// Hits as a fraction of all serviced batches (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference (`self` minus an earlier snapshot).
    pub fn since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// Result of pricing one batch through a session's uncached path.
///
/// `commands` is populated only when the caller asked for a traced run
/// (the observability path); the untraced hot path always carries `None`
/// so pricing allocates nothing trace-related.
#[derive(Debug, Clone, Default)]
pub struct Serviced {
    /// Cycles to service the batch.
    pub cycles: Cycle,
    /// Full DRAM command trace of the batch, when traced.
    pub commands: Option<Vec<IssuedCommand>>,
}

impl From<crate::accel::RunReport> for Serviced {
    fn from(report: crate::accel::RunReport) -> Self {
        Serviced {
            cycles: report.cycles,
            commands: report.commands,
        }
    }
}

/// A prepared serving session for one accelerator and one table universe.
///
/// Obtained from [`EmbeddingAccelerator::open_session`]. The session owns
/// every table-dependent artifact (layouts, placements, engine
/// configuration), so [`service`](Self::service) does only per-batch work:
/// plan the batch's lookups and drive them through the DRAM engine — or
/// return the memoized cycles for a batch signature it has seen before.
pub trait ServiceSession {
    /// Architecture name (matches the owning accelerator's
    /// [`name`](EmbeddingAccelerator::name)).
    fn name(&self) -> &str;

    /// Cycles to service one dispatched batch. The batch's `op.table`
    /// indices refer into the table universe the session was opened for.
    fn service(&mut self, batch: &Batch) -> Cycle;

    /// Prices the batch exactly like [`service`](Self::service) — same
    /// returned cycles, same memo-cache accounting — and additionally
    /// returns the batch's full DRAM command trace from an uncached
    /// traced re-run. The traced run never touches the memo, so a traced
    /// serving simulation reports byte-identical `ServeReport`s to an
    /// untraced one on the same seed.
    fn service_traced(&mut self, batch: &Batch) -> (Cycle, Vec<IssuedCommand>);

    /// Cumulative memo-cache hit/miss/eviction counters for this session.
    fn stats(&self) -> SessionStats;

    /// Enables or disables the service-time memo cache (enabled by
    /// default). Disabling never changes reported cycles, only wall-clock
    /// time; already-cached entries are dropped.
    fn set_cache_enabled(&mut self, enabled: bool);

    /// Rebounds the memo cache to at most `capacity` distinct batch
    /// signatures (default [`DEFAULT_MEMO_CAPACITY`]), evicting least
    /// recently used entries beyond it. Resizing drops already-cached
    /// entries; like disabling, it never changes reported cycles, only
    /// which batches are re-simulated (the accounting in
    /// [`stats`](Self::stats)).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use
    /// [`set_cache_enabled(false)`](Self::set_cache_enabled) for "no
    /// cache").
    fn set_cache_capacity(&mut self, capacity: usize);
}

#[cfg(doc)]
use crate::accel::EmbeddingAccelerator;

/// Canonical signature of a batch: the exact op sequence as a word stream.
///
/// Two batches share a signature iff they are identical (same tables, same
/// row ids, same weight bits, same order) — order matters because the
/// engine's command schedule, and therefore the cycle cost, is
/// order-sensitive.
pub fn batch_signature(batch: &Batch) -> Vec<u64> {
    // Worst-case exact encoding; ~3 words per lookup is noise next to a
    // DRAM-level simulation of the same batch.
    let words: usize = batch
        .ops
        .iter()
        .map(|op| 2 + op.indices.len() + op.weights.len())
        .sum();
    let mut sig = Vec::with_capacity(words);
    for op in &batch.ops {
        sig.push(op.table as u64);
        sig.push(op.indices.len() as u64);
        sig.extend_from_slice(&op.indices);
        sig.extend(op.weights.iter().map(|w| u64::from(w.to_bits())));
    }
    sig
}

/// A prepared uncached pricing function: `(batch, traced)` → cycles (+
/// the DRAM command trace when `traced`). Must be deterministic —
/// identical inputs price identically.
pub type ServiceFn = Box<dyn FnMut(&Batch, bool) -> Serviced>;

/// The shared [`ServiceSession`] implementation: a prepared uncached
/// pricing function plus the exact memo cache.
///
/// Every accelerator model builds one of these in `open_session`, moving
/// its resolved layout/placement state into the `uncached` closure.
pub struct MemoizedSession {
    name: String,
    /// Prepared pricing function: `(batch, traced)` → cycles (+ the DRAM
    /// command trace when `traced`).
    uncached: ServiceFn,
    cache: HashMap<Vec<u64>, Cycle>,
    /// Recency list over the memoized signatures; its fixed capacity is the
    /// memo bound, and its evictions name the signature to drop.
    lru: LruCache<Vec<u64>>,
    stats: SessionStats,
    enabled: bool,
}

impl core::fmt::Debug for MemoizedSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoizedSession")
            .field("name", &self.name)
            .field("cached_entries", &self.cache.len())
            .field("capacity", &self.lru.capacity())
            .field("stats", &self.stats)
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl MemoizedSession {
    /// Wraps a prepared pricing function. `uncached` must be deterministic
    /// and stateless across calls (identical batch → identical cycles);
    /// every model's session satisfies this by resetting per-batch state
    /// (LRU caches, replica round-robins) inside the closure.
    ///
    /// The memo holds at most [`DEFAULT_MEMO_CAPACITY`] signatures; see
    /// [`ServiceSession::set_cache_capacity`].
    pub fn new(name: impl Into<String>, uncached: ServiceFn) -> Self {
        Self {
            name: name.into(),
            uncached,
            cache: HashMap::new(),
            lru: LruCache::new(DEFAULT_MEMO_CAPACITY),
            stats: SessionStats::default(),
            enabled: true,
        }
    }

    /// Distinct batch signatures currently memoized.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Current bound on memoized signatures.
    pub fn cache_capacity(&self) -> usize {
        self.lru.capacity()
    }
}

impl ServiceSession for MemoizedSession {
    fn name(&self) -> &str {
        &self.name
    }

    fn service(&mut self, batch: &Batch) -> Cycle {
        if !self.enabled {
            self.stats.misses += 1;
            return (self.uncached)(batch, false).cycles;
        }
        let sig = batch_signature(batch);
        if let Some(&cycles) = self.cache.get(&sig) {
            self.stats.hits += 1;
            self.lru.touch(sig);
            return cycles;
        }
        let cycles = (self.uncached)(batch, false).cycles;
        let (_, evicted) = self.lru.touch_evict(sig.clone());
        if let Some(victim) = evicted {
            self.cache.remove(&victim);
            self.stats.evictions += 1;
        }
        self.cache.insert(sig, cycles);
        self.stats.misses += 1;
        cycles
    }

    fn service_traced(&mut self, batch: &Batch) -> (Cycle, Vec<IssuedCommand>) {
        // Normal pricing first, so hit/miss/eviction accounting is
        // bit-identical to an untraced run...
        let cycles = self.service(batch);
        // ...then a traced re-run outside the memo for the commands. The
        // uncached path is deterministic, so the re-run prices identically.
        let traced = (self.uncached)(batch, true);
        debug_assert_eq!(
            traced.cycles, cycles,
            "traced re-run must price identically to the memoized path"
        );
        (cycles, traced.commands.unwrap_or_default())
    }

    fn stats(&self) -> SessionStats {
        self.stats
    }

    fn set_cache_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.cache.clear();
            self.lru = LruCache::new(self.lru.capacity());
        }
    }

    fn set_cache_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "memo capacity must be positive");
        self.cache.clear();
        self.lru = LruCache::new(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::EmbeddingAccelerator;
    use crate::cpu::CpuBaseline;
    use crate::fafnir::Fafnir;
    use crate::recnmp::RecNmp;
    use crate::tensordimm::TensorDimm;
    use crate::trim::Trim;
    use recross_dram::DramConfig;
    use recross_workload::{Trace, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::criteo_scaled(64, 1000)
            .batch_size(2)
            .pooling(8)
            .batches(3)
            .generate(11)
    }

    /// The session's uncached path must price a batch exactly as the
    /// offline API prices the equivalent single-batch trace — for every
    /// model.
    #[test]
    fn session_matches_offline_single_batch_run() {
        let t = trace();
        let d = DramConfig::ddr5_4800();
        let models: Vec<Box<dyn EmbeddingAccelerator>> = vec![
            Box::new(CpuBaseline::new(d.clone())),
            Box::new(CpuBaseline::new(d.clone()).with_llc_bytes(32 * 1024 * 1024)),
            Box::new(TensorDimm::new(d.clone())),
            Box::new(RecNmp::new(d.clone())),
            Box::new(Trim::bank_group(d.clone())),
            Box::new(Trim::bank(d.clone())),
            Box::new(Fafnir::new(d.clone())),
        ];
        for mut model in models {
            let mut session = model.open_session(&t.tables);
            for batch in &t.batches {
                let single = Trace {
                    tables: t.tables.clone(),
                    batches: vec![batch.clone()],
                };
                let want = model.run(&single).cycles;
                let got = session.service(batch);
                assert_eq!(got, want, "{}: session vs offline run", session.name());
            }
        }
    }

    fn stats(hits: u64, misses: u64, evictions: u64) -> SessionStats {
        SessionStats {
            hits,
            misses,
            evictions,
        }
    }

    #[test]
    fn memo_cache_accounting_is_exact() {
        let t = trace();
        let mut session =
            CpuBaseline::new(DramConfig::ddr5_4800()).open_session(&t.tables);
        assert_eq!(session.stats(), SessionStats::default());
        let first = session.service(&t.batches[0]);
        assert_eq!(session.stats(), stats(0, 1, 0));
        let again = session.service(&t.batches[0]);
        assert_eq!(again, first, "memo hit returns identical cycles");
        assert_eq!(session.stats(), stats(1, 1, 0));
        let other = session.service(&t.batches[1]);
        assert_eq!(session.stats(), stats(1, 2, 0));
        assert_ne!(
            batch_signature(&t.batches[0]),
            batch_signature(&t.batches[1]),
            "distinct batches must have distinct signatures"
        );
        // Disabling drops entries and prices uncached, same cycles.
        session.set_cache_enabled(false);
        assert_eq!(session.service(&t.batches[1]), other);
        assert_eq!(session.stats(), stats(1, 3, 0));
    }

    /// A capacity-1 memo still returns exact cycles — eviction re-simulates,
    /// never re-prices — and counts its evictions.
    #[test]
    fn bounded_memo_evicts_lru_and_stays_exact() {
        let t = trace();
        let d = DramConfig::ddr5_4800();
        let accel = CpuBaseline::new(d);
        let mut unbounded = accel.open_session(&t.tables);
        let mut tiny = accel.open_session(&t.tables);
        tiny.set_cache_capacity(1);

        // Alternate two distinct batches: the capacity-1 memo thrashes
        // (every access after the first two evicts), the unbounded one hits.
        let mut want = Vec::new();
        for round in 0..3 {
            for b in [&t.batches[0], &t.batches[1]] {
                let reference = unbounded.service(b);
                assert_eq!(tiny.service(b), reference, "round {round}");
                want.push(reference);
            }
        }
        assert_eq!(unbounded.stats(), stats(4, 2, 0), "unbounded: all hits");
        // Tiny cache: 6 accesses, alternating keys with capacity 1 → every
        // access misses; from the second insert on, each miss evicts.
        assert_eq!(tiny.stats(), stats(0, 6, 5));

        // A repeat of the *same* batch still hits at capacity 1.
        let again = tiny.service(&t.batches[1]);
        assert_eq!(again, want[5]);
        assert_eq!(tiny.stats(), stats(1, 6, 5));
    }

    #[test]
    #[should_panic(expected = "memo capacity must be positive")]
    fn zero_memo_capacity_rejected() {
        let t = trace();
        let mut session =
            CpuBaseline::new(DramConfig::ddr5_4800()).open_session(&t.tables);
        session.set_cache_capacity(0);
    }

    /// `service_traced` returns the same cycles as `service`, keeps the
    /// cache accounting identical to an untraced session, and yields the
    /// batch's cycle-sorted command trace.
    #[test]
    fn traced_service_prices_identically_and_returns_commands() {
        let t = trace();
        let accel = CpuBaseline::new(DramConfig::ddr5_4800());
        let mut plain = accel.open_session(&t.tables);
        let mut traced = accel.open_session(&t.tables);
        for b in &t.batches {
            let want = plain.service(b);
            let (got, commands) = traced.service_traced(b);
            assert_eq!(got, want, "traced pricing must match untraced");
            assert!(!commands.is_empty(), "a real batch issues DRAM commands");
            assert!(commands.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        }
        assert_eq!(plain.stats(), traced.stats(), "identical accounting");
        // A replay hits the memo for cycles and still produces commands.
        let (again, commands) = traced.service_traced(&t.batches[0]);
        assert_eq!(again, plain.service(&t.batches[0]));
        assert!(!commands.is_empty());
        assert_eq!(traced.stats().hits, plain.stats().hits);
    }

    #[test]
    fn signature_is_order_sensitive() {
        let t = trace();
        let mut swapped = t.batches[0].clone();
        if swapped.ops.len() >= 2 {
            swapped.ops.swap(0, 1);
            assert_ne!(batch_signature(&t.batches[0]), batch_signature(&swapped));
        }
    }

    #[test]
    fn stats_since_subtracts() {
        let a = stats(5, 7, 2);
        let b = stats(2, 3, 1);
        assert_eq!(a.since(&b), stats(3, 4, 1));
        assert!((a.hit_rate() - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(SessionStats::default().hit_rate(), 0.0);
    }
}
