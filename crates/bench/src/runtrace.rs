//! Closed-loop trace capture for `repro run`: run the standard workload
//! batch-by-batch through one prepared accelerator session, record every
//! DRAM command, and export a unified timeline plus bottleneck
//! attribution.
//!
//! This is the closed-loop sibling of the serving tracer
//! ([`recross_serve::ServeObs`]): no arrivals or queues, just the fixed
//! trace run back-to-back — batch `i+1` starts the cycle batch `i`
//! finishes. The recorder carries one `engine` track with a span per
//! batch and, under a `DRAM channel 0` root, the per-bank command tracks
//! and per-region PE/DQ occupancy tracks from
//! [`recross_dram::traceviz`]. Commands are priced by
//! [`service_traced`](recross_nmp::session::ServiceSession::service_traced),
//! so the reported cycles match an untraced run of the same trace
//! exactly, and everything is deterministic in the seed — reruns are
//! byte-identical.
//!
//! Attribution is folded incrementally through
//! [`recross_dram::attribution::AttributionBuilder`] as batches complete,
//! so the stored summary never needs the full command vector. With
//! [`TraceOptions`] the timeline can additionally be streamed to a writer
//! and aggregated online while the run executes; `buffered: false` then
//! drops both the in-memory event buffer and the retained command vector,
//! bounding resident memory for long runs (`repro run --trace-stream`).

use std::cell::RefCell;
use std::rc::Rc;

use recross_dram::attribution::{summarize, AttributionBuilder, CommandAttribution};
use recross_dram::traceviz::{dram_tracks, record_commands};
use recross_dram::{Cycle, DramConfig, IssuedCommand};
use recross_nmp::multichannel::ChannelPlan;
use recross_obs::agg::{Aggregates, Aggregator};
use recross_obs::{chrome_trace_string, ChromeStreamSink, Recorder};
use recross_serve::report::{fmt_f64, json_string};

use crate::serving::{arch_sessions, TraceOptions};
use crate::workloads::{dram, generator, Scale};

/// A captured closed-loop run: per-batch cycle costs, the incrementally
/// folded bottleneck attribution, and the recorder holding the unified
/// timeline.
#[derive(Debug)]
pub struct RunTrace {
    /// Architecture name as it appears in the reports.
    pub arch: String,
    /// The session's concrete engine name (e.g. `ReCross-d`).
    pub engine: String,
    /// `(batch index, start cycle, service cycles)` per batch, in run
    /// order.
    pub batches: Vec<(usize, Cycle, Cycle)>,
    /// Total run length in DRAM cycles (the last batch's end).
    pub total_cycles: Cycle,
    /// Every DRAM command of the run, shifted to its batch's dispatch
    /// cycle. Empty for unbuffered captures ([`TraceOptions::buffered`]
    /// off), which fold attribution without retaining commands.
    pub commands: Vec<IssuedCommand>,
    /// Total embedding lookups serviced.
    pub lookups: u64,
    /// DRAM commands folded into the attribution (equals
    /// `commands.len()` when the command vector is retained).
    pub command_count: u64,
    attribution: CommandAttribution,
    agg: Option<Aggregates>,
    buffered: bool,
    recorder: Recorder,
    dram: DramConfig,
}

impl RunTrace {
    /// Cycle-level bottleneck attribution over the whole command trace
    /// (C/A bus vs data bus vs tRCD/tRP overlap vs bank conflicts),
    /// folded incrementally as the run executed — identical to a
    /// one-shot `CommandAttribution::from_commands` over the full
    /// retained trace.
    pub fn attribution(&self) -> CommandAttribution {
        self.attribution.clone()
    }

    /// Online aggregates (span-duration stats per class, counter-gauge
    /// percentiles), when the run was captured with
    /// [`TraceOptions::agg`] on.
    pub fn aggregates(&self) -> Option<&Aggregates> {
        self.agg.as_ref()
    }

    /// The unified Perfetto / Chrome-trace timeline (engine batch spans +
    /// per-bank DRAM command tracks) as a JSON string. `None` for
    /// unbuffered captures — the timeline was streamed to the
    /// [`TraceOptions::stream`] writer instead.
    pub fn perfetto(&self) -> Option<String> {
        self.buffered
            .then(|| chrome_trace_string(&self.recorder, self.dram.cycles_to_ns(1)))
    }

    /// Per-sink drop counters and the recorder heap high-water mark, for
    /// surfacing in human-readable output.
    pub fn recorder_stats(&self) -> (usize, Vec<recross_obs::SinkStats>) {
        (self.recorder.heap_capacity(), self.recorder.sink_stats())
    }

    /// The original single-channel DRAM-command Chrome trace (bank tracks
    /// only, no engine spans), via
    /// [`recross_dram::traceviz::write_chrome_trace`] — the `--dram-trace`
    /// compatibility format.
    ///
    /// # Panics
    ///
    /// Panics for unbuffered captures: the command vector was not
    /// retained.
    pub fn dram_chrome_trace(&self) -> String {
        assert!(
            self.buffered,
            "--dram-trace needs the retained command vector (buffered capture)"
        );
        let mut buf = Vec::new();
        recross_dram::traceviz::write_chrome_trace(&self.commands, &self.dram, &mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// One human-readable attribution summary line.
    pub fn summary_line(&self) -> String {
        summarize(&self.arch, &self.attribution())
    }

    /// The run as one JSON document: metadata envelope, per-batch cycle
    /// costs, and the bottleneck attribution under `"dram"`
    /// (deterministic bytes for a given input — identical for buffered
    /// and unbuffered captures of the same run).
    pub fn to_json(&self, scale: Scale, seed: u64) -> String {
        let scale_name = match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
            Scale::Tiny => "tiny",
        };
        let batches: Vec<String> = self
            .batches
            .iter()
            .map(|(i, start, cycles)| {
                format!("{{\"batch\":{i},\"start_cycle\":{start},\"cycles\":{cycles}}}")
            })
            .collect();
        format!(
            concat!(
                "{{\"experiment\":\"run_trace\",\"scale\":{},\"arch\":{},",
                "\"engine\":{},",
                "\"seed\":{},\"batches\":[{}],\"total_cycles\":{},",
                "\"commands\":{},\"throughput_lookups_per_cycle\":{},",
                "\"dram\":{}}}"
            ),
            json_string(scale_name),
            json_string(&self.arch),
            json_string(&self.engine),
            seed,
            batches.join(","),
            self.total_cycles,
            self.command_count,
            fmt_f64(self.lookups as f64 / self.total_cycles.max(1) as f64),
            self.attribution.to_json()
        )
    }
}

/// Runs the standard workload (dim-64 trace at the given scale and seed)
/// closed-loop through the named architecture's prepared session,
/// capturing the full command trace. The whole trace maps to one channel
/// (closed-loop runs are single-server; the serving path is where
/// multi-channel sharding lives). `max_batches` caps how many trace
/// batches are traced (0 means all).
pub fn closed_loop_trace(scale: Scale, arch: &str, seed: u64, max_batches: usize) -> RunTrace {
    closed_loop_trace_with(scale, arch, seed, max_batches, TraceOptions::default())
        .expect("in-memory tracing cannot fail on IO")
}

/// [`closed_loop_trace`] with explicit [`TraceOptions`]: stream the
/// timeline to a writer while the run executes, aggregate online, and/or
/// drop the in-memory buffers (`buffered: false` retains neither events
/// nor the command vector — attribution and `to_json` are unaffected,
/// since both fold incrementally). The streamed bytes are byte-identical
/// to [`RunTrace::perfetto`] of a buffered capture with the same inputs.
/// Returns `Err` only when the stream writer fails.
pub fn closed_loop_trace_with(
    scale: Scale,
    arch: &str,
    seed: u64,
    max_batches: usize,
    opts: TraceOptions,
) -> std::io::Result<RunTrace> {
    let d = dram();
    let mut trace = generator(scale, 64).generate(seed);
    if max_batches > 0 {
        trace.batches.truncate(max_batches);
    }
    let plan = ChannelPlan::balance_by_load(&trace, 1);
    let batch_hint = scale.batch_size() as f64;
    let session = &mut arch_sessions(arch, &trace, &plan, batch_hint)[0];

    let mut rec = Recorder::new();
    if let Some(w) = opts.stream {
        rec.attach(Box::new(ChromeStreamSink::new(w, d.cycles_to_ns(1))));
    }
    let agg_handle = opts.agg.then(|| {
        let h = Rc::new(RefCell::new(Aggregator::default()));
        rec.attach(Box::new(h.clone()));
        h
    });
    if !opts.buffered {
        rec.unbuffer();
    }
    let engine = rec.track("engine", None);
    let ch_root = rec.track("DRAM channel 0", None);
    let mut tracks = dram_tracks(&mut rec, ch_root, &d);

    let mut cursor: Cycle = 0;
    let mut batches = Vec::with_capacity(trace.batches.len());
    let mut builder = AttributionBuilder::new(&d);
    let mut commands = Vec::new();
    let mut lookups: u64 = 0;
    for (i, b) in trace.batches.iter().enumerate() {
        let (cycles, trace_cmds) = session.service_traced(b);
        rec.span(
            engine,
            &format!("batch#{i} ({} lookups)", b.ops.len()),
            cursor,
            cursor + cycles,
        );
        record_commands(&mut rec, &mut tracks, &d, &trace_cmds, cursor);
        builder.fold(&trace_cmds, cursor);
        if opts.buffered {
            commands.extend(trace_cmds.into_iter().map(|mut ic| {
                ic.cycle += cursor;
                ic
            }));
        }
        batches.push((i, cursor, cycles));
        lookups += b.ops.len() as u64;
        cursor += cycles;
    }
    debug_assert_eq!(rec.validate(), Ok(()));
    rec.finish()?;

    Ok(RunTrace {
        arch: arch.to_string(),
        engine: session.name().to_string(),
        batches,
        total_cycles: cursor,
        commands,
        lookups,
        command_count: builder.commands(),
        attribution: builder.snapshot(cursor),
        agg: agg_handle.map(|h| h.borrow().snapshot()),
        buffered: opts.buffered,
        recorder: rec,
        dram: d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_obs::SharedWriter;

    #[test]
    fn closed_loop_trace_is_consistent_and_deterministic() {
        let rt = closed_loop_trace(Scale::Tiny, "ReCross", 0xD17A, 0);
        assert_eq!(rt.arch, "ReCross");
        assert_eq!(rt.engine, "ReCross-d");
        assert!(!rt.batches.is_empty());
        assert!(rt.total_cycles > 0);
        assert!(!rt.commands.is_empty());
        assert_eq!(rt.command_count, rt.commands.len() as u64);
        // Batches tile the run back-to-back.
        let mut expect = 0;
        for &(_, start, cycles) in &rt.batches {
            assert_eq!(start, expect);
            expect += cycles;
        }
        assert_eq!(expect, rt.total_cycles);
        // Attribution covers the run (display durations may spill past
        // the last command's issue cycle) and the incremental fold equals
        // the one-shot recompute over the retained command vector.
        let a = rt.attribution();
        assert!(a.span >= rt.total_cycles);
        assert!(a.reads > 0);
        assert_eq!(
            a,
            CommandAttribution::from_commands(&rt.commands, &dram(), rt.total_cycles)
        );

        let rt2 = closed_loop_trace(Scale::Tiny, "ReCross", 0xD17A, 0);
        assert_eq!(rt.perfetto(), rt2.perfetto(), "same seed, same bytes");
        assert_eq!(
            rt.to_json(Scale::Tiny, 0xD17A),
            rt2.to_json(Scale::Tiny, 0xD17A)
        );
    }

    #[test]
    fn traced_cycles_match_untraced_run() {
        // Pricing through service_traced must equal plain service.
        let trace = generator(Scale::Tiny, 64).generate(7);
        let plan = ChannelPlan::balance_by_load(&trace, 1);
        let session = &mut arch_sessions("CPU", &trace, &plan, 2.0)[0];
        let plain: Cycle = trace.batches.iter().map(|b| session.service(b)).sum();
        let rt = closed_loop_trace(Scale::Tiny, "CPU", 7, 0);
        assert_eq!(rt.total_cycles, plain);
    }

    #[test]
    fn json_and_exports_are_well_formed() {
        let rt = closed_loop_trace(Scale::Tiny, "CPU", 3, 1);
        assert_eq!(rt.batches.len(), 1, "max_batches caps the run");
        let json = rt.to_json(Scale::Tiny, 3);
        assert!(json.contains("\"experiment\":\"run_trace\""));
        assert!(json.contains("\"arch\":\"CPU\""));
        assert!(json.contains("\"dram\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let p = rt.perfetto().expect("buffered capture keeps the timeline");
        assert!(p.contains("\"engine\""));
        assert!(p.contains("rank 0 / bg 0 / bank 0"));
        assert!(p.contains("batch#0"));
        // Legacy exporter carries the same commands, banks only.
        let legacy = rt.dram_chrome_trace();
        assert!(legacy.contains("rank 0 / bg 0 / bank 0"));
        assert!(!legacy.contains("\"engine\""));
        assert!(rt.summary_line().contains("CPU"));
    }

    #[test]
    fn streamed_capture_matches_buffered_without_retaining_commands() {
        let buffered = closed_loop_trace(Scale::Tiny, "ReCross", 0xD17B, 0);

        let out = SharedWriter::new();
        let streamed = closed_loop_trace_with(
            Scale::Tiny,
            "ReCross",
            0xD17B,
            0,
            TraceOptions {
                stream: Some(Box::new(out.clone())),
                agg: true,
                buffered: false,
            },
        )
        .expect("stream writer cannot fail");

        // The streamed file is byte-identical to the in-memory export,
        // and the run's JSON (incremental attribution included) does not
        // depend on whether commands/events were retained.
        assert_eq!(out.contents(), buffered.perfetto().unwrap());
        assert_eq!(
            streamed.to_json(Scale::Tiny, 0xD17B),
            buffered.to_json(Scale::Tiny, 0xD17B)
        );
        assert!(streamed.perfetto().is_none());
        assert!(streamed.commands.is_empty(), "unbuffered retains no commands");
        assert_eq!(streamed.command_count, buffered.commands.len() as u64);

        // Nothing dropped, and the online aggregates saw the whole run:
        // one `batch` span per batch, makespan covering the run.
        let (_, sinks) = streamed.recorder_stats();
        assert!(sinks.iter().all(|s| s.dropped == 0));
        assert!(sinks.iter().all(|s| s.kind != "memory"));
        let agg = streamed.aggregates().expect("agg enabled");
        let batch_spans = agg
            .spans
            .iter()
            .find(|(name, _)| name == "batch")
            .expect("batch span class");
        assert_eq!(batch_spans.1.count(), streamed.batches.len() as u64);
        assert!(agg.makespan_cycles >= streamed.total_cycles);
    }
}
