//! Closed-loop trace capture for `repro run`: run the standard workload
//! batch-by-batch through one prepared accelerator session, record every
//! DRAM command, and export a unified timeline plus bottleneck
//! attribution.
//!
//! This is the closed-loop sibling of the serving tracer
//! ([`recross_serve::ServeObs`]): no arrivals or queues, just the fixed
//! trace run back-to-back — batch `i+1` starts the cycle batch `i`
//! finishes. The recorder carries one `engine` track with a span per
//! batch and, under a `DRAM channel 0` root, the per-bank command tracks
//! and per-region PE/DQ occupancy tracks from
//! [`recross_dram::traceviz`]. Commands are priced by
//! [`service_traced`](recross_nmp::session::ServiceSession::service_traced),
//! so the reported cycles match an untraced run of the same trace
//! exactly, and everything is deterministic in the seed — reruns are
//! byte-identical.

use recross_dram::attribution::{summarize, CommandAttribution};
use recross_dram::traceviz::{dram_tracks, record_commands};
use recross_dram::{Cycle, DramConfig, IssuedCommand};
use recross_nmp::multichannel::ChannelPlan;
use recross_obs::{chrome_trace_string, Recorder};
use recross_serve::report::{fmt_f64, json_string};

use crate::serving::arch_sessions;
use crate::workloads::{dram, generator, Scale};

/// A captured closed-loop run: per-batch cycle costs, the full
/// (dispatch-time-shifted) DRAM command trace, and the recorder holding
/// the unified timeline.
#[derive(Debug)]
pub struct RunTrace {
    /// Architecture name as it appears in the reports.
    pub arch: String,
    /// The session's concrete engine name (e.g. `ReCross-d`).
    pub engine: String,
    /// `(batch index, start cycle, service cycles)` per batch, in run
    /// order.
    pub batches: Vec<(usize, Cycle, Cycle)>,
    /// Total run length in DRAM cycles (the last batch's end).
    pub total_cycles: Cycle,
    /// Every DRAM command of the run, shifted to its batch's dispatch
    /// cycle.
    pub commands: Vec<IssuedCommand>,
    /// Total embedding lookups serviced.
    pub lookups: u64,
    recorder: Recorder,
    dram: DramConfig,
}

impl RunTrace {
    /// Cycle-level bottleneck attribution over the whole command trace
    /// (C/A bus vs data bus vs tRCD/tRP overlap vs bank conflicts).
    pub fn attribution(&self) -> CommandAttribution {
        CommandAttribution::from_commands(&self.commands, &self.dram, self.total_cycles)
    }

    /// The unified Perfetto / Chrome-trace timeline (engine batch spans +
    /// per-bank DRAM command tracks) as a JSON string.
    pub fn perfetto(&self) -> String {
        chrome_trace_string(&self.recorder, self.dram.cycles_to_ns(1))
    }

    /// The original single-channel DRAM-command Chrome trace (bank tracks
    /// only, no engine spans), via
    /// [`recross_dram::traceviz::write_chrome_trace`] — the `--dram-trace`
    /// compatibility format.
    pub fn dram_chrome_trace(&self) -> String {
        let mut buf = Vec::new();
        recross_dram::traceviz::write_chrome_trace(&self.commands, &self.dram, &mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// One human-readable attribution summary line.
    pub fn summary_line(&self) -> String {
        summarize(&self.arch, &self.attribution())
    }

    /// The run as one JSON document: metadata envelope, per-batch cycle
    /// costs, and the bottleneck attribution under `"dram"`
    /// (deterministic bytes for a given input).
    pub fn to_json(&self, scale: Scale, seed: u64) -> String {
        let scale_name = match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
            Scale::Tiny => "tiny",
        };
        let batches: Vec<String> = self
            .batches
            .iter()
            .map(|(i, start, cycles)| {
                format!("{{\"batch\":{i},\"start_cycle\":{start},\"cycles\":{cycles}}}")
            })
            .collect();
        format!(
            concat!(
                "{{\"experiment\":\"run_trace\",\"scale\":{},\"arch\":{},",
                "\"engine\":{},",
                "\"seed\":{},\"batches\":[{}],\"total_cycles\":{},",
                "\"commands\":{},\"throughput_lookups_per_cycle\":{},",
                "\"dram\":{}}}"
            ),
            json_string(scale_name),
            json_string(&self.arch),
            json_string(&self.engine),
            seed,
            batches.join(","),
            self.total_cycles,
            self.commands.len(),
            fmt_f64(self.lookups as f64 / self.total_cycles.max(1) as f64),
            self.attribution().to_json()
        )
    }
}

/// Runs the standard workload (dim-64 trace at the given scale and seed)
/// closed-loop through the named architecture's prepared session,
/// capturing the full command trace. The whole trace maps to one channel
/// (closed-loop runs are single-server; the serving path is where
/// multi-channel sharding lives). `max_batches` caps how many trace
/// batches are traced (0 means all).
pub fn closed_loop_trace(scale: Scale, arch: &str, seed: u64, max_batches: usize) -> RunTrace {
    let d = dram();
    let mut trace = generator(scale, 64).generate(seed);
    if max_batches > 0 {
        trace.batches.truncate(max_batches);
    }
    let plan = ChannelPlan::balance_by_load(&trace, 1);
    let batch_hint = scale.batch_size() as f64;
    let session = &mut arch_sessions(arch, &trace, &plan, batch_hint)[0];

    let mut rec = Recorder::new();
    let engine = rec.track("engine", None);
    let ch_root = rec.track("DRAM channel 0", None);
    let mut tracks = dram_tracks(&mut rec, ch_root, &d);

    let mut cursor: Cycle = 0;
    let mut batches = Vec::with_capacity(trace.batches.len());
    let mut commands = Vec::new();
    let mut lookups: u64 = 0;
    for (i, b) in trace.batches.iter().enumerate() {
        let (cycles, trace_cmds) = session.service_traced(b);
        rec.span(
            engine,
            &format!("batch#{i} ({} lookups)", b.ops.len()),
            cursor,
            cursor + cycles,
        );
        record_commands(&mut rec, &mut tracks, &d, &trace_cmds, cursor);
        commands.extend(trace_cmds.into_iter().map(|mut ic| {
            ic.cycle += cursor;
            ic
        }));
        batches.push((i, cursor, cycles));
        lookups += b.ops.len() as u64;
        cursor += cycles;
    }
    debug_assert_eq!(rec.validate(), Ok(()));

    RunTrace {
        arch: arch.to_string(),
        engine: session.name().to_string(),
        batches,
        total_cycles: cursor,
        commands,
        recorder: rec,
        dram: d,
        lookups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_trace_is_consistent_and_deterministic() {
        let rt = closed_loop_trace(Scale::Tiny, "ReCross", 0xD17A, 0);
        assert_eq!(rt.arch, "ReCross");
        assert_eq!(rt.engine, "ReCross-d");
        assert!(!rt.batches.is_empty());
        assert!(rt.total_cycles > 0);
        assert!(!rt.commands.is_empty());
        // Batches tile the run back-to-back.
        let mut expect = 0;
        for &(_, start, cycles) in &rt.batches {
            assert_eq!(start, expect);
            expect += cycles;
        }
        assert_eq!(expect, rt.total_cycles);
        // Attribution covers the run (display durations may spill past
        // the last command's issue cycle).
        let a = rt.attribution();
        assert!(a.span >= rt.total_cycles);
        assert!(a.reads > 0);

        let rt2 = closed_loop_trace(Scale::Tiny, "ReCross", 0xD17A, 0);
        assert_eq!(rt.perfetto(), rt2.perfetto(), "same seed, same bytes");
        assert_eq!(
            rt.to_json(Scale::Tiny, 0xD17A),
            rt2.to_json(Scale::Tiny, 0xD17A)
        );
    }

    #[test]
    fn traced_cycles_match_untraced_run() {
        // Pricing through service_traced must equal plain service.
        let trace = generator(Scale::Tiny, 64).generate(7);
        let plan = ChannelPlan::balance_by_load(&trace, 1);
        let session = &mut arch_sessions("CPU", &trace, &plan, 2.0)[0];
        let plain: Cycle = trace.batches.iter().map(|b| session.service(b)).sum();
        let rt = closed_loop_trace(Scale::Tiny, "CPU", 7, 0);
        assert_eq!(rt.total_cycles, plain);
    }

    #[test]
    fn json_and_exports_are_well_formed() {
        let rt = closed_loop_trace(Scale::Tiny, "CPU", 3, 1);
        assert_eq!(rt.batches.len(), 1, "max_batches caps the run");
        let json = rt.to_json(Scale::Tiny, 3);
        assert!(json.contains("\"experiment\":\"run_trace\""));
        assert!(json.contains("\"arch\":\"CPU\""));
        assert!(json.contains("\"dram\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let p = rt.perfetto();
        assert!(p.contains("\"engine\""));
        assert!(p.contains("rank 0 / bg 0 / bank 0"));
        assert!(p.contains("batch#0"));
        // Legacy exporter carries the same commands, banks only.
        let legacy = rt.dram_chrome_trace();
        assert!(legacy.contains("rank 0 / bg 0 / bank 0"));
        assert!(!legacy.contains("\"engine\""));
        assert!(rt.summary_line().contains("CPU"));
    }
}
