//! The open-loop serving sweep: offered-QPS vs tail latency, CPU vs
//! ReCross.
//!
//! This is the serving-systems view of the paper's speedups: instead of
//! asking "how fast does a fixed trace run" (closed loop), it asks "at a
//! given request rate, what latency does the p99 user see, and when does
//! the system start shedding load" — the latency-bounded-throughput
//! framing of the RecNMP/UpDLRM studies. Each request is a single
//! recommendation inference (one sample of embedding lookups); requests
//! are sharded across channels by [`ChannelPlan::balance_by_load`] and
//! served by one batching queue + accelerator per channel
//! (`recross_serve`). Everything is seeded, so a sweep is byte-identical
//! across runs — CI diffs two runs of the emitted JSON.

use recross::config::ReCrossConfig;
use recross::engine::ReCross;
use recross::profile::empirical_profiles;
use recross_nmp::multichannel::ChannelPlan;
use recross_nmp::{AccessProfile, CpuBaseline};
use recross_serve::report::{fmt_f64, json_string};
use recross_serve::{simulate, ArrivalProcess, BatcherConfig, QueuePolicy, ServeReport};
use recross_workload::{Batch, Trace};

use crate::workloads::{dram, generator, Scale};

/// Offered load as fractions of the estimated per-arch saturation rate:
/// three points below the knee, one just past it, one deep in overload.
pub const SWEEP_FRACTIONS: &[f64] = &[0.3, 0.6, 0.9, 1.2, 2.0];

/// Memory channels (one server each).
pub const CHANNELS: usize = 2;

/// Requests per sweep point.
pub fn requests_for(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 512,
        Scale::Quick => 120,
        Scale::Tiny => 32,
    }
}

/// The batching-queue configuration used by the sweep: modest batches, a
/// 2 µs linger (small next to service times, so latency is dominated by
/// queueing, not the timeout), and a queue shallow enough that sustained
/// 2× overload overflows it well within even the tiny-scale request count
/// (excess ≈ n/2 must exceed the depth).
pub fn batcher_config(policy: QueuePolicy) -> BatcherConfig {
    BatcherConfig {
        max_batch: 8,
        max_linger: dram().ns_to_cycles(2_000.0),
        queue_depth: 12,
        policy,
    }
}

/// One architecture's sweep: its estimated saturation rate and a report
/// per offered-load fraction.
#[derive(Debug, Clone)]
pub struct ArchSweep {
    /// Architecture name.
    pub arch: String,
    /// Estimated saturation rate (requests/s) the fractions scale.
    pub capacity_qps: f64,
    /// `(fraction, report)` per sweep point.
    pub points: Vec<(f64, ServeReport)>,
}

/// Estimates an architecture's saturation rate: merge `max_batch` requests
/// into one batch per channel, charge its cycle-accurate service time, and
/// take the slowest channel's rate (requests are sharded across *all*
/// channels, so the slowest bounds the system).
fn estimate_capacity_qps<A, F>(
    trace: &Trace,
    plan: &ChannelPlan,
    max_batch: usize,
    cycles_per_sec: f64,
    mut make: F,
) -> f64
where
    A: recross_nmp::accel::EmbeddingAccelerator,
    F: FnMut(usize, &Trace) -> A,
{
    let take = trace.batches.len().min(max_batch);
    let mut capacity = f64::INFINITY;
    for (ch, (sub, _)) in plan.split(trace).into_iter().enumerate() {
        let merged = Batch {
            ops: sub.batches[..take]
                .iter()
                .flat_map(|b| b.ops.iter().cloned())
                .collect(),
        };
        if merged.ops.is_empty() {
            continue;
        }
        let mut accel = make(ch, &sub);
        let cycles = accel.service_time(&sub.tables, &merged);
        if cycles > 0 {
            capacity = capacity.min(take as f64 * cycles_per_sec / cycles as f64);
        }
    }
    assert!(capacity.is_finite(), "trace must exercise some channel");
    capacity
}

/// Builds the per-channel ReCross instance from the sub-trace's own
/// empirical profiles (as the multi-channel scaling experiment does).
fn make_recross(sub: &Trace, batch_hint: f64) -> ReCross {
    let profile = AccessProfile::from_trace(sub);
    let profiles = empirical_profiles(&sub.tables, &profile);
    ReCross::new(ReCrossConfig::default_d(dram()), profiles, batch_hint).expect("placement fits")
}

/// Runs the full sweep ([`SWEEP_FRACTIONS`]): for CPU and ReCross,
/// estimate capacity, then simulate every fraction of it under the given
/// arrival process shape and dequeue policy. Deterministic in `seed`.
pub fn qps_sweep(scale: Scale, bursty: bool, policy: QueuePolicy, seed: u64) -> Vec<ArchSweep> {
    qps_sweep_at(scale, SWEEP_FRACTIONS, bursty, policy, seed)
}

/// [`qps_sweep`] over an explicit list of capacity fractions.
pub fn qps_sweep_at(
    scale: Scale,
    fractions: &[f64],
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> Vec<ArchSweep> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let n = requests_for(scale);
    // One request = one sample: a trace of n single-sample batches.
    let trace = generator(scale, 64).batch_size(1).batches(n).generate(seed);
    let plan = ChannelPlan::balance_by_load(&trace, CHANNELS);
    let cfg = batcher_config(policy);
    let batch_hint = cfg.max_batch as f64;

    let mut sweeps = Vec::new();
    for arch in ["CPU", "ReCross"] {
        let capacity = match arch {
            "CPU" => estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, |_, _| {
                CpuBaseline::new(d.clone())
            }),
            _ => estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, |_, sub| {
                make_recross(sub, batch_hint)
            }),
        };
        let points = fractions
            .iter()
            .map(|&fraction| {
                let qps = capacity * fraction;
                let process = if bursty {
                    ArrivalProcess::bursty(qps)
                } else {
                    ArrivalProcess::poisson(qps)
                };
                // Same arrival seed for every arch/fraction pair base, so
                // curves differ only by rate scaling and service model.
                let arrivals = process.timestamps(n, cps, seed ^ 0xA221);
                let report = match arch {
                    "CPU" => simulate(arch, &trace, &plan, &arrivals, cfg, cps, |_, _| {
                        CpuBaseline::new(d.clone())
                    }),
                    _ => simulate(arch, &trace, &plan, &arrivals, cfg, cps, |_, sub| {
                        make_recross(sub, batch_hint)
                    }),
                };
                (fraction, report)
            })
            .collect();
        sweeps.push(ArchSweep {
            arch: arch.to_string(),
            capacity_qps: capacity,
            points,
        });
    }
    sweeps
}

/// The whole sweep as one JSON document (deterministic bytes for a given
/// input — see module docs).
pub fn sweep_to_json(
    sweeps: &[ArchSweep],
    scale: Scale,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let cfg = batcher_config(policy);
    let archs: Vec<String> = sweeps
        .iter()
        .map(|s| {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|(f, r)| {
                    format!("{{\"fraction\":{},\"result\":{}}}", fmt_f64(*f), r.to_json())
                })
                .collect();
            format!(
                "{{\"arch\":{},\"capacity_qps\":{},\"points\":[{}]}}",
                json_string(&s.arch),
                fmt_f64(s.capacity_qps),
                points.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"experiment\":\"serve_qps_sweep\",\"scale\":{},",
            "\"arrival\":{},\"policy\":{},\"seed\":{},\"channels\":{},",
            "\"requests\":{},\"batcher\":{{\"max_batch\":{},",
            "\"max_linger_cycles\":{},\"queue_depth\":{}}},",
            "\"archs\":[{}]}}"
        ),
        json_string(match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
            Scale::Tiny => "tiny",
        }),
        json_string(if bursty { "bursty" } else { "poisson" }),
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        cfg.max_batch,
        cfg.max_linger,
        cfg.queue_depth,
        archs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sheds_only_past_saturation() {
        let seed = 0x5E21;
        let sweeps = qps_sweep(Scale::Tiny, false, QueuePolicy::Fifo, seed);
        assert_eq!(sweeps.len(), 2);
        for s in &sweeps {
            assert!(s.capacity_qps > 0.0, "{}: positive capacity", s.arch);
            let low = &s.points.first().expect("points").1;
            let high = &s.points.last().expect("points").1;
            assert_eq!(low.shed, 0, "{}: no shedding at 0.3x capacity", s.arch);
            assert!(high.shed > 0, "{}: overload (2x) must shed", s.arch);
            for (f, r) in &s.points {
                assert_eq!(r.requests, requests_for(Scale::Tiny) as u64);
                assert!(r.latency.quantile(0.99) > 0, "{} @ {f}: finite p99", s.arch);
            }
            // Deep queueing: p99 at 2x is no better than at 0.3x.
            assert!(
                high.latency.quantile(0.99) >= low.latency.quantile(0.99),
                "{}: overload tail dominates light load",
                s.arch
            );
        }
        // ReCross saturates at a higher rate than the CPU baseline.
        assert!(
            sweeps[1].capacity_qps > sweeps[0].capacity_qps,
            "ReCross capacity {} should beat CPU {}",
            sweeps[1].capacity_qps,
            sweeps[0].capacity_qps
        );
    }

    #[test]
    fn sweep_is_byte_identical_across_reruns() {
        let seed = 0x5E22;
        let frac = [0.4];
        let a = qps_sweep_at(Scale::Tiny, &frac, false, QueuePolicy::Fifo, seed);
        let b = qps_sweep_at(Scale::Tiny, &frac, false, QueuePolicy::Fifo, seed);
        assert_eq!(
            sweep_to_json(&a, Scale::Tiny, false, QueuePolicy::Fifo, seed),
            sweep_to_json(&b, Scale::Tiny, false, QueuePolicy::Fifo, seed)
        );
    }

    #[test]
    fn sjf_and_bursty_variants_run() {
        let sweeps = qps_sweep_at(Scale::Tiny, &[0.8], true, QueuePolicy::ShortestJobFirst, 3);
        let json = sweep_to_json(&sweeps, Scale::Tiny, true, QueuePolicy::ShortestJobFirst, 3);
        assert!(json.contains("\"arrival\":\"bursty\""));
        assert!(json.contains("\"policy\":\"sjf\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
