//! The open-loop serving experiments: offered-QPS sweep and closed-loop
//! SLO throughput search, CPU vs ReCross.
//!
//! This is the serving-systems view of the paper's speedups: instead of
//! asking "how fast does a fixed trace run" (closed loop), it asks "at a
//! given request rate, what latency does the p99 user see, and when does
//! the system start shedding load" — the latency-bounded-throughput
//! framing of the RecNMP/UpDLRM studies. Each request is a single
//! recommendation inference (one sample of embedding lookups); requests
//! are sharded across channels by [`ChannelPlan::balance_by_load`] and
//! served by one batching queue + prepared accelerator session per channel
//! (`recross_serve`). Sessions are opened once per architecture and reused
//! across every sweep point / search probe, so repeated batch compositions
//! are priced from the session memo cache instead of re-simulated.
//! Everything is seeded, so a sweep or search is byte-identical across
//! runs — CI diffs two runs of the emitted JSON.

use recross::config::ReCrossConfig;
use recross::engine::ReCross;
use recross::profile::empirical_profiles;
use recross_nmp::multichannel::ChannelPlan;
use recross_nmp::session::ServiceSession;
use recross_nmp::{AccessProfile, CpuBaseline};
use recross_serve::report::{fmt_f64, json_string};
use recross_serve::{
    open_sessions, simulate_sessions, simulate_sessions_obs, simulate_tenant_sessions,
    simulate_tenant_sessions_obs, ArrivalProcess, BatcherConfig, ObsReport, QueuePolicy,
    ServeObs, ServeReport, SloReport, TenantMix, TenantSloReport,
};
use recross_workload::{Batch, Trace};

use crate::workloads::{dram, generator, Scale};

/// Offered load as fractions of the estimated per-arch saturation rate:
/// three points below the knee, one just past it, one deep in overload.
pub const SWEEP_FRACTIONS: &[f64] = &[0.3, 0.6, 0.9, 1.2, 2.0];

/// Memory channels (one server each).
pub const CHANNELS: usize = 2;

/// Bisection steps of the SLO search (after the two bracket probes); 12
/// halvings resolve the bracket to ~0.05 % of its width.
pub const SLO_ITERATIONS: u32 = 12;

/// Requests per sweep point / search probe.
pub fn requests_for(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 512,
        Scale::Quick => 120,
        Scale::Tiny => 32,
    }
}

/// Scale name as it appears in emitted JSON.
fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
        Scale::Tiny => "tiny",
    }
}

/// The batching-queue configuration used by the sweep: modest batches, a
/// 2 µs linger (small next to service times, so latency is dominated by
/// queueing, not the timeout), and a queue shallow enough that sustained
/// 2× overload overflows it well within even the tiny-scale request count
/// (excess ≈ n/2 must exceed the depth).
pub fn batcher_config(policy: QueuePolicy) -> BatcherConfig {
    BatcherConfig {
        max_batch: 8,
        max_linger: dram().ns_to_cycles(2_000.0),
        queue_depth: 12,
        policy,
        shed_expired: false,
        adaptive_linger: false,
    }
}

/// The batching-queue configuration used by the multi-tenant experiments:
/// same batch/linger shape as [`batcher_config`], but with a deeper queue
/// (deadline shedding, not tail-drop, should be the dominant drop path),
/// deadline shedding on, and adaptive linger on.
pub fn tenant_batcher_config(policy: QueuePolicy) -> BatcherConfig {
    BatcherConfig {
        queue_depth: 64,
        shed_expired: true,
        adaptive_linger: true,
        ..batcher_config(policy)
    }
}

/// One architecture's sweep: its estimated saturation rate and a report
/// per offered-load fraction.
#[derive(Debug, Clone)]
pub struct ArchSweep {
    /// Architecture name.
    pub arch: String,
    /// Estimated saturation rate (requests/s) the fractions scale.
    pub capacity_qps: f64,
    /// `(fraction, report)` per sweep point.
    pub points: Vec<(f64, ServeReport)>,
}

/// Estimates an architecture's saturation rate: merge `max_batch` requests
/// into one batch per channel, charge its cycle-accurate service time
/// through the channel's prepared session, and take the slowest channel's
/// rate (requests are sharded across *all* channels, so the slowest bounds
/// the system).
fn estimate_capacity_qps(
    trace: &Trace,
    plan: &ChannelPlan,
    max_batch: usize,
    cycles_per_sec: f64,
    sessions: &mut [Box<dyn ServiceSession>],
) -> f64 {
    let take = trace.batches.len().min(max_batch);
    let mut capacity = f64::INFINITY;
    for (ch, (sub, _)) in plan.split(trace).into_iter().enumerate() {
        let merged = Batch {
            ops: sub.batches[..take]
                .iter()
                .flat_map(|b| b.ops.iter().cloned())
                .collect(),
        };
        if merged.ops.is_empty() {
            continue;
        }
        let cycles = sessions[ch].service(&merged);
        if cycles > 0 {
            capacity = capacity.min(take as f64 * cycles_per_sec / cycles as f64);
        }
    }
    assert!(capacity.is_finite(), "trace must exercise some channel");
    capacity
}

/// Builds the per-channel ReCross instance from the sub-trace's own
/// empirical profiles (as the multi-channel scaling experiment does).
fn make_recross(sub: &Trace, batch_hint: f64) -> ReCross {
    let profile = AccessProfile::from_trace(sub);
    let profiles = empirical_profiles(&sub.tables, &profile);
    ReCross::new(ReCrossConfig::default_d(dram()), profiles, batch_hint).expect("placement fits")
}

/// Opens one prepared session per channel for the named architecture.
pub(crate) fn arch_sessions(
    arch: &str,
    trace: &Trace,
    plan: &ChannelPlan,
    batch_hint: f64,
) -> Vec<Box<dyn ServiceSession>> {
    let d = dram();
    match arch {
        "CPU" => open_sessions(trace, plan, |_, _| CpuBaseline::new(d.clone())),
        _ => open_sessions(trace, plan, |_, sub| make_recross(sub, batch_hint)),
    }
}

/// The standard serving workload: `n` single-sample request batches, the
/// channel plan sharding them, and the batcher configuration.
fn serving_setup(
    scale: Scale,
    policy: QueuePolicy,
    seed: u64,
) -> (Trace, ChannelPlan, BatcherConfig) {
    let n = requests_for(scale);
    // One request = one sample: a trace of n single-sample batches.
    let trace = generator(scale, 64).batch_size(1).batches(n).generate(seed);
    let plan = ChannelPlan::balance_by_load(&trace, CHANNELS);
    (trace, plan, batcher_config(policy))
}

/// Deterministic arrival timestamps at the given offered rate. The same
/// base seed for every arch/rate pair, so curves differ only by rate
/// scaling and service model.
fn arrivals_at(qps: f64, n: usize, cps: f64, bursty: bool, seed: u64) -> Vec<u64> {
    let process = if bursty {
        ArrivalProcess::bursty(qps)
    } else {
        ArrivalProcess::poisson(qps)
    };
    process.timestamps(n, cps, seed ^ 0xA221)
}

/// Runs the full sweep ([`SWEEP_FRACTIONS`]): for CPU and ReCross,
/// estimate capacity, then simulate every fraction of it under the given
/// arrival process shape and dequeue policy. Deterministic in `seed`.
pub fn qps_sweep(scale: Scale, bursty: bool, policy: QueuePolicy, seed: u64) -> Vec<ArchSweep> {
    qps_sweep_at(scale, SWEEP_FRACTIONS, bursty, policy, seed)
}

/// [`qps_sweep`] over an explicit list of capacity fractions.
pub fn qps_sweep_at(
    scale: Scale,
    fractions: &[f64],
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> Vec<ArchSweep> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let (trace, plan, cfg) = serving_setup(scale, policy, seed);
    let n = trace.batches.len();
    let batch_hint = cfg.max_batch as f64;

    let mut sweeps = Vec::new();
    for arch in ["CPU", "ReCross"] {
        // One set of sessions serves the capacity estimate and every sweep
        // point; batch compositions repeating across points hit the memo.
        let mut sessions = arch_sessions(arch, &trace, &plan, batch_hint);
        let capacity = estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, &mut sessions);
        let points = fractions
            .iter()
            .map(|&fraction| {
                let qps = capacity * fraction;
                let arrivals = arrivals_at(qps, n, cps, bursty, seed);
                let report =
                    simulate_sessions(arch, &trace, &plan, &arrivals, cfg, cps, &mut sessions);
                (fraction, report)
            })
            .collect();
        sweeps.push(ArchSweep {
            arch: arch.to_string(),
            capacity_qps: capacity,
            points,
        });
    }
    sweeps
}

/// Runs the closed-loop SLO throughput search for CPU and ReCross: find
/// the highest offered QPS whose p99 latency stays within `slo_p99_us`
/// microseconds with nothing shed. The bisection bracket is
/// `[0.05, 2.0] ×` the architecture's estimated saturation rate, probed
/// for [`SLO_ITERATIONS`] halvings. Deterministic in `seed` — identical
/// invocations produce byte-identical [`SloReport`]s.
pub fn slo_search(
    scale: Scale,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
    slo_p99_us: f64,
) -> Vec<SloReport> {
    slo_search_at(scale, bursty, policy, seed, slo_p99_us, SLO_ITERATIONS)
}

/// [`slo_search`] with an explicit bisection-iteration count.
pub fn slo_search_at(
    scale: Scale,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
    slo_p99_us: f64,
    iterations: u32,
) -> Vec<SloReport> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let (trace, plan, cfg) = serving_setup(scale, policy, seed);
    let n = trace.batches.len();
    let batch_hint = cfg.max_batch as f64;

    let mut reports = Vec::new();
    for arch in ["CPU", "ReCross"] {
        // Sessions persist across all probes of the search: every probe
        // replays the same request set at a different rate, so later
        // probes price most dispatched batches straight from the memo.
        let mut sessions = arch_sessions(arch, &trace, &plan, batch_hint);
        let capacity = estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, &mut sessions);
        let report = recross_serve::slo::search(
            arch,
            slo_p99_us,
            capacity * 0.05,
            capacity * 2.0,
            iterations,
            |qps| {
                let arrivals = arrivals_at(qps, n, cps, bursty, seed);
                simulate_sessions(arch, &trace, &plan, &arrivals, cfg, cps, &mut sessions)
            },
        );
        reports.push(report);
    }
    reports
}

/// Runs the multi-tenant sweep: for CPU and ReCross, estimate aggregate
/// capacity, then serve every [`SWEEP_FRACTIONS`] fraction of it as a
/// deadline-tagged request stream generated by `mix` (each tenant drawing
/// its own share and arrival shape), through [`tenant_batcher_config`].
/// Deterministic in `seed`; the reports carry per-tenant sections.
pub fn tenant_sweep(
    scale: Scale,
    mix: &TenantMix,
    policy: QueuePolicy,
    seed: u64,
) -> Vec<ArchSweep> {
    tenant_sweep_at(scale, mix, SWEEP_FRACTIONS, policy, seed)
}

/// [`tenant_sweep`] over an explicit list of capacity fractions.
pub fn tenant_sweep_at(
    scale: Scale,
    mix: &TenantMix,
    fractions: &[f64],
    policy: QueuePolicy,
    seed: u64,
) -> Vec<ArchSweep> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let n = requests_for(scale);
    let trace = generator(scale, 64).batch_size(1).batches(n).generate(seed);
    let plan = ChannelPlan::balance_by_load(&trace, CHANNELS);
    let cfg = tenant_batcher_config(policy);
    let batch_hint = cfg.max_batch as f64;

    let mut sweeps = Vec::new();
    for arch in ["CPU", "ReCross"] {
        let mut sessions = arch_sessions(arch, &trace, &plan, batch_hint);
        let capacity = estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, &mut sessions);
        let points = fractions
            .iter()
            .map(|&fraction| {
                let qps = capacity * fraction;
                let requests = mix.requests(n, qps, cps, seed ^ 0xA221);
                let report = simulate_tenant_sessions(
                    arch, &trace, &plan, &requests, mix, cfg, cps, &mut sessions,
                );
                (fraction, report)
            })
            .collect();
        sweeps.push(ArchSweep {
            arch: arch.to_string(),
            capacity_qps: capacity,
            points,
        });
    }
    sweeps
}

/// Runs the multi-tenant SLO throughput search for CPU and ReCross: the
/// highest **aggregate** QPS at which every tenant of `mix` sheds nothing
/// and keeps its p99 latency within its own deadline. Bracket and
/// iteration budget as in [`slo_search`]. Deterministic in `seed`.
pub fn tenant_slo_search(
    scale: Scale,
    mix: &TenantMix,
    policy: QueuePolicy,
    seed: u64,
) -> Vec<TenantSloReport> {
    tenant_slo_search_at(scale, mix, policy, seed, SLO_ITERATIONS)
}

/// [`tenant_slo_search`] with an explicit bisection-iteration count.
pub fn tenant_slo_search_at(
    scale: Scale,
    mix: &TenantMix,
    policy: QueuePolicy,
    seed: u64,
    iterations: u32,
) -> Vec<TenantSloReport> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let n = requests_for(scale);
    let trace = generator(scale, 64).batch_size(1).batches(n).generate(seed);
    let plan = ChannelPlan::balance_by_load(&trace, CHANNELS);
    let cfg = tenant_batcher_config(policy);
    let batch_hint = cfg.max_batch as f64;

    let mut reports = Vec::new();
    for arch in ["CPU", "ReCross"] {
        let mut sessions = arch_sessions(arch, &trace, &plan, batch_hint);
        let capacity = estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, &mut sessions);
        let report = recross_serve::slo::search_tenants(
            arch,
            capacity * 0.05,
            capacity * 2.0,
            iterations,
            |qps| {
                let requests = mix.requests(n, qps, cps, seed ^ 0xA221);
                simulate_tenant_sessions(
                    arch, &trace, &plan, &requests, mix, cfg, cps, &mut sessions,
                )
            },
        );
        reports.push(report);
    }
    reports
}

/// The tenant classes of a mix as a JSON array (metadata echoed into the
/// tenant experiment documents).
fn mix_to_json(mix: &TenantMix) -> String {
    let classes: Vec<String> = mix
        .classes()
        .iter()
        .map(|c| {
            format!(
                "{{\"name\":{},\"share\":{},\"process\":{},\"deadline_us\":{},\"priority\":{}}}",
                json_string(&c.name),
                fmt_f64(c.share),
                json_string(c.process.kind()),
                fmt_f64(c.deadline_us),
                json_string(c.priority.kind())
            )
        })
        .collect();
    format!("[{}]", classes.join(","))
}

/// The whole sweep as one JSON document (deterministic bytes for a given
/// input — see module docs).
pub fn sweep_to_json(
    sweeps: &[ArchSweep],
    scale: Scale,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let cfg = batcher_config(policy);
    let archs: Vec<String> = sweeps
        .iter()
        .map(|s| {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|(f, r)| {
                    format!("{{\"fraction\":{},\"result\":{}}}", fmt_f64(*f), r.to_json())
                })
                .collect();
            format!(
                "{{\"arch\":{},\"capacity_qps\":{},\"points\":[{}]}}",
                json_string(&s.arch),
                fmt_f64(s.capacity_qps),
                points.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"experiment\":\"serve_qps_sweep\",\"scale\":{},",
            "\"arrival\":{},\"policy\":{},\"seed\":{},\"channels\":{},",
            "\"requests\":{},\"batcher\":{{\"max_batch\":{},",
            "\"max_linger_cycles\":{},\"queue_depth\":{}}},",
            "\"archs\":[{}]}}"
        ),
        json_string(scale_name(scale)),
        json_string(if bursty { "bursty" } else { "poisson" }),
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        cfg.max_batch,
        cfg.max_linger,
        cfg.queue_depth,
        archs.join(",")
    )
}

/// The whole SLO search as one JSON document (deterministic bytes for a
/// given input — CI byte-compares two runs).
pub fn slo_to_json(
    reports: &[SloReport],
    scale: Scale,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let archs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!(
        concat!(
            "{{\"experiment\":\"serve_slo_search\",\"scale\":{},",
            "\"arrival\":{},\"policy\":{},\"seed\":{},\"channels\":{},",
            "\"requests\":{},\"archs\":[{}]}}"
        ),
        json_string(scale_name(scale)),
        json_string(if bursty { "bursty" } else { "poisson" }),
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        archs.join(",")
    )
}

/// The whole multi-tenant sweep as one JSON document (deterministic bytes
/// for a given input — CI byte-compares two runs).
pub fn tenant_sweep_to_json(
    sweeps: &[ArchSweep],
    scale: Scale,
    mix: &TenantMix,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let cfg = tenant_batcher_config(policy);
    let archs: Vec<String> = sweeps
        .iter()
        .map(|s| {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|(f, r)| {
                    format!("{{\"fraction\":{},\"result\":{}}}", fmt_f64(*f), r.to_json())
                })
                .collect();
            format!(
                "{{\"arch\":{},\"capacity_qps\":{},\"points\":[{}]}}",
                json_string(&s.arch),
                fmt_f64(s.capacity_qps),
                points.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"experiment\":\"serve_tenant_sweep\",\"scale\":{},",
            "\"policy\":{},\"seed\":{},\"channels\":{},\"requests\":{},",
            "\"tenant_classes\":{},",
            "\"batcher\":{{\"max_batch\":{},\"max_linger_cycles\":{},",
            "\"queue_depth\":{},\"shed_expired\":{},\"adaptive_linger\":{}}},",
            "\"archs\":[{}]}}"
        ),
        json_string(scale_name(scale)),
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        mix_to_json(mix),
        cfg.max_batch,
        cfg.max_linger,
        cfg.queue_depth,
        cfg.shed_expired,
        cfg.adaptive_linger,
        archs.join(",")
    )
}

/// The whole multi-tenant SLO search as one JSON document (deterministic
/// bytes for a given input).
pub fn tenant_slo_to_json(
    reports: &[TenantSloReport],
    scale: Scale,
    mix: &TenantMix,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let archs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!(
        concat!(
            "{{\"experiment\":\"serve_tenant_slo_search\",\"scale\":{},",
            "\"policy\":{},\"seed\":{},\"channels\":{},\"requests\":{},",
            "\"tenant_classes\":{},\"archs\":[{}]}}"
        ),
        json_string(scale_name(scale)),
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        mix_to_json(mix),
        archs.join(",")
    )
}

/// How a traced point records its timeline: buffered in memory (the
/// default), streamed incrementally to a writer, aggregated online, or
/// any combination. Streaming with `buffered: false` bounds the resident
/// event memory regardless of run length.
pub struct TraceOptions {
    /// Stream the Perfetto timeline incrementally to this writer while
    /// the simulation runs (byte-identical to the in-memory export).
    pub stream: Option<Box<dyn std::io::Write>>,
    /// Run the online aggregation engine alongside the simulation.
    pub agg: bool,
    /// Retain the full event buffer in memory (needed for
    /// [`TracedPoint::perfetto`]); turn off for bounded-memory long runs.
    pub buffered: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            stream: None,
            agg: false,
            buffered: true,
        }
    }
}

impl std::fmt::Debug for TraceOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceOptions")
            .field("stream", &self.stream.is_some())
            .field("agg", &self.agg)
            .field("buffered", &self.buffered)
            .finish()
    }
}

/// One traced serving run at a single offered-load point: the ordinary
/// [`ServeReport`] (byte-identical to an untraced run of the same seed),
/// the cross-layer [`ObsReport`] with bottleneck attribution, and the
/// unified Perfetto timeline.
#[derive(Debug, Clone)]
pub struct TracedPoint {
    /// Architecture name as it appears in the reports.
    pub arch: String,
    /// Offered load as a fraction of `capacity_qps`.
    pub load: f64,
    /// Estimated saturation rate (requests/s) the load fraction scales.
    pub capacity_qps: f64,
    /// Offered rate actually simulated (`capacity_qps * load`).
    pub offered_qps: f64,
    /// Whether per-command DRAM tracks were recorded.
    pub dram_trace: bool,
    /// The ordinary serving report.
    pub report: ServeReport,
    /// The cross-layer observability report.
    pub obs: ObsReport,
    /// The Perfetto / Chrome-trace timeline, as a JSON string. `None`
    /// when the run was unbuffered (streamed to a writer instead).
    pub perfetto: Option<String>,
    /// Online aggregates, when [`TraceOptions::agg`] was on.
    pub agg: Option<recross_obs::agg::Aggregates>,
}

/// Runs one traced serving point for a single architecture at
/// `load × capacity`: the same workload, channel plan, and batcher as the
/// sweeps ([`tenant_batcher_config`] when `mix` is given, otherwise
/// [`batcher_config`]), but through the observed simulation entry points,
/// yielding a request-to-DRAM-command timeline alongside the report.
/// `dram_trace=false` keeps the request/batch timeline but skips the
/// per-command bank tracks (and re-running each batch traced).
/// Deterministic in `seed` — reruns are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn traced_point(
    scale: Scale,
    arch: &str,
    mix: Option<&TenantMix>,
    load: f64,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
    dram_trace: bool,
) -> TracedPoint {
    traced_point_with(
        scale,
        arch,
        mix,
        load,
        bursty,
        policy,
        seed,
        dram_trace,
        TraceOptions::default(),
    )
    .expect("in-memory tracing cannot fail on IO")
}

/// [`traced_point`] with explicit [`TraceOptions`]: stream the timeline
/// to a writer while the simulation runs, aggregate online, and/or drop
/// the in-memory event buffer for bounded-memory long runs. The streamed
/// bytes are byte-identical to [`TracedPoint::perfetto`] of a buffered
/// run with the same inputs. Returns `Err` only when the stream writer
/// fails.
#[allow(clippy::too_many_arguments)]
pub fn traced_point_with(
    scale: Scale,
    arch: &str,
    mix: Option<&TenantMix>,
    load: f64,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
    dram_trace: bool,
    opts: TraceOptions,
) -> std::io::Result<TracedPoint> {
    let d = dram();
    let cps = d.cycles_per_sec();
    let n = requests_for(scale);
    let trace = generator(scale, 64).batch_size(1).batches(n).generate(seed);
    let plan = ChannelPlan::balance_by_load(&trace, CHANNELS);
    let cfg = match mix {
        Some(_) => tenant_batcher_config(policy),
        None => batcher_config(policy),
    };

    let mut sessions = arch_sessions(arch, &trace, &plan, cfg.max_batch as f64);
    let capacity = estimate_capacity_qps(&trace, &plan, cfg.max_batch, cps, &mut sessions);
    let qps = capacity * load;

    let mut obs = ServeObs::new(d);
    obs.set_dram_trace(dram_trace);
    if let Some(w) = opts.stream {
        obs.stream_to(w);
    }
    if opts.agg {
        obs.enable_agg();
    }
    if !opts.buffered {
        obs.unbuffer();
    }
    let report = match mix {
        Some(m) => {
            let requests = m.requests(n, qps, cps, seed ^ 0xA221);
            simulate_tenant_sessions_obs(
                arch, &trace, &plan, &requests, m, cfg, cps, &mut sessions, &mut obs,
            )
        }
        None => {
            let arrivals = arrivals_at(qps, n, cps, bursty, seed);
            simulate_sessions_obs(arch, &trace, &plan, &arrivals, cfg, cps, &mut sessions, &mut obs)
        }
    };
    obs.finish()?;
    let obs_report = obs.obs_report(&report);
    let perfetto = opts.buffered.then(|| obs.chrome_trace_string());
    let agg = obs.aggregates();
    Ok(TracedPoint {
        arch: arch.to_string(),
        load,
        capacity_qps: capacity,
        offered_qps: qps,
        dram_trace,
        report,
        obs: obs_report,
        perfetto,
        agg,
    })
}

/// A traced point as one JSON document: the run's metadata envelope, the
/// ordinary serving report under `"serve"`, and the observability report
/// under `"obs"` (deterministic bytes for a given input — CI
/// byte-compares two runs).
pub fn traced_point_to_json(
    point: &TracedPoint,
    scale: Scale,
    mix: Option<&TenantMix>,
    bursty: bool,
    policy: QueuePolicy,
    seed: u64,
) -> String {
    let arrival = match mix {
        Some(m) => format!("\"tenant_classes\":{}", mix_to_json(m)),
        None => format!(
            "\"arrival\":{}",
            json_string(if bursty { "bursty" } else { "poisson" })
        ),
    };
    format!(
        concat!(
            "{{\"experiment\":\"serve_trace_point\",\"scale\":{},",
            "\"arch\":{},{},\"policy\":{},\"seed\":{},\"channels\":{},",
            "\"requests\":{},\"load\":{},\"capacity_qps\":{},",
            "\"offered_qps\":{},\"dram_trace\":{},",
            "\"serve\":{},\"obs\":{}}}"
        ),
        json_string(scale_name(scale)),
        json_string(&point.arch),
        arrival,
        json_string(policy.kind()),
        seed,
        CHANNELS,
        requests_for(scale),
        fmt_f64(point.load),
        fmt_f64(point.capacity_qps),
        fmt_f64(point.offered_qps),
        point.dram_trace,
        point.report.to_json(),
        point.obs.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recross_serve::{Priority, TenantClass, TenantProcess};

    fn test_mix() -> TenantMix {
        TenantMix::new(vec![
            TenantClass::new("rt", 0.7, TenantProcess::Poisson, 200.0, Priority::High),
            TenantClass::new("batch", 0.3, TenantProcess::Bursty, 5_000.0, Priority::Low),
        ])
    }

    #[test]
    fn sweep_sheds_only_past_saturation() {
        let seed = 0x5E21;
        let sweeps = qps_sweep(Scale::Tiny, false, QueuePolicy::Fifo, seed);
        assert_eq!(sweeps.len(), 2);
        for s in &sweeps {
            assert!(s.capacity_qps > 0.0, "{}: positive capacity", s.arch);
            let low = &s.points.first().expect("points").1;
            let high = &s.points.last().expect("points").1;
            assert_eq!(low.shed, 0, "{}: no shedding at 0.3x capacity", s.arch);
            assert!(high.shed > 0, "{}: overload (2x) must shed", s.arch);
            for (f, r) in &s.points {
                assert_eq!(r.requests, requests_for(Scale::Tiny) as u64);
                assert!(r.latency.quantile(0.99) > 0, "{} @ {f}: finite p99", s.arch);
            }
            // Deep queueing: p99 at 2x is no better than at 0.3x.
            assert!(
                high.latency.quantile(0.99) >= low.latency.quantile(0.99),
                "{}: overload tail dominates light load",
                s.arch
            );
        }
        // ReCross saturates at a higher rate than the CPU baseline.
        assert!(
            sweeps[1].capacity_qps > sweeps[0].capacity_qps,
            "ReCross capacity {} should beat CPU {}",
            sweeps[1].capacity_qps,
            sweeps[0].capacity_qps
        );
    }

    #[test]
    fn sweep_is_byte_identical_across_reruns() {
        let seed = 0x5E22;
        let frac = [0.4];
        let a = qps_sweep_at(Scale::Tiny, &frac, false, QueuePolicy::Fifo, seed);
        let b = qps_sweep_at(Scale::Tiny, &frac, false, QueuePolicy::Fifo, seed);
        assert_eq!(
            sweep_to_json(&a, Scale::Tiny, false, QueuePolicy::Fifo, seed),
            sweep_to_json(&b, Scale::Tiny, false, QueuePolicy::Fifo, seed)
        );
    }

    #[test]
    fn sjf_and_bursty_variants_run() {
        let sweeps = qps_sweep_at(Scale::Tiny, &[0.8], true, QueuePolicy::ShortestJobFirst, 3);
        let json = sweep_to_json(&sweeps, Scale::Tiny, true, QueuePolicy::ShortestJobFirst, 3);
        assert!(json.contains("\"arrival\":\"bursty\""));
        assert!(json.contains("\"policy\":\"sjf\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn slo_search_brackets_capacity_and_reuses_sessions() {
        // A permissive 10 ms bound: the queue's shed condition binds, so
        // the found rate sits between the bracket ends.
        let reports = slo_search_at(Scale::Tiny, false, QueuePolicy::Fifo, 0x510, 10_000.0, 6);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                r.max_qps > 0.0 && r.max_qps <= r.bracket_hi_qps,
                "{}: found rate within bracket, got {}",
                r.arch,
                r.max_qps
            );
            assert_eq!(r.probes.len() as u32, 2 + r.iterations);
            // Session reuse across probes: every probe after the first
            // replays the same request set, so the memo must hit.
            let total = r.cache_total();
            assert!(
                total.hits > 0,
                "{}: probes must share the session memo cache, stats {:?}",
                r.arch,
                total
            );
        }
        // ReCross sustains a higher SLO-compliant rate than the CPU.
        assert!(
            reports[1].max_qps > reports[0].max_qps,
            "ReCross {} should beat CPU {}",
            reports[1].max_qps,
            reports[0].max_qps
        );
    }

    #[test]
    fn slo_search_is_byte_identical_across_reruns() {
        let go = || {
            let r = slo_search_at(Scale::Tiny, false, QueuePolicy::Fifo, 0x511, 10_000.0, 4);
            slo_to_json(&r, Scale::Tiny, false, QueuePolicy::Fifo, 0x511)
        };
        let (a, b) = (go(), go());
        assert_eq!(a, b, "same seed, same bytes");
        assert!(a.contains("\"experiment\":\"serve_slo_search\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn tenant_sweep_reports_all_classes_and_balances() {
        let mix = test_mix();
        let sweeps = tenant_sweep_at(Scale::Tiny, &mix, &[0.5, 2.0], QueuePolicy::Edf, 0x77);
        assert_eq!(sweeps.len(), 2);
        for s in &sweeps {
            for (_, r) in &s.points {
                assert_eq!(r.tenants.len(), 2);
                assert_eq!(r.tenants[0].name, "rt");
                assert_eq!(r.tenants[1].name, "batch");
                let mut total = 0;
                for t in &r.tenants {
                    assert_eq!(
                        t.requests,
                        t.completed + t.missed + t.queue_shed + t.deadline_shed,
                        "{}: tenant counters partition",
                        s.arch
                    );
                    total += t.requests;
                }
                assert_eq!(total, r.requests);
            }
        }
    }

    #[test]
    fn tenant_sweep_is_byte_identical_across_reruns() {
        let mix = test_mix();
        let go = || {
            let s = tenant_sweep_at(Scale::Tiny, &mix, &[0.8], QueuePolicy::Edf, 0x78);
            tenant_sweep_to_json(&s, Scale::Tiny, &mix, QueuePolicy::Edf, 0x78)
        };
        let (a, b) = (go(), go());
        assert_eq!(a, b, "same seed, same bytes");
        assert!(a.contains("\"experiment\":\"serve_tenant_sweep\""));
        assert!(a.contains("\"tenant_classes\":[{\"name\":\"rt\""));
        assert!(a.contains("\"policy\":\"edf\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn traced_point_matches_untraced_sweep_point() {
        // The traced run and the plain sweep at the same fraction must
        // price identically: tracing never perturbs the simulation.
        let (seed, load) = (0x90, 0.8);
        let p = traced_point(
            Scale::Tiny,
            "ReCross",
            None,
            load,
            false,
            QueuePolicy::Fifo,
            seed,
            true,
        );
        let sweeps = qps_sweep_at(Scale::Tiny, &[load], false, QueuePolicy::Fifo, seed);
        let plain = &sweeps[1]; // [CPU, ReCross]
        assert_eq!(plain.arch, "ReCross");
        assert_eq!(p.capacity_qps, plain.capacity_qps);
        assert_eq!(p.report.to_json(), plain.points[0].1.to_json());
        // The obs side is consistent with the report.
        assert_eq!(p.obs.requests, p.report.requests);
        assert_eq!(p.obs.channels.len(), CHANNELS);
        let perfetto = p.perfetto.as_deref().expect("buffered run keeps the timeline");
        assert!(perfetto.contains("\"ph\":\"X\""));
        assert!(perfetto.contains("rank 0 / bg 0 / bank 0"));
    }

    #[test]
    fn traced_tenant_point_is_byte_identical_across_reruns() {
        let mix = test_mix();
        let go = || {
            let p = traced_point(
                Scale::Tiny,
                "CPU",
                Some(&mix),
                1.2,
                false,
                QueuePolicy::Edf,
                0x91,
                false,
            );
            (
                traced_point_to_json(&p, Scale::Tiny, Some(&mix), false, QueuePolicy::Edf, 0x91),
                p.perfetto.expect("buffered run keeps the timeline"),
            )
        };
        let (a, b) = (go(), go());
        assert_eq!(a.0, b.0, "same seed, same report bytes");
        assert_eq!(a.1, b.1, "same seed, same timeline bytes");
        assert!(a.0.contains("\"experiment\":\"serve_trace_point\""));
        assert!(a.0.contains("\"tenant_classes\":[{\"name\":\"rt\""));
        assert!(a.0.contains("\"dram_trace\":false"));
        assert_eq!(a.0.matches('{').count(), a.0.matches('}').count());
        // Timeline-only mode: no per-command bank tracks.
        assert!(a.1.contains("tenant: rt"));
        assert!(!a.1.contains("bank 0"));
    }

    #[test]
    fn streamed_point_is_byte_identical_to_buffered_with_bounded_memory() {
        use recross_obs::SharedWriter;

        let run = |opts: TraceOptions| {
            traced_point_with(
                Scale::Tiny,
                "CPU",
                Some(&test_mix()),
                1.2,
                false,
                QueuePolicy::Edf,
                0x92,
                true,
                opts,
            )
            .expect("stream writer cannot fail")
        };

        let buffered = run(TraceOptions::default());
        let perfetto = buffered.perfetto.as_deref().expect("buffered");

        let out = SharedWriter::new();
        let streamed = run(TraceOptions {
            stream: Some(Box::new(out.clone())),
            agg: true,
            buffered: false,
        });

        // The simulation itself is identical either way…
        assert_eq!(streamed.report.to_json(), buffered.report.to_json());
        // …the streamed file is byte-identical to the in-memory export…
        assert_eq!(out.contents(), perfetto);
        assert!(streamed.perfetto.is_none(), "unbuffered run retains no timeline");
        // …and nothing was dropped. The streamed run retains no event
        // buffer at all (no memory sink; `recross_obs` asserts the
        // chunk-bounded event buffer directly at 50k events), so its
        // resident heap is string tables + the fixed stream chunk: at
        // most a chunk-scale envelope over the buffered run even at this
        // tiny scale, and independent of run length where the buffered
        // footprint grows with every event.
        assert!(streamed.obs.sinks.iter().all(|s| s.dropped == 0));
        assert!(streamed.obs.sinks.iter().all(|s| s.kind != "memory"));
        assert!(
            streamed.obs.heap_capacity
                < buffered.obs.heap_capacity + 3 * recross_obs::STREAM_CHUNK,
            "streamed heap {} should stay within a chunk-scale envelope of buffered heap {}",
            streamed.obs.heap_capacity,
            buffered.obs.heap_capacity
        );
        // The online aggregates carry the per-tenant story the dropped
        // buffer would have: fates partition the request count.
        let agg = streamed.agg.as_ref().expect("agg enabled");
        let total: u64 = agg.tenants.iter().map(|t| t.requests()).sum();
        assert_eq!(total, streamed.report.requests);
    }

    #[test]
    fn tenant_slo_search_finds_rate_and_is_deterministic() {
        // Lax deadlines (200 µs / 5 ms): the capacity knee, not the
        // deadline, binds — so a positive aggregate rate exists.
        let mix = test_mix();
        let go = || {
            let r = tenant_slo_search_at(Scale::Tiny, &mix, QueuePolicy::Edf, 0x79, 4);
            tenant_slo_to_json(&r, Scale::Tiny, &mix, QueuePolicy::Edf, 0x79)
        };
        let reports = tenant_slo_search_at(Scale::Tiny, &mix, QueuePolicy::Edf, 0x79, 4);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                r.max_qps > 0.0 && r.max_qps <= r.bracket_hi_qps,
                "{}: aggregate rate within bracket, got {}",
                r.arch,
                r.max_qps
            );
            for p in &r.probes {
                assert_eq!(p.tenants.len(), 2, "verdict per class");
            }
        }
        assert_eq!(go(), go(), "same seed, same bytes");
    }
}
