//! A minimal wall-clock bench harness.
//!
//! The container this reproduction builds in has no network access, so the
//! bench binaries cannot depend on criterion; this module provides the small
//! subset we need — warmup, repeated timed runs, median/min/mean reporting —
//! with zero dependencies. `cargo bench` drives the same bench files as
//! before.

use std::hint::black_box;
use std::time::Instant;

/// Result of timing one benchmark function.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks (mirrors criterion's `benchmark_group`).
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group with the default sample count (10).
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Self {
            name: name.to_owned(),
            samples: 10,
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing one line, and returns the measurement. The return
    /// value of `f` is black-boxed so the work is not optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        // One warmup run (also primes caches/allocations).
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let m = Measurement {
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            samples: times.len(),
        };
        println!(
            "  {:<32} median {:>12}  min {:>12}  mean {:>12}  ({} samples)",
            format!("{}/{}", self.name, name),
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            fmt_ns(m.mean_ns),
            m.samples
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let mut g = BenchGroup::new("test");
        g.sample_size(3);
        let m = g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.min_ns > 0.0);
        assert!(m.median_ns >= m.min_ns);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn formatting_covers_ranges() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5e3).ends_with("us"));
        assert!(fmt_ns(5e6).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with(" s"));
    }
}
