//! Flag parsing for the `repro` binary's `serve` experiment.
//!
//! The binary's convention: a malformed option prints one clear line to
//! stderr and exits with status 2. Keeping the parsing here, returning
//! `Result<_, String>` with the exact message, makes every error path unit
//! testable without spawning the binary.

/// Default `--seed` when none is given (shared with the sweep tests).
pub const DEFAULT_SEED: u64 = 0x5E21;

/// Default `--slo-p99` bound in microseconds when `--slo-search` is
/// requested without one.
pub const DEFAULT_SLO_P99_US: f64 = 100.0;

/// The value of a `--key=value` option, if present (last wins).
pub fn value_of<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    args.iter()
        .rev()
        .find_map(|a| a.strip_prefix(prefix.as_str()))
}

/// Parses `--seed=N` (defaulting to [`DEFAULT_SEED`]).
pub fn parse_seed(args: &[String]) -> Result<u64, String> {
    match value_of(args, "--seed") {
        None => Ok(DEFAULT_SEED),
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("--seed expects an unsigned integer, got {s:?}")),
    }
}

/// Parses `--slo-p99=MICROSECONDS` (defaulting to [`DEFAULT_SLO_P99_US`]).
/// The bound must be a finite, strictly positive latency.
pub fn parse_slo_p99(args: &[String]) -> Result<f64, String> {
    match value_of(args, "--slo-p99") {
        None => Ok(DEFAULT_SLO_P99_US),
        Some(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
            _ => Err(format!(
                "--slo-p99 expects a positive latency bound in microseconds, got {s:?}"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn seed_parses_and_defaults() {
        assert_eq!(parse_seed(&args(&["serve"])), Ok(DEFAULT_SEED));
        assert_eq!(parse_seed(&args(&["--seed=42"])), Ok(42));
        // Last occurrence wins, matching common CLI behavior.
        assert_eq!(parse_seed(&args(&["--seed=1", "--seed=2"])), Ok(2));
        let err = parse_seed(&args(&["--seed=banana"])).unwrap_err();
        assert_eq!(err, "--seed expects an unsigned integer, got \"banana\"");
        assert!(parse_seed(&args(&["--seed=-3"])).is_err());
    }

    #[test]
    fn slo_p99_parses_and_defaults() {
        assert_eq!(parse_slo_p99(&args(&["serve"])), Ok(DEFAULT_SLO_P99_US));
        assert_eq!(parse_slo_p99(&args(&["--slo-p99=250"])), Ok(250.0));
        assert_eq!(parse_slo_p99(&args(&["--slo-p99=12.5"])), Ok(12.5));
    }

    #[test]
    fn slo_p99_rejects_malformed_and_non_positive() {
        for bad in ["banana", "0", "-5", "nan", "inf", ""] {
            let err = parse_slo_p99(&args(&[&format!("--slo-p99={bad}")])).unwrap_err();
            assert_eq!(
                err,
                format!("--slo-p99 expects a positive latency bound in microseconds, got {bad:?}"),
            );
        }
    }

    #[test]
    fn value_of_ignores_other_flags() {
        let a = args(&["--quick", "serve", "--out=/tmp/x.json"]);
        assert_eq!(value_of(&a, "--out"), Some("/tmp/x.json"));
        assert_eq!(value_of(&a, "--seed"), None);
    }
}
