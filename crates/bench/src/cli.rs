//! Flag parsing for the `repro` binary's `serve` experiment.
//!
//! The binary's convention: a malformed option prints one clear line to
//! stderr and exits with status 2. Keeping the parsing here, returning
//! `Result<_, String>` with the exact message, makes every error path unit
//! testable without spawning the binary.
//!
//! The `--tenants` grammar is documented on [`parse_tenants`].

use recross_serve::{Priority, TenantClass, TenantMix, TenantProcess};

/// Default `--seed` when none is given (shared with the sweep tests).
pub const DEFAULT_SEED: u64 = 0x5E21;

/// Default `--slo-p99` bound in microseconds when `--slo-search` is
/// requested without one.
pub const DEFAULT_SLO_P99_US: f64 = 100.0;

/// The value of a `--key=value` option, if present (last wins).
pub fn value_of<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    args.iter()
        .rev()
        .find_map(|a| a.strip_prefix(prefix.as_str()))
}

/// Parses `--seed=N` (defaulting to [`DEFAULT_SEED`]).
pub fn parse_seed(args: &[String]) -> Result<u64, String> {
    match value_of(args, "--seed") {
        None => Ok(DEFAULT_SEED),
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("--seed expects an unsigned integer, got {s:?}")),
    }
}

/// Parses `--slo-p99=MICROSECONDS` (defaulting to [`DEFAULT_SLO_P99_US`]).
/// The bound must be a finite, strictly positive latency.
pub fn parse_slo_p99(args: &[String]) -> Result<f64, String> {
    match value_of(args, "--slo-p99") {
        None => Ok(DEFAULT_SLO_P99_US),
        Some(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
            _ => Err(format!(
                "--slo-p99 expects a positive latency bound in microseconds, got {s:?}"
            )),
        },
    }
}

/// Default `--load` fraction of estimated capacity for traced
/// single-point runs.
pub const DEFAULT_LOAD: f64 = 0.9;

/// Parses `--arch=NAME` — the accelerator substrate for single-point
/// runs. Accepts `cpu` or `recross` (case-insensitive), returning the
/// canonical report label; defaults to `"ReCross"`.
pub fn parse_arch(args: &[String]) -> Result<&'static str, String> {
    match value_of(args, "--arch") {
        None => Ok("ReCross"),
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "cpu" => Ok("CPU"),
            "recross" => Ok("ReCross"),
            _ => Err(format!("--arch expects cpu|recross, got {s:?}")),
        },
    }
}

/// Parses `--load=FRACTION` (defaulting to [`DEFAULT_LOAD`]) — the
/// offered load as a fraction of the substrate's estimated capacity.
/// Must be finite and strictly positive; values above 1 deliberately
/// overload the server.
pub fn parse_load(args: &[String]) -> Result<f64, String> {
    match value_of(args, "--load") {
        None => Ok(DEFAULT_LOAD),
        Some(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
            _ => Err(format!(
                "--load expects a positive capacity fraction, got {s:?}"
            )),
        },
    }
}

/// Where `--obs-summary` sends the [`ObsReport`](recross_serve::ObsReport)
/// JSON: nowhere (flag absent), stdout (bare flag), or a file
/// (`--obs-summary=FILE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsSummary<'a> {
    /// Flag absent — no summary emitted.
    Off,
    /// Bare `--obs-summary` — print the JSON to stdout.
    Stdout,
    /// `--obs-summary=FILE` — write the JSON to this path.
    File(&'a str),
}

/// Parses `--obs-summary` / `--obs-summary=FILE`. A file form anywhere
/// wins over a bare flag (last file wins, matching [`value_of`]).
pub fn parse_obs_summary(args: &[String]) -> ObsSummary<'_> {
    if let Some(path) = value_of(args, "--obs-summary") {
        ObsSummary::File(path)
    } else if args.iter().any(|a| a == "--obs-summary") {
        ObsSummary::Stdout
    } else {
        ObsSummary::Off
    }
}

/// Parses a deadline literal: a positive decimal number immediately
/// followed by a unit — `us`, `ms`, or `s` — e.g. `200us`, `2.5ms`, `1s`.
/// Returns the value in microseconds.
fn parse_deadline_us(s: &str) -> Result<f64, String> {
    let (number, factor) = if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e6)
    } else {
        return Err(format!(
            "deadline needs a unit suffix (us|ms|s), got {s:?}"
        ));
    };
    match number.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v * factor),
        _ => Err(format!("deadline must be a positive number, got {s:?}")),
    }
}

/// Parses one tenant class: `name:share:process:deadline:priority`.
fn parse_tenant_class(spec: &str) -> Result<TenantClass, String> {
    let fields: Vec<&str> = spec.split(':').collect();
    let [name, share, process, deadline, priority] = fields.as_slice() else {
        return Err(format!(
            "tenant class needs name:share:process:deadline:priority, got {spec:?}"
        ));
    };
    if name.is_empty() {
        return Err(format!("tenant name must be non-empty in {spec:?}"));
    }
    let share = match share.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => v,
        _ => {
            return Err(format!(
                "tenant share must be a positive number, got {share:?} in {spec:?}"
            ))
        }
    };
    let process = TenantProcess::parse(process).ok_or_else(|| {
        format!("tenant process must be poisson|bursty|mmpp, got {process:?} in {spec:?}")
    })?;
    let deadline_us =
        parse_deadline_us(deadline).map_err(|e| format!("{e} in {spec:?}"))?;
    let priority = Priority::parse(priority).ok_or_else(|| {
        format!("tenant priority must be high|normal|low, got {priority:?} in {spec:?}")
    })?;
    Ok(TenantClass::new(*name, share, process, deadline_us, priority))
}

/// Parses `--tenants=SPEC` into a [`TenantMix`]; `Ok(None)` when the flag
/// is absent.
///
/// `SPEC` is a comma-separated list of tenant classes, each
/// `name:share:process:deadline:priority`:
///
/// * `name` — non-empty label, unique within the mix;
/// * `share` — positive traffic share (normalized by the sum of shares);
/// * `process` — `poisson`, `bursty`, or `mmpp` (alias of `bursty`);
/// * `deadline` — positive number with unit `us`, `ms`, or `s`;
/// * `priority` — `high`, `normal`, or `low`.
///
/// Example: `rt:0.7:poisson:200us:high,batch:0.3:mmpp:5ms:low`.
pub fn parse_tenants(args: &[String]) -> Result<Option<TenantMix>, String> {
    let Some(spec) = value_of(args, "--tenants") else {
        return Ok(None);
    };
    if spec.is_empty() {
        return Err("--tenants expects at least one tenant class".to_string());
    }
    let mut classes = Vec::new();
    for part in spec.split(',') {
        let class = parse_tenant_class(part).map_err(|e| format!("--tenants: {e}"))?;
        if classes.iter().any(|c: &TenantClass| c.name == class.name) {
            return Err(format!("--tenants: duplicate tenant name {:?}", class.name));
        }
        classes.push(class);
    }
    Ok(Some(TenantMix::new(classes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn seed_parses_and_defaults() {
        assert_eq!(parse_seed(&args(&["serve"])), Ok(DEFAULT_SEED));
        assert_eq!(parse_seed(&args(&["--seed=42"])), Ok(42));
        // Last occurrence wins, matching common CLI behavior.
        assert_eq!(parse_seed(&args(&["--seed=1", "--seed=2"])), Ok(2));
        let err = parse_seed(&args(&["--seed=banana"])).unwrap_err();
        assert_eq!(err, "--seed expects an unsigned integer, got \"banana\"");
        assert!(parse_seed(&args(&["--seed=-3"])).is_err());
    }

    #[test]
    fn slo_p99_parses_and_defaults() {
        assert_eq!(parse_slo_p99(&args(&["serve"])), Ok(DEFAULT_SLO_P99_US));
        assert_eq!(parse_slo_p99(&args(&["--slo-p99=250"])), Ok(250.0));
        assert_eq!(parse_slo_p99(&args(&["--slo-p99=12.5"])), Ok(12.5));
    }

    #[test]
    fn slo_p99_rejects_malformed_and_non_positive() {
        for bad in ["banana", "0", "-5", "nan", "inf", ""] {
            let err = parse_slo_p99(&args(&[&format!("--slo-p99={bad}")])).unwrap_err();
            assert_eq!(
                err,
                format!("--slo-p99 expects a positive latency bound in microseconds, got {bad:?}"),
            );
        }
    }

    #[test]
    fn arch_parses_and_defaults() {
        assert_eq!(parse_arch(&args(&["serve"])), Ok("ReCross"));
        assert_eq!(parse_arch(&args(&["--arch=cpu"])), Ok("CPU"));
        assert_eq!(parse_arch(&args(&["--arch=CPU"])), Ok("CPU"));
        assert_eq!(parse_arch(&args(&["--arch=ReCross"])), Ok("ReCross"));
        let err = parse_arch(&args(&["--arch=tpu"])).unwrap_err();
        assert_eq!(err, "--arch expects cpu|recross, got \"tpu\"");
    }

    #[test]
    fn load_parses_and_defaults() {
        assert_eq!(parse_load(&args(&["serve"])), Ok(DEFAULT_LOAD));
        assert_eq!(parse_load(&args(&["--load=0.5"])), Ok(0.5));
        // Overload points are allowed: that is where shedding happens.
        assert_eq!(parse_load(&args(&["--load=1.4"])), Ok(1.4));
        for bad in ["banana", "0", "-1", "nan", "inf", ""] {
            let err = parse_load(&args(&[&format!("--load={bad}")])).unwrap_err();
            assert_eq!(
                err,
                format!("--load expects a positive capacity fraction, got {bad:?}"),
            );
        }
    }

    #[test]
    fn obs_summary_three_forms() {
        assert_eq!(parse_obs_summary(&args(&["serve"])), ObsSummary::Off);
        assert_eq!(
            parse_obs_summary(&args(&["serve", "--obs-summary"])),
            ObsSummary::Stdout
        );
        assert_eq!(
            parse_obs_summary(&args(&["--obs-summary=/tmp/o.json"])),
            ObsSummary::File("/tmp/o.json")
        );
        // The file form wins over a bare flag regardless of order.
        assert_eq!(
            parse_obs_summary(&args(&["--obs-summary", "--obs-summary=x.json"])),
            ObsSummary::File("x.json")
        );
    }

    #[test]
    fn tenants_absent_is_none() {
        assert_eq!(parse_tenants(&args(&["serve", "--seed=1"])), Ok(None));
    }

    #[test]
    fn tenants_parse_full_grammar() {
        let mix = parse_tenants(&args(&[
            "--tenants=rt:0.7:poisson:200us:high,batch:0.3:mmpp:5ms:low",
        ]))
        .unwrap()
        .unwrap();
        let classes = mix.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "rt");
        assert_eq!(classes[0].share, 0.7);
        assert_eq!(classes[0].process, TenantProcess::Poisson);
        assert_eq!(classes[0].deadline_us, 200.0);
        assert_eq!(classes[0].priority, Priority::High);
        assert_eq!(classes[1].name, "batch");
        assert_eq!(classes[1].process, TenantProcess::Bursty, "mmpp aliases bursty");
        assert_eq!(classes[1].deadline_us, 5_000.0);
        assert_eq!(classes[1].priority, Priority::Low);
    }

    #[test]
    fn tenants_deadline_units() {
        let mix = |spec: &str| {
            parse_tenants(&args(&[&format!("--tenants={spec}")]))
                .unwrap()
                .unwrap()
        };
        assert_eq!(mix("a:1:poisson:250us:normal").classes()[0].deadline_us, 250.0);
        assert_eq!(mix("a:1:poisson:2.5ms:normal").classes()[0].deadline_us, 2_500.0);
        assert_eq!(mix("a:1:poisson:1s:normal").classes()[0].deadline_us, 1e6);
    }

    #[test]
    fn tenants_reject_malformed_specs() {
        let err = |spec: &str| {
            parse_tenants(&args(&[&format!("--tenants={spec}")])).unwrap_err()
        };
        assert!(err("").contains("at least one tenant class"));
        assert!(err("rt:0.7:poisson:200us").contains("name:share:process:deadline:priority"));
        assert!(err("rt:zero:poisson:200us:high").contains("share must be a positive number"));
        assert!(err("rt:-1:poisson:200us:high").contains("share must be a positive number"));
        assert!(err("rt:0.7:uniform:200us:high").contains("poisson|bursty|mmpp"));
        assert!(err("rt:0.7:poisson:200:high").contains("unit suffix"));
        assert!(err("rt:0.7:poisson:-5us:high").contains("positive number"));
        assert!(err("rt:0.7:poisson:200us:urgent").contains("high|normal|low"));
        assert!(err("rt:1:poisson:200us:high,rt:1:poisson:300us:low")
            .contains("duplicate tenant name"));
    }

    #[test]
    fn value_of_ignores_other_flags() {
        let a = args(&["--quick", "serve", "--out=/tmp/x.json"]);
        assert_eq!(value_of(&a, "--out"), Some("/tmp/x.json"));
        assert_eq!(value_of(&a, "--seed"), None);
    }
}
