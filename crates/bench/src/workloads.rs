//! Standard workload configurations for the experiment harness.
//!
//! Two scales are provided: [`Scale::Paper`] uses the full Criteo-Kaggle
//! cardinalities and the paper's §5.1 defaults (pooling 80, batch 32);
//! [`Scale::Quick`] shrinks tables and trace length so criterion benches and
//! smoke runs finish in seconds while preserving the skew structure.

use recross_dram::DramConfig;
use recross_workload::{Trace, TraceGenerator};

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full Criteo-Kaggle cardinalities, paper-default trace sizes.
    Paper,
    /// 1/100 cardinalities, short traces (for benches and smoke tests).
    Quick,
    /// 1/1000 cardinalities, very short traces (criterion micro-runs).
    Tiny,
}

impl Scale {
    /// Batches to simulate.
    pub fn batches(self) -> usize {
        match self {
            Scale::Paper => 2,
            Scale::Quick | Scale::Tiny => 1,
        }
    }

    /// Table down-scaling factor.
    pub fn table_factor(self) -> u64 {
        match self {
            Scale::Paper => 1,
            Scale::Quick => 100,
            Scale::Tiny => 1_000,
        }
    }

    /// Default batch size (paper §5.1: 32).
    pub fn batch_size(self) -> usize {
        match self {
            Scale::Paper => 32,
            Scale::Quick => 8,
            Scale::Tiny => 2,
        }
    }

    /// Default pooling factor (paper §5.1: 80).
    pub fn pooling(self) -> u32 {
        match self {
            Scale::Paper => 80,
            Scale::Quick => 40,
            Scale::Tiny => 20,
        }
    }
}

/// The standard generator for a given vector length and scale.
pub fn generator(scale: Scale, dim: u32) -> TraceGenerator {
    let g = match scale {
        Scale::Paper => TraceGenerator::criteo_kaggle(dim),
        Scale::Quick | Scale::Tiny => TraceGenerator::criteo_scaled(dim, scale.table_factor()),
    };
    g.batch_size(scale.batch_size())
        .pooling(scale.pooling())
        .batches(scale.batches())
}

/// The standard trace (dim 64 unless specified) with the canonical seed.
pub fn standard_trace(scale: Scale, dim: u32) -> (TraceGenerator, Trace) {
    let g = generator(scale, dim);
    let t = g.generate(0xD17A);
    (g, t)
}

/// The Table 2 DRAM system.
pub fn dram() -> DramConfig {
    DramConfig::ddr5_4800()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        let (_, t) = standard_trace(Scale::Quick, 16);
        assert!(t.lookups() < 20_000);
    }

    #[test]
    fn paper_scale_uses_full_tables() {
        let g = generator(Scale::Paper, 64);
        assert!(g.tables().iter().any(|t| t.rows > 10_000_000));
    }
}
