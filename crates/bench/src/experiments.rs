//! One runner per paper table/figure, returning structured rows.
//!
//! Each function regenerates the data behind one figure or table of the
//! paper's evaluation (§5). The `repro` binary prints these rows; the
//! criterion benches time them on the quick scale. Absolute values are our
//! simulator's, not the authors' testbed's — EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use recross::config::ReCrossConfig;
use recross::engine::ReCross;
use recross::profile::analytic_profiles;
use recross::RegionMap;
use recross_dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_dram::{DramConfig, PhysAddr};
use recross_nmp::accel::{EmbeddingAccelerator, RunReport};
use recross_nmp::layout::TableLayout;
use recross_nmp::{
    internal_bandwidth, AccessProfile, AreaModel, AreaReport, CpuBaseline, RecNmp, TensorDimm, Trim,
};
use recross_workload::stats::{trace_imbalance, ImbalanceSummary};
use recross_workload::{Trace, TraceGenerator};

use crate::workloads::{dram, generator, standard_trace, Scale};

/// All six architectures' reports for one trace (CPU first).
///
/// The ReCross system is built from analytic profiles of the generator and
/// the TRiM variants get the trace-derived replication profile, as in §5.1.
pub fn run_all(g: &TraceGenerator, trace: &Trace, dram_cfg: &DramConfig) -> Vec<RunReport> {
    let profile = AccessProfile::from_trace(trace);
    let profiles = analytic_profiles(g);
    let batch = g.batch_size_value() as f64;
    let mut out = Vec::with_capacity(6);
    out.push(CpuBaseline::new(dram_cfg.clone()).run(trace));
    out.push(TensorDimm::new(dram_cfg.clone()).run(trace));
    out.push(RecNmp::new(dram_cfg.clone()).run(trace));
    out.push(
        Trim::bank_group(dram_cfg.clone())
            .with_profile(profile.clone())
            .run(trace),
    );
    out.push(
        Trim::bank(dram_cfg.clone())
            .with_profile(profile)
            .run(trace),
    );
    let mut cfg = ReCrossConfig::default_d(dram_cfg.clone());
    cfg.name = "ReCross".to_owned();
    let mut rc = ReCross::new(cfg, profiles, batch).expect("placement fits");
    out.push(rc.run(trace));
    out
}

/// Figure 3: cumulative access share vs fraction of rows, per table.
///
/// Returns `(table index, Vec<(p, f(p))>)` rows.
pub fn fig3_access_cdf(scale: Scale, points: usize) -> Vec<(usize, Vec<(f64, f64)>)> {
    let g = generator(scale, 64);
    g.distributions()
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.cdf_series(points)))
        .collect()
}

/// Figure 4: load-imbalance summaries per NMP level for 2/4/8 ranks.
///
/// Returns `(ranks, level name, summary)` rows, using the baselines'
/// contiguous layout (row index = memory offset).
pub fn fig4_imbalance(scale: Scale) -> Vec<(u32, &'static str, ImbalanceSummary)> {
    let mut rows = Vec::new();
    for ranks in [2u32, 4, 8] {
        let cfg = dram().with_ranks(ranks);
        let topo = cfg.topology;
        let (_, trace) = standard_trace(scale, 64);
        let layout = TableLayout::pack(topo, &trace.tables, 0);
        type NodeOf = Box<dyn Fn(&PhysAddr) -> usize>;
        let levels: [(&str, NodeOf, usize); 3] = [
            ("rank", Box::new(move |a| a.rank as usize), ranks as usize),
            (
                "bank-group",
                Box::new(move |a| a.flat_bank_group(&topo) as usize),
                (ranks * topo.bank_groups) as usize,
            ),
            (
                "bank",
                Box::new(move |a| a.flat_bank(&topo) as usize),
                topo.banks_per_channel() as usize,
            ),
        ];
        for (name, node_of, nodes) in levels {
            let summary =
                trace_imbalance(&trace, nodes, |t, row| node_of(&layout.locate(t, row).addr));
            rows.push((ranks, name, summary));
        }
    }
    rows
}

/// Figure 5: normalized speedup over 2-rank rank-level NMP, plus internal
/// bandwidth, per NMP level and rank count. Rows:
/// `(ranks, level, speedup, internal bandwidth B/cyc)`.
pub fn fig5_levels(scale: Scale) -> Vec<(u32, &'static str, f64, f64)> {
    let mut rows = Vec::new();
    let mut baseline_ns = None;
    for ranks in [2u32, 4, 8] {
        let cfg = dram().with_ranks(ranks);
        let (_, trace) = standard_trace(scale, 64);
        let runs: [(&str, RunReport, BusScope); 3] = [
            (
                "rank",
                RecNmp::new(cfg.clone()).with_cache_bytes(0).run(&trace),
                BusScope::Rank,
            ),
            (
                "bank-group",
                Trim::bank_group(cfg.clone())
                    .with_replication(0.0, 1)
                    .run(&trace),
                BusScope::BankGroup,
            ),
            (
                "bank",
                Trim::bank(cfg.clone()).with_replication(0.0, 1).run(&trace),
                BusScope::Bank,
            ),
        ];
        for (name, report, scope) in runs {
            let base = *baseline_ns.get_or_insert(report.ns);
            rows.push((
                ranks,
                name,
                base / report.ns,
                internal_bandwidth(&cfg, scope),
            ));
        }
    }
    rows
}

/// Figure 6: the command timeline of four successive reads to two banks at
/// (a) bank-group level, (b) bank level, (c) subarray-parallel bank level.
/// Returns `(mode, Vec<printable command lines>)`.
pub fn fig6_timeline() -> Vec<(&'static str, Vec<String>)> {
    let cfg = dram();
    let addr = |bank: u32, row: u32| PhysAddr {
        channel: 0,
        rank: 0,
        bank_group: 0,
        bank,
        row,
        col_byte: 0,
    };
    // Four accesses: two per bank, different rows (the Figure 6 setup), to
    // two banks of one bank group. Rows chosen in different subarrays so
    // mode (c) can overlap.
    let accesses = [addr(0, 0), addr(1, 256), addr(0, 512), addr(1, 768)];
    let modes: [(&str, BusScope, bool, SchedulePolicy); 3] = [
        (
            "(a) bank-group-level NMP",
            BusScope::BankGroup,
            false,
            SchedulePolicy::FrFcfs,
        ),
        (
            "(b) bank-level NMP",
            BusScope::Bank,
            false,
            SchedulePolicy::FrFcfs,
        ),
        (
            "(c) subarray-parallel bank-level NMP",
            BusScope::Bank,
            true,
            SchedulePolicy::LocalityAware,
        ),
    ];
    let mut out = Vec::new();
    for (name, dest, salp, policy) in modes {
        let mut ctl = Controller::new(cfg.clone(), policy);
        ctl.record_trace();
        for (i, a) in accesses.iter().enumerate() {
            ctl.enqueue(ReadRequest {
                id: i as u64,
                addr: *a,
                bursts: 4,
                ready_at: 0,
                dest,
                salp,
                auto_precharge: !salp,
                write: false,
            });
        }
        let done = ctl.run();
        let mut lines: Vec<String> = ctl
            .trace()
            .expect("trace recording enabled")
            .iter()
            .map(|ic| ic.to_string())
            .collect();
        lines.push(format!(
            "all four accesses done at cycle {}",
            done.iter().map(|c| c.done_at).max().unwrap_or(0)
        ));
        out.push((name, lines));
    }
    out
}

/// Figure 9: speedups over CPU vs embedding vector length. Rows:
/// `(vlen, Vec<(arch, speedup)>)`.
pub fn fig9_vector_length(scale: Scale) -> Vec<(u32, Vec<(String, f64)>)> {
    [16u32, 32, 64, 128, 256]
        .iter()
        .map(|&dim| {
            let g = generator(scale, dim);
            let trace = g.generate(0xD17A);
            // dim-256 tables reach ~35 GB at full Criteo scale; use the
            // double-density device so they fit one channel (the paper's
            // §2.2 notes DDR5 devices reach 64 Gb for exactly this reason).
            let mut d = dram();
            if dim >= 256 && scale == Scale::Paper {
                d.topology.rows_per_bank *= 2;
            }
            let reports = run_all(&g, &trace, &d);
            let cpu_ns = reports[0].ns;
            (
                dim,
                reports
                    .into_iter()
                    .map(|r| (r.name.clone(), cpu_ns / r.ns))
                    .collect(),
            )
        })
        .collect()
}

/// Figure 10: speedups over CPU vs batch size (vlen 64). Rows:
/// `(batch, Vec<(arch, speedup)>)`.
pub fn fig10_batch_size(scale: Scale) -> Vec<(usize, Vec<(String, f64)>)> {
    [1usize, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&batch| {
            let g = generator(scale, 64).batch_size(batch);
            let trace = g.generate(0xD17A);
            let reports = run_all(&g, &trace, &dram());
            let cpu_ns = reports[0].ns;
            (
                batch,
                reports
                    .into_iter()
                    .map(|r| (r.name.clone(), cpu_ns / r.ns))
                    .collect(),
            )
        })
        .collect()
}

/// Figure 11: speedups over CPU vs rank count (vlen 64, batch default).
/// Rows: `(ranks, Vec<(arch, speedup)>)`.
pub fn fig11_rank_count(scale: Scale) -> Vec<(u32, Vec<(String, f64)>)> {
    [2u32, 4, 8]
        .iter()
        .map(|&ranks| {
            let g = generator(scale, 64);
            let trace = g.generate(0xD17A);
            let reports = run_all(&g, &trace, &dram().with_ranks(ranks));
            let cpu_ns = reports[0].ns;
            (
                ranks,
                reports
                    .into_iter()
                    .map(|r| (r.name.clone(), cpu_ns / r.ns))
                    .collect(),
            )
        })
        .collect()
}

/// Figure 12: the optimization ablation — Base, +SAP, +BWP, +LAS —
/// as speedups over the CPU baseline. Rows: `(variant, speedup)`.
pub fn fig12_ablation(scale: Scale) -> Vec<(String, f64)> {
    let (g, trace) = standard_trace(scale, 64);
    let d = dram();
    let cpu = CpuBaseline::new(d.clone()).run(&trace);
    let batch = g.batch_size_value() as f64;
    let variants: Vec<(&str, ReCrossConfig)> = vec![
        ("ReCross-Base", ReCrossConfig::base(d.clone())),
        ("+SAP", {
            let mut c = ReCrossConfig::base(d.clone());
            c.sap = true;
            c
        }),
        ("+SAP+BWP", {
            let mut c = ReCrossConfig::base(d.clone());
            c.sap = true;
            c.bwp = true;
            c
        }),
        ("+SAP+BWP+LAS (full)", {
            let mut c = ReCrossConfig::default_d(d.clone());
            c.name = "ReCross".to_owned();
            c
        }),
    ];
    variants
        .into_iter()
        .map(|(name, cfg)| {
            let profiles = analytic_profiles(&g);
            let mut sys = ReCross::new(cfg, profiles, batch).expect("fits");
            let r = sys.run(&trace);
            (name.to_owned(), cpu.ns / r.ns)
        })
        .collect()
}

/// Figure 13: load-imbalance comparison — TRiM-G, TRiM-B, ReCross without
/// BWP, full ReCross. Rows: `(arch, mean imbalance ratio)`.
pub fn fig13_bwp_imbalance(scale: Scale) -> Vec<(String, f64)> {
    let (g, trace) = standard_trace(scale, 64);
    let d = dram();
    let profile = AccessProfile::from_trace(&trace);
    let batch = g.batch_size_value() as f64;
    let mut rows = Vec::new();
    rows.push((
        "TRiM-G".to_owned(),
        Trim::bank_group(d.clone())
            .with_profile(profile.clone())
            .run(&trace)
            .imbalance
            .mean,
    ));
    rows.push((
        "TRiM-B".to_owned(),
        Trim::bank(d.clone())
            .with_profile(profile)
            .run(&trace)
            .imbalance
            .mean,
    ));
    let mut naive_cfg = ReCrossConfig::default_d(d.clone()).without_bwp();
    naive_cfg.name = "ReCross w/o BWP".to_owned();
    let mut sys = ReCross::new(naive_cfg, analytic_profiles(&g), batch).expect("fits");
    rows.push(("ReCross w/o BWP".to_owned(), sys.run(&trace).imbalance.mean));
    let mut full_cfg = ReCrossConfig::default_d(d);
    full_cfg.name = "ReCross".to_owned();
    let mut sys = ReCross::new(full_cfg, analytic_profiles(&g), batch).expect("fits");
    rows.push(("ReCross".to_owned(), sys.run(&trace).imbalance.mean));
    rows
}

/// Figure 14: configuration exploration d, c1–c5. Rows:
/// `(config, speedup over CPU, DRAM-chip PE area mm², area efficiency)`.
pub fn fig14_configurations(scale: Scale) -> Vec<(String, f64, f64, f64)> {
    let (g, trace) = standard_trace(scale, 64);
    let d = dram();
    let cpu = CpuBaseline::new(d.clone()).run(&trace);
    let area_model = AreaModel::default();
    let batch = g.batch_size_value() as f64;
    ReCrossConfig::exploration_set(d)
        .into_iter()
        .map(|cfg| {
            let name = cfg.name.clone();
            let area = area_model.recross(cfg.bg_pes_per_rank, cfg.bank_pes_per_rank);
            let profiles = analytic_profiles(&g);
            let mut sys = ReCross::new(cfg, profiles, batch).expect("fits");
            let r = sys.run(&trace);
            let speedup = cpu.ns / r.ns;
            let eff = area_model.area_efficiency(speedup, &area);
            (name, speedup, area.dram_chip_mm2, eff)
        })
        .collect()
}

/// Figure 15: energy normalized to the CPU baseline, with the breakdown.
/// Rows: `(arch, act, rd/wr, io, pe, static, total)` — all normalized to
/// the CPU total.
pub fn fig15_energy(scale: Scale) -> Vec<(String, [f64; 6])> {
    let (g, trace) = standard_trace(scale, 64);
    let reports = run_all(&g, &trace, &dram());
    let cpu_total = reports[0].energy.total_pj();
    reports
        .into_iter()
        .map(|r| {
            let e = r.energy;
            (
                r.name,
                [
                    e.act_pj / cpu_total,
                    e.rd_wr_pj / cpu_total,
                    e.io_pj / cpu_total,
                    e.pe_pj / cpu_total,
                    e.static_pj / cpu_total,
                    e.total_pj() / cpu_total,
                ],
            )
        })
        .collect()
}

/// Table 3: per-solution area overhead. Rows:
/// `(solution, buffer-chip mm², DRAM-chip mm²)`.
pub fn table3_area() -> Vec<(&'static str, AreaReport)> {
    let m = AreaModel::default();
    vec![
        ("TensorDIMM", m.tensordimm()),
        ("RecNMP", m.recnmp()),
        ("TRiM-G", m.trim_g()),
        ("TRiM-B", m.trim_b()),
        ("ReCross", m.recross(4, 4)),
    ]
}

/// §5.6 overheads: LP partitioning time and mapping-table size. Returns
/// `(lp_millis, mapping_bytes, mapping_fraction_of_model)`.
pub fn partitioning_overheads(scale: Scale) -> (f64, u64, f64) {
    let g = generator(scale, 64);
    let profiles = analytic_profiles(&g);
    let cfg = ReCrossConfig::default_d(dram());
    let start = std::time::Instant::now();
    let map = RegionMap::new(&cfg);
    let bw = recross::RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
    let decision = recross::bandwidth_aware_partition(
        &profiles,
        &map,
        &bw,
        g.batch_size_value() as f64,
        cfg.pwl_segments,
    )
    .expect("feasible");
    let lp_millis = start.elapsed().as_secs_f64() * 1_000.0;
    let placement = recross::Placement::new(&profiles, decision, map);
    let model_bytes: u64 = profiles.iter().map(|p| p.spec.bytes()).sum();
    (
        lp_millis,
        placement.mapping_table_bytes(),
        placement.mapping_table_overhead(model_bytes),
    )
}

/// §4.2 ablation: two-stage (C/A + DQ) vs C/A-only NMP-instruction
/// transfer, across vector lengths, for the full ReCross system. Rows:
/// `(vlen, two_stage_cycles, ca_only_cycles, slowdown)`.
pub fn instruction_transfer_ablation(scale: Scale) -> Vec<(u32, u64, u64, f64)> {
    [16u32, 64, 256]
        .iter()
        .map(|&dim| {
            let g = generator(scale, dim);
            let trace = g.generate(0xD17A);
            let mut d = dram();
            if dim >= 256 && scale == Scale::Paper {
                d.topology.rows_per_bank *= 2;
            }
            let batch = g.batch_size_value() as f64;
            let run = |two_stage: bool| {
                let mut cfg = ReCrossConfig::default_d(d.clone());
                cfg.two_stage_inst = two_stage;
                let profiles = analytic_profiles(&g);
                ReCross::new(cfg, profiles, batch)
                    .expect("fits")
                    .run(&trace)
                    .cycles
            };
            let fast = run(true);
            let slow = run(false);
            (dim, fast, slow, slow as f64 / fast as f64)
        })
        .collect()
}

/// Beyond-paper scaling: ReCross over 1/2/4 independent channels (tables
/// load-balanced across channels). Rows: `(channels, cycles, speedup over
/// 1 channel)`.
pub fn channel_scaling(scale: Scale) -> Vec<(usize, u64, f64)> {
    use recross_nmp::multichannel::{run_multichannel, ChannelPlan};
    let (g, trace) = standard_trace(scale, 64);
    let batch = g.batch_size_value() as f64;
    let mut base = None;
    [1usize, 2, 4]
        .iter()
        .map(|&channels| {
            let plan = ChannelPlan::balance_by_load(&trace, channels);
            let report = run_multichannel(&plan, &trace, |_, sub| {
                // Build per-channel profiles over the sub-trace's tables.
                let profile = AccessProfile::from_trace(sub);
                let profiles = recross::profile::empirical_profiles(&sub.tables, &profile);
                ReCross::new(ReCrossConfig::default_d(dram()), profiles, batch).expect("fits")
            });
            let b = *base.get_or_insert(report.cycles);
            (channels, report.cycles, b as f64 / report.cycles as f64)
        })
        .collect()
}

/// Beyond-paper sensitivity: the headline comparison on a DDR4-3200 system
/// (half the bank groups, DDR4 timing). Rows: `(arch, speedup over CPU)`.
pub fn ddr4_sensitivity(scale: Scale) -> Vec<(String, f64)> {
    let (g, trace) = standard_trace(scale, 64);
    let reports = run_all(&g, &trace, &DramConfig::ddr4_3200());
    let cpu_ns = reports[0].ns;
    reports
        .into_iter()
        .map(|r| (r.name.clone(), cpu_ns / r.ns))
        .collect()
}

/// §4.5 online training: a fraction of gathered rows is also written back
/// (read-modify-write), modeling embedding-table updates. ReCross writes
/// land in the capacity-optimized R-region ("we treat them as cold data"),
/// TRiM-B writes back in place. Rows:
/// `(arch, update_fraction, inference_cycles, training_cycles, overhead)`.
///
/// At 100 % write-back the R-region's two rank buses absorb all update
/// traffic and become the bottleneck — a genuine cost of the paper's
/// cold-landing policy that only shows under training-heavy loads.
pub fn training_updates(scale: Scale) -> Vec<(String, f64, u64, u64, f64)> {
    use recross::config::Region;
    use recross_nmp::engine::{execute, EngineConfig, LookupPlan};

    let (g, trace) = standard_trace(scale, 64);
    let d = dram();
    let batch = g.batch_size_value() as f64;
    let fractions = [0.1f64, 0.5, 1.0];
    let mut rows = Vec::new();

    // TRiM-B: write-back in place (closed page).
    {
        let profile = AccessProfile::from_trace(&trace);
        let trim = Trim::bank(d.clone()).with_profile(profile);
        let inference_plans = trim.plans(&trace);
        let cfg = EngineConfig::nmp("TRiM-B", d.clone(), 64);
        let inf = execute(&cfg, &trace, &inference_plans);
        for &frac in &fractions {
            let mut counter = 0u64;
            let training_plans: Vec<LookupPlan> = inference_plans
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    let mut writes: Vec<_> = p
                        .reads
                        .iter()
                        .filter(|_| {
                            counter += 1;
                            (counter as f64 * frac).fract() + frac >= 1.0
                        })
                        .map(|r| {
                            let mut w = *r;
                            w.write = true;
                            w
                        })
                        .collect();
                    p.reads.append(&mut writes);
                    p
                })
                .collect();
            let tr = execute(&cfg, &trace, &training_plans);
            rows.push((
                "TRiM-B".to_owned(),
                frac,
                inf.cycles,
                tr.cycles,
                tr.cycles as f64 / inf.cycles as f64,
            ));
        }
    }

    // ReCross: updates written to the R-region (cold, §4.5).
    {
        let profiles = analytic_profiles(&g);
        let rc = ReCross::new(ReCrossConfig::default_d(d.clone()), profiles, batch).expect("fits");
        let inference_plans = rc.plans_for_test(&trace);
        let map = rc.placement().region_map();
        let r_slots = map.vector_slots(Region::R, 256);
        let mut engine_cfg = EngineConfig::nmp("ReCross", d.clone(), rc.num_nodes_for_test());
        engine_cfg.policy = recross_dram::SchedulePolicy::LocalityAware;
        let inf = execute(&engine_cfg, &trace, &inference_plans);
        for &frac in &fractions {
            let mut seq = 0u64;
            let mut counter = 0u64;
            let training_plans: Vec<LookupPlan> = inference_plans
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    let mut writes: Vec<_> = p
                        .reads
                        .iter()
                        .filter(|_| {
                            counter += 1;
                            (counter as f64 * frac).fract() + frac >= 1.0
                        })
                        .map(|r| {
                            let mut w = *r;
                            // Cold landing slot in the R-region, from the top.
                            seq += 1;
                            w.addr =
                                map.slot_addr(Region::R, r_slots - 1 - (seq % (r_slots / 2)), 256);
                            w.dest = recross_dram::controller::BusScope::Rank;
                            w.salp = false;
                            w.auto_precharge = false;
                            w.write = true;
                            w.node = w.addr.rank as usize;
                            w
                        })
                        .collect();
                    p.reads.append(&mut writes);
                    p
                })
                .collect();
            let tr = execute(&engine_cfg, &trace, &training_plans);
            rows.push((
                "ReCross".to_owned(),
                frac,
                inf.cycles,
                tr.cycles,
                tr.cycles as f64 / inf.cycles as f64,
            ));
        }
    }
    rows
}

/// Beyond-paper serving study: batches arrive open-loop at a fixed
/// interval; per-batch p50/p99 latency shows the classic hockey stick as
/// the offered load approaches each architecture's capacity. Rows:
/// `(arch, interval_cycles, p50, p99)`.
pub fn serving_latency(scale: Scale) -> Vec<(String, u64, u64, u64)> {
    use recross_nmp::engine::{execute, EngineConfig};

    let batches = 24usize;
    let g = generator(scale, 64)
        .batch_size(scale.batch_size() / 2)
        .batches(batches);
    let trace = g.generate(0xD17A);
    let d = dram();
    let batch = g.batch_size_value() as f64;

    // Per-arch: measure the unloaded batch service time, then sweep
    // arrival intervals at 2×, 1.2×, and 0.8× of it.
    let mut rows = Vec::new();
    let arch_plans: Vec<(
        String,
        Vec<recross_nmp::engine::LookupPlan>,
        usize,
        recross_dram::SchedulePolicy,
    )> = {
        let profile = AccessProfile::from_trace(&trace);
        let trim = Trim::bank(d.clone()).with_profile(profile);
        let profiles = analytic_profiles(&g);
        let rc = ReCross::new(ReCrossConfig::default_d(d.clone()), profiles, batch).expect("fits");
        vec![
            (
                "TRiM-B".to_owned(),
                trim.plans(&trace),
                64,
                recross_dram::SchedulePolicy::FrFcfs,
            ),
            (
                "ReCross".to_owned(),
                rc.plans_for_test(&trace),
                rc.num_nodes_for_test(),
                recross_dram::SchedulePolicy::LocalityAware,
            ),
        ]
    };
    for (name, plans, nodes, policy) in arch_plans {
        let mut cfg = EngineConfig::nmp(&name, d.clone(), nodes);
        cfg.policy = policy;
        let unloaded = execute(&cfg, &trace, &plans);
        let service = (unloaded.cycles / batches as u64).max(1);
        for mult in [2.0f64, 1.2, 0.8] {
            let interval = (service as f64 * mult) as u64;
            let mut open = cfg.clone();
            open.batch_arrivals = Some((0..batches as u64).map(|k| k * interval).collect());
            let r = execute(&open, &trace, &plans);
            rows.push((
                name.clone(),
                interval,
                r.batch_latency.p50,
                r.batch_latency.p99,
            ));
        }
    }
    rows
}

/// Region split of the default config (used by `repro table2` and sanity
/// reporting).
pub fn region_split() -> (u32, u32, u32) {
    ReCrossConfig::default().region_banks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_curves_are_monotone() {
        let rows = fig3_access_cdf(Scale::Quick, 20);
        assert_eq!(rows.len(), 26);
        for (_, series) in rows {
            assert!(series.windows(2).all(|w| w[1].1 >= w[0].1));
        }
    }

    #[test]
    fn fig4_finer_levels_worse() {
        let rows = fig4_imbalance(Scale::Quick);
        // For each rank count, bank-level imbalance >= rank-level.
        for ranks in [2u32, 4, 8] {
            let rank_mean = rows
                .iter()
                .find(|(r, l, _)| *r == ranks && *l == "rank")
                .unwrap()
                .2
                .mean;
            let bank_mean = rows
                .iter()
                .find(|(r, l, _)| *r == ranks && *l == "bank")
                .unwrap()
                .2
                .mean;
            assert!(bank_mean > rank_mean, "ranks={ranks}");
        }
    }

    #[test]
    fn fig6_salp_finishes_first() {
        let modes = fig6_timeline();
        let finish = |lines: &Vec<String>| -> u64 {
            lines
                .last()
                .unwrap()
                .split_whitespace()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        let a = finish(&modes[0].1);
        let b = finish(&modes[1].1);
        let c = finish(&modes[2].1);
        assert!(b <= a, "bank-level ≤ bank-group level");
        assert!(c < b, "SALP strictly fastest");
    }

    #[test]
    fn ca_only_transfer_hurts_short_vectors_most() {
        let rows = instruction_transfer_ablation(Scale::Quick);
        let slow16 = rows.iter().find(|r| r.0 == 16).unwrap().3;
        let slow256 = rows.iter().find(|r| r.0 == 256).unwrap().3;
        assert!(slow16 > 1.0, "C/A-only must cost something at vlen 16");
        assert!(
            slow16 > slow256,
            "short vectors are more instruction-bound: {slow16} vs {slow256}"
        );
    }

    #[test]
    fn channel_scaling_helps() {
        let rows = channel_scaling(Scale::Quick);
        assert_eq!(rows[0].0, 1);
        assert!(
            rows[2].2 > 1.5,
            "4 channels should near-double+: {:?}",
            rows
        );
    }

    #[test]
    fn ddr4_preserves_ordering() {
        let rows = ddr4_sensitivity(Scale::Quick);
        let get = |n: &str| rows.iter().find(|(s, _)| s == n).unwrap().1;
        assert!(get("ReCross") > get("TRiM-G"), "{rows:?}");
        assert!(get("TRiM-G") > 1.0);
    }

    #[test]
    fn training_updates_cost_more_but_bounded() {
        let rows = training_updates(Scale::Quick);
        for (arch, frac, inf, tr, overhead) in &rows {
            assert!(tr > inf, "{arch}@{frac}: training must cost more");
            assert!(
                *overhead < 10.0,
                "{arch}@{frac}: overhead {overhead} should stay bounded"
            );
        }
        // Overhead grows with the update fraction.
        let recross: Vec<f64> = rows
            .iter()
            .filter(|(a, _, _, _, _)| a == "ReCross")
            .map(|&(_, _, _, _, o)| o)
            .collect();
        assert!(recross.windows(2).all(|w| w[1] >= w[0]), "{recross:?}");
        // At a light 10% update rate the overhead is modest.
        assert!(
            recross[0] < 2.0,
            "10% updates should be cheap: {}",
            recross[0]
        );
    }

    #[test]
    fn serving_latency_hockey_stick() {
        let rows = serving_latency(Scale::Quick);
        for arch in ["TRiM-B", "ReCross"] {
            let mine: Vec<&(String, u64, u64, u64)> = rows.iter().filter(|r| r.0 == arch).collect();
            // Intervals are sorted slowest-arrival first (2.0, 1.2, 0.8 ×
            // service time); overload (0.8×) must have worse p99 than the
            // unloaded point (2×).
            assert!(
                mine[2].3 > mine[0].3,
                "{arch}: overload p99 {} vs unloaded {}",
                mine[2].3,
                mine[0].3
            );
        }
    }

    #[test]
    fn table3_matches_paper() {
        let rows = table3_area();
        let get = |n: &str| rows.iter().find(|(s, _)| *s == n).unwrap().1;
        assert!((get("TRiM-B").dram_chip_mm2 - 11.5).abs() < 1e-9);
        assert!((get("ReCross").dram_chip_mm2 - 2.35).abs() < 1e-9);
    }

    #[test]
    fn overheads_are_small() {
        let (lp_ms, bytes, frac) = partitioning_overheads(Scale::Quick);
        assert!(lp_ms < 5_000.0, "paper: seconds; got {lp_ms} ms");
        assert!(bytes > 0);
        assert!(frac < 0.04, "paper: < 4%");
    }
}
