//! # recross-bench
//!
//! The benchmark harness of the ReCross reproduction: one runner per paper
//! table/figure ([`experiments`]), the standard workload configurations
//! ([`workloads`]), the serving-mode sweeps ([`serving`]), and the `repro`
//! binary that prints every row the paper reports (its flag parsing lives
//! in [`cli`]). Closed-loop trace capture for `repro run` lives in
//! [`runtrace`]. The benches in `benches/`
//! time the same runners on the quick scale via the dependency-free [`timer`]
//! harness.

pub mod cli;
pub mod experiments;
pub mod runtrace;
pub mod serving;
pub mod timer;
pub mod workloads;
