//! # recross-bench
//!
//! The benchmark harness of the ReCross reproduction: one runner per paper
//! table/figure ([`experiments`]), the standard workload configurations
//! ([`workloads`]), and the `repro` binary that prints every row the paper
//! reports. Criterion benches (in `benches/`) time the same runners on the
//! quick scale.

pub mod experiments;
pub mod workloads;
