//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] <fig3|fig4|fig5|fig6|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table2|table3|overheads|headline|all>
//! repro [--quick] serve [--qps-sweep] [--bursty] [--sjf|--edf] [--seed=N] [--out=FILE]
//! repro [--quick] serve --slo-search [--slo-p99=US] [--bursty] [--sjf|--edf] [--seed=N] [--out=FILE]
//! repro [--quick] serve --tenants=SPEC [--slo-search] [--fifo|--sjf] [--seed=N] [--out=FILE]
//! repro [--quick] serve --trace-out=FILE [--obs-summary[=FILE]] [--arch=cpu|recross] [--load=F] [--timeline-only] [...]
//! repro [--quick] serve --trace-stream=FILE [--agg-out=FILE] [--arch=cpu|recross] [--load=F] [--timeline-only] [...]
//! repro [--quick] serve --slo-search --trace-stream=FILE [--agg-out=FILE] [...]
//! repro [--quick] run [--arch=cpu|recross] [--seed=N] [--trace-out=FILE] [--dram-trace=FILE] [--obs-summary[=FILE]] [--out=FILE]
//! repro [--quick] run --trace-stream=FILE [--agg-out=FILE] [--arch=cpu|recross] [--seed=N] [--out=FILE]
//! ```
//!
//! `--quick` runs the 1/100-scale workload (seconds instead of minutes);
//! the default is the paper-scale Criteo-Kaggle workload. `serve` runs the
//! open-loop serving sweep (not part of `all`): offered-QPS fractions of
//! each architecture's saturation rate, reporting tail latency, goodput,
//! and shed rate as deterministic JSON. `serve --slo-search` instead runs
//! the closed-loop throughput search: a deterministic bisection over
//! offered QPS for the highest rate whose p99 latency meets the
//! `--slo-p99` bound (microseconds) with nothing shed.
//!
//! `--tenants=SPEC` switches `serve` to the multi-tenant deadline-aware
//! path: `SPEC` is a comma-separated list of
//! `name:share:process:deadline:priority` classes (e.g.
//! `rt:0.7:poisson:200us:high,batch:0.3:mmpp:5ms:low`; grammar documented
//! on `recross_bench::cli::parse_tenants`). Requests are tagged with
//! their tenant and absolute deadline, served EDF with deadline shedding
//! and adaptive linger by default (`--fifo`/`--sjf` override the dequeue
//! policy), and reports carry per-tenant latency/goodput/shed/miss
//! sections. Each class declares its own arrival process in the spec, so
//! the single-stream `--bursty` flag is rejected in tenant mode. With
//! `--slo-search` the bisection finds the max *aggregate* QPS at which
//! every tenant meets its own p99 deadline.
//!
//! `--trace-out=FILE` switches `serve` to the traced single-point mode:
//! one architecture (`--arch`, default recross) serves one offered-load
//! point (`--load` × estimated capacity, default 0.9) through the
//! cross-layer tracer, writing a unified Perfetto timeline — tenant
//! request lanes, per-channel batch spans and queue-depth gauges, down
//! to per-bank DRAM commands — to `FILE` (load it in
//! <https://ui.perfetto.dev>). `--obs-summary` (alone or `=FILE`) emits
//! the deterministic `ObsReport` JSON with per-channel busy/idle
//! fractions, queue-depth percentiles, and DRAM bottleneck attribution;
//! `--timeline-only` skips the per-command bank tracks. The traced run's
//! `"serve"` section is byte-identical to an untraced run of the same
//! seed — tracing never perturbs the simulation.
//!
//! `--trace-stream=FILE` is the bounded-memory sibling of `--trace-out`:
//! the same Perfetto timeline, written incrementally to `FILE` *while*
//! the simulation runs instead of buffered in memory first — the bytes
//! are identical, but the resident event buffer never grows past a fixed
//! chunk, so long runs stay flat. It conflicts with `--trace-out` (pick
//! one). `--agg-out=FILE` runs the online aggregation engine alongside
//! (per-tenant queue/service histograms, per-channel busy fractions,
//! span-duration stats, gauge percentiles, computed without retaining
//! events) and writes its deterministic JSON to `FILE`. Uniquely among
//! the tracing flags, `--trace-stream`/`--agg-out` compose with
//! `--slo-search`: the search runs untraced as usual, then the found
//! max-QPS point is re-served fully traced through the streaming path.
//!
//! `run` is the closed-loop sibling (not part of `all`): the standard
//! fixed trace runs batch-by-batch on one architecture, and the full
//! DRAM command stream is captured. `--trace-out` writes the unified
//! timeline, `--dram-trace` writes the original bank-tracks-only Chrome
//! trace, `--obs-summary` emits the attribution JSON. `--trace-stream`
//! and `--agg-out` work as for `serve`; `--trace-stream` drops the
//! retained command vector too (attribution folds incrementally), so it
//! conflicts with `--dram-trace` as well as `--trace-out`.

use recross_bench::experiments as exp;
use recross_bench::workloads::{dram, standard_trace, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };
    let all = what.contains(&"all");
    let want = |k: &str| all || what.contains(&k);
    let mut ran = false;

    if want("table2") {
        table2();
        ran = true;
    }
    if want("fig3") {
        fig3(scale);
        ran = true;
    }
    if want("fig4") {
        fig4(scale);
        ran = true;
    }
    if want("fig5") {
        fig5(scale);
        ran = true;
    }
    if want("fig6") {
        fig6();
        ran = true;
    }
    if want("headline") {
        headline(scale);
        ran = true;
    }
    if want("fig9") {
        sweep(
            "Figure 9: speedup over CPU vs embedding vector length",
            "vlen",
            exp::fig9_vector_length(scale)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        ran = true;
    }
    if want("fig10") {
        sweep(
            "Figure 10: speedup over CPU vs batch size (vlen 64)",
            "batch",
            exp::fig10_batch_size(scale)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        ran = true;
    }
    if want("fig11") {
        sweep(
            "Figure 11: speedup over CPU vs rank count (vlen 64)",
            "ranks",
            exp::fig11_rank_count(scale)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        ran = true;
    }
    if want("fig12") {
        fig12(scale);
        ran = true;
    }
    if want("fig13") {
        fig13(scale);
        ran = true;
    }
    if want("fig14") {
        fig14(scale);
        ran = true;
    }
    if want("fig15") {
        fig15(scale);
        ran = true;
    }
    if want("table3") {
        table3();
        ran = true;
    }
    if want("overheads") {
        overheads(scale);
        ran = true;
    }
    if want("inst") {
        inst(scale);
        ran = true;
    }
    if want("channels") {
        channels(scale);
        ran = true;
    }
    if want("ddr4") {
        ddr4(scale);
        ran = true;
    }
    if want("training") {
        training(scale);
        ran = true;
    }
    if want("serving") {
        serving(scale);
        ran = true;
    }
    if what.contains(&"serve") {
        serve(scale, &args);
        ran = true;
    }
    if what.contains(&"run") {
        run_traced(scale, &args);
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown experiment {:?}; expected fig3..fig15, table2, table3, \
             overheads, headline, inst, channels, ddr4, training, serving, \
             serve, run, all",
            what
        );
        std::process::exit(2);
    }
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn table2() {
    banner("Table 2: system configuration");
    let d = dram();
    let t = d.topology;
    println!(
        "DRAM: DDR5-4800 ×8, {} channel(s), {} ranks, {} bank-groups × {} banks, {} subarrays/bank",
        t.channels, t.ranks, t.bank_groups, t.banks_per_group, t.subarrays_per_bank
    );
    let tm = d.timing;
    println!(
        "timing (cycles): tRCD={} tCL={} tRP={} tRAS={} tRC={} tBL={} tCCD_S={} tCCD_L={} tFAW={} tRRD_S={} tRRD_L={} tRA={}",
        tm.t_rcd, tm.t_cl, tm.t_rp, tm.t_ras, tm.t_rc, tm.t_bl, tm.t_ccd_s,
        tm.t_ccd_l, tm.t_faw, tm.t_rrd_s, tm.t_rrd_l, tm.t_ra
    );
    let e = d.energy;
    println!(
        "energy: ACT={} pJ, RD/WR={} pJ/bit, I/O={} pJ/bit, FP add={} pJ, FP mul={} pJ",
        e.act_pj, e.rd_wr_pj_per_bit, e.io_pj_per_bit, e.fp32_add_pj, e.fp32_mul_pj
    );
    let (r, g, b) = exp::region_split();
    println!("ReCross-d regions (banks/rank): R={r} G={g} B={b}");
}

fn fig3(scale: Scale) {
    banner("Figure 3: cumulative access share of the hottest p fraction of rows");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "table", "p=5%", "p=10%", "p=20%", "p=50%", "rows"
    );
    let g = recross_bench::workloads::generator(scale, 64);
    for (i, series) in exp::fig3_access_cdf(scale, 100) {
        let at = |p: f64| {
            series
                .iter()
                .min_by(|a, b| {
                    (a.0 - p)
                        .abs()
                        .partial_cmp(&(b.0 - p).abs())
                        .expect("no NaN")
                })
                .expect("non-empty")
                .1
        };
        println!(
            "{:>5} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9}",
            i,
            at(0.05) * 100.0,
            at(0.10) * 100.0,
            at(0.20) * 100.0,
            at(0.50) * 100.0,
            g.tables()[i].rows
        );
    }
}

fn fig4(scale: Scale) {
    banner("Figure 4: load-imbalance ratio per NMP level (contiguous baseline layout)");
    println!(
        "{:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "ranks", "level", "mean", "p50", "p90", "max"
    );
    for (ranks, level, s) in exp::fig4_imbalance(scale) {
        println!(
            "{ranks:>6} {level:>12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            s.mean, s.p50, s.p90, s.max
        );
    }
}

fn fig5(scale: Scale) {
    banner("Figure 5: speedup (vs 2-rank rank-level) and internal bandwidth per NMP level");
    println!(
        "{:>6} {:>12} {:>9} {:>16}",
        "ranks", "level", "speedup", "intBW (B/cyc)"
    );
    for (ranks, level, speedup, bw) in exp::fig5_levels(scale) {
        println!("{ranks:>6} {level:>12} {speedup:>9.2} {bw:>16.1}");
    }
}

fn fig6() {
    banner("Figure 6: command timeline, 4 reads to 2 banks");
    for (mode, lines) in exp::fig6_timeline() {
        println!("--- {mode}");
        for l in lines {
            println!("  {l}");
        }
    }
}

fn headline(scale: Scale) {
    banner("Headline comparison (vlen 64, default batch)");
    let (g, trace) = standard_trace(scale, 64);
    let reports = exp::run_all(&g, &trace, &dram());
    let cpu_ns = reports[0].ns;
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "arch", "cycles", "ns", "speedup", "imb", "rowhit", "energy (uJ)", "op p50", "op p99"
    );
    for r in &reports {
        println!(
            "{:<12} {:>12} {:>12.0} {:>9.2} {:>8.2} {:>8.2} {:>12.2} {:>10} {:>10}",
            r.name,
            r.cycles,
            r.ns,
            cpu_ns / r.ns,
            r.imbalance.mean,
            r.row_hit_rate,
            r.energy.total_pj() / 1e6,
            r.op_latency.p50,
            r.op_latency.p99
        );
    }
}

fn sweep(title: &str, xname: &str, rows: Vec<(String, Vec<(String, f64)>)>) {
    banner(title);
    if let Some((_, first)) = rows.first() {
        print!("{xname:>6}");
        for (arch, _) in first {
            print!(" {arch:>11}");
        }
        println!();
    }
    for (x, cols) in rows {
        print!("{x:>6}");
        for (_, v) in cols {
            print!(" {v:>11.2}");
        }
        println!();
    }
}

fn fig12(scale: Scale) {
    banner("Figure 12: optimization breakdown (speedup over CPU)");
    for (name, speedup) in exp::fig12_ablation(scale) {
        println!("{name:<22} {speedup:>7.2}x");
    }
}

fn fig13(scale: Scale) {
    banner("Figure 13: load-imbalance ratio comparison");
    for (name, mean) in exp::fig13_bwp_imbalance(scale) {
        println!("{name:<18} mean imbalance {mean:>7.2}");
    }
}

fn fig14(scale: Scale) {
    banner("Figure 14: configuration exploration (d, c1–c5)");
    println!(
        "{:<12} {:>9} {:>16} {:>18}",
        "config", "speedup", "PE area (mm²)", "speedup per mm²"
    );
    for (name, speedup, area, eff) in exp::fig14_configurations(scale) {
        println!("{name:<12} {speedup:>9.2} {area:>16.2} {eff:>18.2}");
    }
}

fn fig15(scale: Scale) {
    banner("Figure 15: energy breakdown normalized to CPU");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "arch", "ACT", "RD/WR", "I/O", "PE", "static", "total"
    );
    for (name, e) in exp::fig15_energy(scale) {
        println!(
            "{name:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            e[0], e[1], e[2], e[3], e[4], e[5]
        );
    }
}

fn table3() {
    banner("Table 3: extra area overhead breakdown");
    println!(
        "{:<12} {:>22} {:>22}",
        "solution", "rank PE (buffer, mm²)", "BG/bank PE (chip, mm²)"
    );
    for (name, a) in exp::table3_area() {
        println!(
            "{name:<12} {:>22.2} {:>22.2}",
            a.buffer_chip_mm2, a.dram_chip_mm2
        );
    }
}

fn inst(scale: Scale) {
    banner("§4.2 ablation: two-stage vs C/A-only instruction transfer");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "vlen", "two-stage cyc", "C/A-only cyc", "slowdown"
    );
    for (dim, fast, slow, ratio) in exp::instruction_transfer_ablation(scale) {
        println!("{dim:>6} {fast:>14} {slow:>14} {ratio:>10.2}");
    }
}

fn channels(scale: Scale) {
    banner("Beyond-paper: ReCross multi-channel scaling");
    println!("{:>9} {:>12} {:>9}", "channels", "cycles", "speedup");
    for (ch, cycles, speedup) in exp::channel_scaling(scale) {
        println!("{ch:>9} {cycles:>12} {speedup:>9.2}");
    }
}

fn ddr4(scale: Scale) {
    banner("Beyond-paper: DDR4-3200 sensitivity (speedup over CPU)");
    for (name, speedup) in exp::ddr4_sensitivity(scale) {
        println!("{name:<12} {speedup:>7.2}x");
    }
}

fn training(scale: Scale) {
    banner("Beyond-paper: §4.5 online-training (read-modify-write) overhead");
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>10}",
        "arch", "updates", "inference cyc", "training cyc", "overhead"
    );
    for (arch, frac, inf, tr, overhead) in exp::training_updates(scale) {
        println!(
            "{arch:<10} {:>7.0}% {inf:>14} {tr:>14} {overhead:>10.2}",
            frac * 100.0
        );
    }
}

fn serving(scale: Scale) {
    banner("Beyond-paper: open-loop serving latency (batch arrivals at fixed interval)");
    println!(
        "{:<10} {:>16} {:>12} {:>12}",
        "arch", "interval (cyc)", "p50 latency", "p99 latency"
    );
    for (arch, interval, p50, p99) in exp::serving_latency(scale) {
        println!("{arch:<10} {interval:>16} {p50:>12} {p99:>12}");
    }
}

fn serve(scale: Scale, args: &[String]) {
    use recross_bench::cli;
    use recross_serve::QueuePolicy;

    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let bursty = args.iter().any(|a| a == "--bursty");
    let tenants = cli::parse_tenants(args).unwrap_or_else(|e| fail(e));
    if bursty && tenants.is_some() {
        fail(
            "--bursty conflicts with --tenants: per-tenant arrival shapes come \
             from the tenant spec (name:share:poisson|bursty|mmpp:deadline:priority)"
                .to_string(),
        );
    }
    // Tenant mode defaults to EDF (deadlines are what it is for); the
    // single-class sweep keeps its FIFO default. `--fifo`/`--sjf`/`--edf`
    // force a policy in either mode.
    let policy = if args.iter().any(|a| a == "--fifo") {
        QueuePolicy::Fifo
    } else if args.iter().any(|a| a == "--sjf") {
        QueuePolicy::ShortestJobFirst
    } else if args.iter().any(|a| a == "--edf") || tenants.is_some() {
        QueuePolicy::Edf
    } else {
        QueuePolicy::Fifo
    };
    let seed = cli::parse_seed(args).unwrap_or_else(|e| fail(e));
    let slo_p99_us = cli::parse_slo_p99(args).unwrap_or_else(|e| fail(e));
    let out = cli::value_of(args, "--out");

    let slo = args.iter().any(|a| a == "--slo-search");
    let streaming =
        cli::value_of(args, "--trace-stream").is_some() || cli::value_of(args, "--agg-out").is_some();
    if cli::value_of(args, "--trace-stream").is_some() && cli::value_of(args, "--trace-out").is_some()
    {
        fail(
            "--trace-out buffers the whole timeline in memory; --trace-stream \
             writes it incrementally — pick one"
                .to_string(),
        );
    }
    let traced = cli::value_of(args, "--trace-out").is_some()
        || streaming
        || cli::parse_obs_summary(args) != cli::ObsSummary::Off;
    if traced && slo && !streaming {
        fail(
            "--trace-out/--obs-summary trace a single serving point; \
             they conflict with --slo-search (use --trace-stream/--agg-out \
             to trace the found max-QPS point)"
                .to_string(),
        );
    }
    let json = if traced && !slo {
        serve_trace_point(scale, tenants.as_ref(), bursty, policy, seed, args)
    } else {
        let (json, rates) = match (&tenants, slo) {
            (Some(mix), true) => serve_tenant_slo(scale, mix, policy, seed),
            (Some(mix), false) => (serve_tenant_sweep(scale, mix, policy, seed), Vec::new()),
            (None, true) => serve_slo_search(scale, bursty, policy, seed, slo_p99_us),
            (None, false) => (serve_qps_sweep(scale, bursty, policy, seed), Vec::new()),
        };
        if slo && streaming {
            serve_slo_stream_rerun(scale, tenants.as_ref(), bursty, policy, seed, &rates, args);
        }
        json
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// Writes `contents` to `path` (exit 2 on failure) and prints what
/// landed where.
fn write_artifact(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {what} {path}");
}

/// Emits an observability summary JSON per the `--obs-summary` form.
fn emit_obs_summary(args: &[String], json: &str) {
    use recross_bench::cli;
    match cli::parse_obs_summary(args) {
        cli::ObsSummary::Off => {}
        cli::ObsSummary::Stdout => println!("{json}"),
        cli::ObsSummary::File(path) => write_artifact(path, &format!("{json}\n"), "obs summary"),
    }
}

/// Opens the `--trace-stream` target for incremental writing (exit 2 on
/// failure).
fn open_stream(path: &str) -> Box<dyn std::io::Write> {
    match std::fs::File::create(path) {
        Ok(f) => Box::new(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// One human-readable line on the recorder's memory footprint and sink
/// drop counters.
fn recorder_stats_line(heap: usize, sinks: &[recross_obs::SinkStats]) -> String {
    let sinks = if sinks.is_empty() {
        "none".to_string()
    } else {
        sinks
            .iter()
            .map(|s| format!("{} ({} dropped)", s.kind, s.dropped))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "recorder: heap high-water {:.1} KiB; sinks: {sinks}",
        heap as f64 / 1024.0
    )
}

fn serve_trace_point(
    scale: Scale,
    mix: Option<&recross_serve::TenantMix>,
    bursty: bool,
    policy: recross_serve::QueuePolicy,
    seed: u64,
    args: &[String],
) -> String {
    use recross_bench::{cli, serving};

    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let arch = cli::parse_arch(args).unwrap_or_else(|e| fail(e));
    let load = cli::parse_load(args).unwrap_or_else(|e| fail(e));
    let dram_tracks = !args.iter().any(|a| a == "--timeline-only");
    let stream = cli::value_of(args, "--trace-stream");
    let agg_out = cli::value_of(args, "--agg-out");

    banner("recross-obs: traced serving point (request lanes down to DRAM commands)");
    let opts = serving::TraceOptions {
        stream: stream.map(open_stream),
        agg: agg_out.is_some(),
        // Streaming runs drop the in-memory buffer: that is the point.
        buffered: stream.is_none(),
    };
    let p = serving::traced_point_with(
        scale, arch, mix, load, bursty, policy, seed, dram_tracks, opts,
    )
    .unwrap_or_else(|e| fail(format!("cannot write streamed trace: {e}")));
    println!(
        "{}: {:.0} offered qps ({:.2}x of {:.0} capacity qps), {} requests: \
         {} completed, {} late, {} queue-shed, {} deadline-shed",
        p.arch,
        p.offered_qps,
        p.load,
        p.capacity_qps,
        p.obs.requests,
        p.obs.completed,
        p.obs.late,
        p.obs.queue_shed,
        p.obs.deadline_shed
    );
    println!(
        "{:>3} {:>7} {:>10} {:>21} {:>11}",
        "ch", "busy", "dispatches", "depth p50/p99/max", "shed q/d"
    );
    for (ch, c) in p.obs.channels.iter().enumerate() {
        println!(
            "{ch:>3} {:>6.1}% {:>10} {:>17}/{}/{} {:>8}/{}",
            c.busy_fraction * 100.0,
            c.dispatches,
            c.depth_p50,
            c.depth_p99,
            c.depth_max,
            c.queue_shed,
            c.deadline_shed
        );
        if let Some(a) = &c.attribution {
            println!("    {}", recross_dram::attribution::summarize(&format!("ch{ch}"), a));
        }
    }
    println!("{}", recorder_stats_line(p.obs.heap_capacity, &p.obs.sinks));
    if let Some(path) = cli::value_of(args, "--trace-out") {
        let perfetto = p.perfetto.as_deref().expect("buffered run keeps the timeline");
        write_artifact(path, perfetto, "Perfetto timeline (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = stream {
        println!("wrote streamed Perfetto timeline {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = agg_out {
        let agg = p.agg.as_ref().expect("agg enabled by --agg-out");
        write_artifact(path, &format!("{}\n", agg.to_json()), "online aggregates");
    }
    emit_obs_summary(args, &p.obs.to_json());
    serving::traced_point_to_json(&p, scale, mix, bursty, policy, seed)
}

/// The `--slo-search --trace-stream/--agg-out` composition: the search
/// already ran untraced; re-serve the found max-QPS point for the
/// selected architecture through the streaming tracer. `rates` carries
/// `(arch, max_qps, bracket_hi_qps)` per searched architecture; the
/// capacity estimate is recovered from the bracket (`hi = 2 × capacity`).
fn serve_slo_stream_rerun(
    scale: Scale,
    mix: Option<&recross_serve::TenantMix>,
    bursty: bool,
    policy: recross_serve::QueuePolicy,
    seed: u64,
    rates: &[(String, f64, f64)],
    args: &[String],
) {
    use recross_bench::{cli, serving};

    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let arch = cli::parse_arch(args).unwrap_or_else(|e| fail(e));
    let (_, max_qps, bracket_hi) = rates
        .iter()
        .find(|(a, _, _)| a == arch)
        .unwrap_or_else(|| fail(format!("search produced no rate for {arch}")));
    if *max_qps <= 0.0 {
        println!("{arch}: no SLO-compliant rate in bracket; skipping traced re-run");
        return;
    }
    let capacity = bracket_hi / 2.0;
    let load = max_qps / capacity;
    let dram_tracks = !args.iter().any(|a| a == "--timeline-only");
    let stream = cli::value_of(args, "--trace-stream");
    let agg_out = cli::value_of(args, "--agg-out");

    banner("recross-obs: streamed re-run of the found max-QPS point");
    let opts = serving::TraceOptions {
        stream: stream.map(open_stream),
        agg: agg_out.is_some(),
        buffered: false,
    };
    let p = serving::traced_point_with(
        scale, arch, mix, load, bursty, policy, seed, dram_tracks, opts,
    )
    .unwrap_or_else(|e| fail(format!("cannot write streamed trace: {e}")));
    println!(
        "{}: re-served {:.0} qps ({:.2}x of {:.0} capacity qps): \
         {} completed, {} late, {} queue-shed, {} deadline-shed",
        p.arch,
        p.offered_qps,
        p.load,
        p.capacity_qps,
        p.obs.completed,
        p.obs.late,
        p.obs.queue_shed,
        p.obs.deadline_shed
    );
    println!("{}", recorder_stats_line(p.obs.heap_capacity, &p.obs.sinks));
    if let Some(path) = stream {
        println!("wrote streamed Perfetto timeline {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = agg_out {
        let agg = p.agg.as_ref().expect("agg enabled by --agg-out");
        write_artifact(path, &format!("{}\n", agg.to_json()), "online aggregates");
    }
}

fn run_traced(scale: Scale, args: &[String]) {
    use recross_bench::{cli, runtrace};

    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let arch = cli::parse_arch(args).unwrap_or_else(|e| fail(e));
    let seed = cli::parse_seed(args).unwrap_or_else(|e| fail(e));
    let stream = cli::value_of(args, "--trace-stream");
    let agg_out = cli::value_of(args, "--agg-out");
    if stream.is_some() && cli::value_of(args, "--trace-out").is_some() {
        fail(
            "--trace-out buffers the whole timeline in memory; --trace-stream \
             writes it incrementally — pick one"
                .to_string(),
        );
    }
    if stream.is_some() && cli::value_of(args, "--dram-trace").is_some() {
        fail(
            "--dram-trace needs the retained command vector, which \
             --trace-stream deliberately drops — pick one"
                .to_string(),
        );
    }

    banner("recross-obs: closed-loop traced run (engine batches down to DRAM commands)");
    let opts = recross_bench::serving::TraceOptions {
        stream: stream.map(open_stream),
        agg: agg_out.is_some(),
        buffered: stream.is_none(),
    };
    let rt = runtrace::closed_loop_trace_with(scale, arch, seed, 0, opts)
        .unwrap_or_else(|e| fail(format!("cannot write streamed trace: {e}")));
    println!(
        "{} ({}): {} batches, {} lookups, {} cycles, {} DRAM commands",
        rt.arch,
        rt.engine,
        rt.batches.len(),
        rt.lookups,
        rt.total_cycles,
        rt.command_count
    );
    println!("{}", rt.summary_line());
    let (heap, sinks) = rt.recorder_stats();
    println!("{}", recorder_stats_line(heap, &sinks));
    if let Some(path) = cli::value_of(args, "--trace-out") {
        let perfetto = rt.perfetto().expect("buffered capture keeps the timeline");
        write_artifact(path, &perfetto, "Perfetto timeline (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = stream {
        println!("wrote streamed Perfetto timeline {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = cli::value_of(args, "--dram-trace") {
        write_artifact(path, &rt.dram_chrome_trace(), "DRAM command trace");
    }
    if let Some(path) = agg_out {
        let agg = rt.aggregates().expect("agg enabled by --agg-out");
        write_artifact(path, &format!("{}\n", agg.to_json()), "online aggregates");
    }
    let json = rt.to_json(scale, seed);
    emit_obs_summary(args, &json);
    match cli::value_of(args, "--out") {
        Some(path) => write_artifact(path, &format!("{json}\n"), "report"),
        None => println!("{json}"),
    }
}

fn serve_qps_sweep(
    scale: Scale,
    bursty: bool,
    policy: recross_serve::QueuePolicy,
    seed: u64,
) -> String {
    use recross_bench::serving;

    banner("recross-serve: offered-QPS sweep (open-loop arrivals, batching queue per channel)");
    let sweeps = serving::qps_sweep(scale, bursty, policy, seed);
    println!(
        "{:<10} {:>9} {:>14} {:>12} {:>10} {:>12} {:>12} {:>9} {:>7}",
        "arch", "load", "offered qps", "goodput", "shed", "p50 (us)", "p99 (us)", "util", "cache"
    );
    for s in &sweeps {
        for (fraction, r) in &s.points {
            let util = r
                .channels
                .iter()
                .map(|c| c.utilization)
                .fold(0.0f64, f64::max);
            println!(
                "{:<10} {:>8.2}x {:>14.0} {:>12.0} {:>9.1}% {:>12.1} {:>12.1} {:>9.2} {:>6.0}%",
                s.arch,
                fraction,
                r.offered_qps,
                r.goodput_qps(),
                r.shed_rate() * 100.0,
                r.cycles_to_us(r.latency.quantile(0.5)),
                r.cycles_to_us(r.latency.quantile(0.99)),
                util,
                r.cache_hit_rate() * 100.0
            );
        }
    }
    serving::sweep_to_json(&sweeps, scale, bursty, policy, seed)
}

fn serve_slo_search(
    scale: Scale,
    bursty: bool,
    policy: recross_serve::QueuePolicy,
    seed: u64,
    slo_p99_us: f64,
) -> (String, Vec<(String, f64, f64)>) {
    use recross_bench::serving;

    banner("recross-serve: closed-loop SLO throughput search (bisection over offered QPS)");
    let reports = serving::slo_search(scale, bursty, policy, seed, slo_p99_us);
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>14} {:>7}",
        "arch", "slo p99 (us)", "max qps", "probes", "last p99 (us)", "cache"
    );
    for r in &reports {
        let last_met = r.probes.iter().rev().find(|p| p.met);
        println!(
            "{:<10} {:>14.1} {:>14.0} {:>8} {:>14.1} {:>6.0}%",
            r.arch,
            r.slo_p99_us,
            r.max_qps,
            r.probes.len(),
            last_met.map_or(f64::NAN, |p| p.p99_us),
            r.cache_total().hit_rate() * 100.0
        );
    }
    let rates = reports
        .iter()
        .map(|r| (r.arch.clone(), r.max_qps, r.bracket_hi_qps))
        .collect();
    (serving::slo_to_json(&reports, scale, bursty, policy, seed), rates)
}

fn serve_tenant_sweep(
    scale: Scale,
    mix: &recross_serve::TenantMix,
    policy: recross_serve::QueuePolicy,
    seed: u64,
) -> String {
    use recross_bench::serving;

    banner("recross-serve: multi-tenant sweep (deadline-aware batching queue per channel)");
    let sweeps = serving::tenant_sweep(scale, mix, policy, seed);
    println!(
        "{:<10} {:>6} {:<8} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "arch", "load", "tenant", "p50 (us)", "p99 (us)", "goodput", "shed", "miss"
    );
    for s in &sweeps {
        for (fraction, r) in &s.points {
            for (i, t) in r.tenants.iter().enumerate() {
                println!(
                    "{:<10} {:>5.2}x {:<8} {:>12.1} {:>12.1} {:>10.0} {:>8.1}% {:>8.1}%",
                    s.arch,
                    fraction,
                    t.name,
                    r.cycles_to_us(t.latency.quantile(0.5)),
                    r.cycles_to_us(t.latency.quantile(0.99)),
                    r.tenant_goodput_qps(i),
                    t.shed_rate() * 100.0,
                    t.deadline_miss_rate() * 100.0
                );
            }
        }
    }
    serving::tenant_sweep_to_json(&sweeps, scale, mix, policy, seed)
}

fn serve_tenant_slo(
    scale: Scale,
    mix: &recross_serve::TenantMix,
    policy: recross_serve::QueuePolicy,
    seed: u64,
) -> (String, Vec<(String, f64, f64)>) {
    use recross_bench::serving;

    banner("recross-serve: multi-tenant SLO search (max aggregate QPS, every tenant on time)");
    let reports = serving::tenant_slo_search(scale, mix, policy, seed);
    println!(
        "{:<10} {:>14} {:>8} {:<8} {:>14} {:>14}",
        "arch", "max qps", "probes", "tenant", "p99 (us)", "deadline (us)"
    );
    for r in &reports {
        let last_met = r.probes.iter().rev().find(|p| p.met);
        match last_met {
            Some(p) => {
                for t in &p.tenants {
                    println!(
                        "{:<10} {:>14.0} {:>8} {:<8} {:>14.1} {:>14.1}",
                        r.arch,
                        r.max_qps,
                        r.probes.len(),
                        t.name,
                        t.p99_us,
                        t.deadline_us
                    );
                }
            }
            None => println!(
                "{:<10} {:>14.0} {:>8} (no passing probe in bracket)",
                r.arch,
                r.max_qps,
                r.probes.len()
            ),
        }
    }
    let rates = reports
        .iter()
        .map(|r| (r.arch.clone(), r.max_qps, r.bracket_hi_qps))
        .collect();
    (serving::tenant_slo_to_json(&reports, scale, mix, policy, seed), rates)
}

fn overheads(scale: Scale) {
    banner("§5.6: partitioning and mapping-table overheads");
    let (lp_ms, bytes, frac) = exp::partitioning_overheads(scale);
    println!("LP partitioning time: {lp_ms:.1} ms (paper: within 5 s via Gurobi)");
    println!(
        "mapping table: {:.1} MiB = {:.2}% of model size (paper: < 4%)",
        bytes as f64 / (1024.0 * 1024.0),
        frac * 100.0
    );
}
