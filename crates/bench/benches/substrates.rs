//! Criterion benches of the substrate crates: DRAM controller throughput,
//! LP solver, workload generation, and per-architecture simulation speed —
//! plus ablation benches for the design choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use recross::config::ReCrossConfig;
use recross::engine::ReCross;
use recross::profile::analytic_profiles;
use recross::{bandwidth_aware_partition, RegionBandwidth, RegionMap};
use recross_bench::workloads::{dram, generator, standard_trace, Scale};
use recross_dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_dram::PhysAddr;
use recross_nmp::accel::EmbeddingAccelerator;
use recross_nmp::{CpuBaseline, RecNmp, TensorDimm, Trim};
use recross_workload::rng::Xoshiro256pp;
use recross_workload::zipf::Zipf;

fn controller_requests(n: u64, salp: bool, dest: BusScope) -> Vec<ReadRequest> {
    (0..n)
        .map(|i| {
            let mul = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ReadRequest {
                id: i,
                addr: PhysAddr {
                    channel: 0,
                    rank: (mul >> 7) as u32 % 2,
                    bank_group: (mul >> 13) as u32 % 8,
                    bank: (mul >> 23) as u32 % 4,
                    row: (mul >> 31) as u32 % 4096,
                    col_byte: ((mul >> 43) as u32 % 120) * 64,
                },
                bursts: 4,
                ready_at: 0,
                dest,
                salp,
                auto_precharge: false,
                write: false,
            }
        })
        .collect()
}

fn bench_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_controller");
    for (name, dest, salp, policy) in [
        (
            "host_frfcfs",
            BusScope::Channel,
            false,
            SchedulePolicy::FrFcfs,
        ),
        ("rank_nmp", BusScope::Rank, false, SchedulePolicy::FrFcfs),
        ("bank_nmp", BusScope::Bank, false, SchedulePolicy::FrFcfs),
        (
            "bank_salp_las",
            BusScope::Bank,
            true,
            SchedulePolicy::LocalityAware,
        ),
    ] {
        g.bench_function(name, |b| {
            let reqs = controller_requests(2_000, salp, dest);
            b.iter(|| {
                let mut ctl = Controller::new(dram(), policy);
                for r in &reqs {
                    ctl.enqueue(*r);
                }
                black_box(ctl.run().len())
            })
        });
    }
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_solver");
    let gen = generator(Scale::Quick, 64);
    let profiles = analytic_profiles(&gen);
    let cfg = ReCrossConfig::default();
    let map = RegionMap::new(&cfg);
    let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
    // Ablation: PWL segment count (solution quality vs solve time).
    for segments in [4usize, 16, 32] {
        g.bench_with_input(
            BenchmarkId::new("bwp_partition_segments", segments),
            &segments,
            |b, &segments| {
                b.iter(|| {
                    black_box(
                        bandwidth_aware_partition(&profiles, &map, &bw, 32.0, segments)
                            .expect("feasible"),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("zipf_sampling_1m_rows", |b| {
        let z = Zipf::new(1_000_000, 1.0).expect("valid");
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.bench_function("trace_generation", |b| {
        let gen = generator(Scale::Tiny, 64);
        b.iter(|| black_box(gen.generate(7).lookups()))
    });
    g.finish();
}

fn bench_accelerators(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerators");
    g.sample_size(10);
    let (gen, trace) = standard_trace(Scale::Tiny, 64);
    g.bench_function("cpu", |b| {
        b.iter(|| black_box(CpuBaseline::new(dram()).run(&trace).cycles))
    });
    g.bench_function("tensordimm", |b| {
        b.iter(|| black_box(TensorDimm::new(dram()).run(&trace).cycles))
    });
    g.bench_function("recnmp", |b| {
        b.iter(|| black_box(RecNmp::new(dram()).run(&trace).cycles))
    });
    g.bench_function("trim_g", |b| {
        b.iter(|| black_box(Trim::bank_group(dram()).run(&trace).cycles))
    });
    g.bench_function("trim_b", |b| {
        b.iter(|| black_box(Trim::bank(dram()).run(&trace).cycles))
    });
    g.bench_function("recross", |b| {
        let profiles = analytic_profiles(&gen);
        let mut sys = ReCross::new(ReCrossConfig::default(), profiles, 2.0).expect("fits");
        b.iter(|| black_box(sys.run(&trace).cycles))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    // Simulated-cycle ablations (the metric is the simulated cycle count;
    // criterion gives wall-clock — both are reported in EXPERIMENTS.md).
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let (gen, trace) = standard_trace(Scale::Tiny, 64);
    for (name, cfg) in [
        ("recross_full", ReCrossConfig::default()),
        ("recross_no_sap", ReCrossConfig::default().without_sap()),
        ("recross_no_bwp", ReCrossConfig::default().without_bwp()),
        ("recross_no_las", ReCrossConfig::default().without_las()),
        ("recross_base", ReCrossConfig::base(dram())),
    ] {
        g.bench_function(name, |b| {
            let profiles = analytic_profiles(&gen);
            let mut sys = ReCross::new(cfg.clone(), profiles, 2.0).expect("fits");
            b.iter(|| black_box(sys.run(&trace).cycles))
        });
    }
    g.bench_function("trim_b_no_replication", |b| {
        let mut sys = Trim::bank(dram()).with_replication(0.0, 1);
        b.iter(|| black_box(sys.run(&trace).cycles))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_controller,
    bench_lp,
    bench_workload,
    bench_accelerators,
    bench_ablations
);
criterion_main!(benches);
