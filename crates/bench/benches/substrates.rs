//! Benches of the substrate crates: DRAM controller throughput, LP solver,
//! workload generation, and per-architecture simulation speed — plus
//! ablation benches for the design choices DESIGN.md calls out.

use recross::config::ReCrossConfig;
use recross::engine::ReCross;
use recross::profile::analytic_profiles;
use recross::{bandwidth_aware_partition, RegionBandwidth, RegionMap};
use recross_bench::timer::BenchGroup;
use recross_bench::workloads::{dram, generator, standard_trace, Scale};
use recross_dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_dram::PhysAddr;
use recross_nmp::accel::EmbeddingAccelerator;
use recross_nmp::{CpuBaseline, RecNmp, TensorDimm, Trim};
use recross_workload::rng::Xoshiro256pp;
use recross_workload::zipf::Zipf;

fn controller_requests(n: u64, salp: bool, dest: BusScope) -> Vec<ReadRequest> {
    (0..n)
        .map(|i| {
            let mul = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ReadRequest {
                id: i,
                addr: PhysAddr {
                    channel: 0,
                    rank: (mul >> 7) as u32 % 2,
                    bank_group: (mul >> 13) as u32 % 8,
                    bank: (mul >> 23) as u32 % 4,
                    row: (mul >> 31) as u32 % 4096,
                    col_byte: ((mul >> 43) as u32 % 120) * 64,
                },
                bursts: 4,
                ready_at: 0,
                dest,
                salp,
                auto_precharge: false,
                write: false,
            }
        })
        .collect()
}

fn bench_controller() {
    let mut g = BenchGroup::new("dram_controller");
    for (name, dest, salp, policy) in [
        (
            "host_frfcfs",
            BusScope::Channel,
            false,
            SchedulePolicy::FrFcfs,
        ),
        ("rank_nmp", BusScope::Rank, false, SchedulePolicy::FrFcfs),
        ("bank_nmp", BusScope::Bank, false, SchedulePolicy::FrFcfs),
        (
            "bank_salp_las",
            BusScope::Bank,
            true,
            SchedulePolicy::LocalityAware,
        ),
    ] {
        let reqs = controller_requests(2_000, salp, dest);
        g.bench(name, || {
            let mut ctl = Controller::new(dram(), policy);
            for r in &reqs {
                ctl.enqueue(*r);
            }
            ctl.run().len()
        });
    }
}

fn bench_lp() {
    let mut g = BenchGroup::new("lp_solver");
    let gen = generator(Scale::Quick, 64);
    let profiles = analytic_profiles(&gen);
    let cfg = ReCrossConfig::default();
    let map = RegionMap::new(&cfg);
    let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
    // Ablation: PWL segment count (solution quality vs solve time).
    for segments in [4usize, 16, 32] {
        g.bench(&format!("bwp_partition_segments/{segments}"), || {
            bandwidth_aware_partition(&profiles, &map, &bw, 32.0, segments).expect("feasible")
        });
    }
}

fn bench_workload() {
    let mut g = BenchGroup::new("workload");
    {
        let z = Zipf::new(1_000_000, 1.0).expect("valid");
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        g.bench("zipf_sampling_1m_rows", move || {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        });
    }
    {
        let gen = generator(Scale::Tiny, 64);
        g.bench("trace_generation", || gen.generate(7).lookups());
    }
}

fn bench_accelerators() {
    let mut g = BenchGroup::new("accelerators");
    g.sample_size(10);
    let (gen, trace) = standard_trace(Scale::Tiny, 64);
    g.bench("cpu", || CpuBaseline::new(dram()).run(&trace).cycles);
    g.bench("tensordimm", || TensorDimm::new(dram()).run(&trace).cycles);
    g.bench("recnmp", || RecNmp::new(dram()).run(&trace).cycles);
    g.bench("trim_g", || Trim::bank_group(dram()).run(&trace).cycles);
    g.bench("trim_b", || Trim::bank(dram()).run(&trace).cycles);
    {
        let profiles = analytic_profiles(&gen);
        let mut sys = ReCross::new(ReCrossConfig::default(), profiles, 2.0).expect("fits");
        g.bench("recross", move || sys.run(&trace).cycles);
    }
}

fn bench_ablations() {
    // Simulated-cycle ablations (the metric is the simulated cycle count;
    // the harness gives wall-clock — both are reported in EXPERIMENTS.md).
    let mut g = BenchGroup::new("ablations");
    g.sample_size(10);
    let (gen, trace) = standard_trace(Scale::Tiny, 64);
    for (name, cfg) in [
        ("recross_full", ReCrossConfig::default()),
        ("recross_no_sap", ReCrossConfig::default().without_sap()),
        ("recross_no_bwp", ReCrossConfig::default().without_bwp()),
        ("recross_no_las", ReCrossConfig::default().without_las()),
        ("recross_base", ReCrossConfig::base(dram())),
    ] {
        let profiles = analytic_profiles(&gen);
        let mut sys = ReCross::new(cfg, profiles, 2.0).expect("fits");
        let t = &trace;
        g.bench(name, move || sys.run(t).cycles);
    }
    let mut sys = Trim::bank(dram()).with_replication(0.0, 1);
    g.bench("trim_b_no_replication", move || sys.run(&trace).cycles);
}

fn main() {
    bench_controller();
    bench_lp();
    bench_workload();
    bench_accelerators();
    bench_ablations();
}
