//! Benches: one group per paper figure/table runner.
//!
//! These time the experiment kernels at the Tiny/Quick scales so
//! `cargo bench` completes in minutes; the full paper-scale data comes from
//! the `repro` binary.

use recross_bench::experiments as exp;
use recross_bench::timer::BenchGroup;
use recross_bench::workloads::{dram, standard_trace, Scale};

fn bench_figures() {
    let mut g = BenchGroup::new("figures");
    g.sample_size(10);

    g.bench("fig03_access_cdf", || exp::fig3_access_cdf(Scale::Tiny, 50));
    g.bench("fig04_imbalance", || exp::fig4_imbalance(Scale::Tiny));
    g.bench("fig05_levels", || exp::fig5_levels(Scale::Tiny));
    g.bench("fig06_timeline", exp::fig6_timeline);
    g.bench("fig12_ablation", || exp::fig12_ablation(Scale::Tiny));
    g.bench("fig13_bwp_imbalance", || exp::fig13_bwp_imbalance(Scale::Tiny));
    g.bench("fig14_configurations", || {
        exp::fig14_configurations(Scale::Tiny)
    });
    g.bench("fig15_energy", || exp::fig15_energy(Scale::Tiny));
    g.bench("table3_area", exp::table3_area);
    g.bench("overheads", || exp::partitioning_overheads(Scale::Tiny));
}

fn bench_sweep_points() {
    // The sweep figures (9/10/11) are benchmarked per representative point
    // rather than per full sweep.
    let mut g = BenchGroup::new("sweeps");
    g.sample_size(10);
    {
        let (gen, trace) = standard_trace(Scale::Tiny, 64);
        g.bench("fig09_point_vlen64", || exp::run_all(&gen, &trace, &dram()));
    }
    {
        let gen = recross_bench::workloads::generator(Scale::Tiny, 64).batch_size(8);
        let trace = gen.generate(1);
        g.bench("fig10_point_batch8", || exp::run_all(&gen, &trace, &dram()));
    }
    {
        let (gen, trace) = standard_trace(Scale::Tiny, 64);
        g.bench("fig11_point_ranks4", || {
            exp::run_all(&gen, &trace, &dram().with_ranks(4))
        });
    }
}

fn main() {
    bench_figures();
    bench_sweep_points();
}
