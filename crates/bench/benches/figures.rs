//! Criterion benches: one group per paper figure/table runner.
//!
//! These time the experiment kernels at the Tiny/Quick scales so
//! `cargo bench` completes in minutes; the full paper-scale data comes from
//! the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use recross_bench::experiments as exp;
use recross_bench::workloads::{dram, standard_trace, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig03_access_cdf", |b| {
        b.iter(|| black_box(exp::fig3_access_cdf(Scale::Tiny, 50)))
    });
    g.bench_function("fig04_imbalance", |b| {
        b.iter(|| black_box(exp::fig4_imbalance(Scale::Tiny)))
    });
    g.bench_function("fig05_levels", |b| {
        b.iter(|| black_box(exp::fig5_levels(Scale::Tiny)))
    });
    g.bench_function("fig06_timeline", |b| {
        b.iter(|| black_box(exp::fig6_timeline()))
    });
    g.bench_function("fig12_ablation", |b| {
        b.iter(|| black_box(exp::fig12_ablation(Scale::Tiny)))
    });
    g.bench_function("fig13_bwp_imbalance", |b| {
        b.iter(|| black_box(exp::fig13_bwp_imbalance(Scale::Tiny)))
    });
    g.bench_function("fig14_configurations", |b| {
        b.iter(|| black_box(exp::fig14_configurations(Scale::Tiny)))
    });
    g.bench_function("fig15_energy", |b| {
        b.iter(|| black_box(exp::fig15_energy(Scale::Tiny)))
    });
    g.bench_function("table3_area", |b| b.iter(|| black_box(exp::table3_area())));
    g.bench_function("overheads", |b| {
        b.iter(|| black_box(exp::partitioning_overheads(Scale::Tiny)))
    });
    g.finish();
}

fn bench_sweep_points(c: &mut Criterion) {
    // The sweep figures (9/10/11) are benchmarked per representative point
    // rather than per full sweep.
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    g.bench_function("fig09_point_vlen64", |b| {
        let (gen, trace) = standard_trace(Scale::Tiny, 64);
        b.iter(|| black_box(exp::run_all(&gen, &trace, &dram())))
    });
    g.bench_function("fig10_point_batch8", |b| {
        let gen = recross_bench::workloads::generator(Scale::Tiny, 64).batch_size(8);
        let trace = gen.generate(1);
        b.iter(|| black_box(exp::run_all(&gen, &trace, &dram())))
    });
    g.bench_function("fig11_point_ranks4", |b| {
        let (gen, trace) = standard_trace(Scale::Tiny, 64);
        b.iter(|| black_box(exp::run_all(&gen, &trace, &dram().with_ranks(4))))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_sweep_points);
criterion_main!(benches);
