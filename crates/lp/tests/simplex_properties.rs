//! Randomized tests of the simplex solver against brute-force enumeration.
//!
//! For random small LPs with only ≤ constraints (plus variable bounds), the
//! optimum lies at a vertex of the polytope; we grid-sample the box and
//! compare objectives. Also checks solver invariants: returned points are
//! feasible and no feasible sample beats the optimum.
//!
//! Cases are generated from the in-repo deterministic PRNG (the container
//! has no network, so an external property-testing crate is not available);
//! every run covers the same seeded case set, which keeps failures
//! reproducible by construction.

use recross_lp::{LpProblem, Relation};
use recross_workload::rng::Xoshiro256pp;

#[derive(Debug, Clone)]
struct SmallLp {
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // a·x <= b, all entries >= 0, b > 0
    ub: Vec<f64>,
}

fn uniform(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn random_lp(rng: &mut Xoshiro256pp) -> SmallLp {
    let n = 2 + rng.next_bounded(2) as usize; // 2..4 variables
    let c = (0..n).map(|_| uniform(rng, 0.1, 5.0)).collect();
    let num_rows = 1 + rng.next_bounded(3) as usize; // 1..4 constraints
    let rows = (0..num_rows)
        .map(|_| {
            let a = (0..n).map(|_| uniform(rng, 0.0, 3.0)).collect();
            (a, uniform(rng, 1.0, 20.0))
        })
        .collect();
    let ub = (0..n).map(|_| uniform(rng, 0.5, 10.0)).collect();
    SmallLp { c, rows, ub }
}

fn build(lp: &SmallLp) -> LpProblem {
    let n = lp.c.len();
    let mut p = LpProblem::new(n);
    p.maximize();
    for (i, &ci) in lp.c.iter().enumerate() {
        p.set_objective_coeff(i, ci);
    }
    for (a, b) in &lp.rows {
        p.add_constraint(
            a.iter().enumerate().map(|(i, &v)| (i, v)).collect(),
            Relation::Le,
            *b,
        );
    }
    for (i, &u) in lp.ub.iter().enumerate() {
        p.set_upper_bound(i, u);
    }
    p
}

fn feasible(lp: &SmallLp, x: &[f64]) -> bool {
    let eps = 1e-6;
    x.iter()
        .enumerate()
        .all(|(i, &v)| v >= -eps && v <= lp.ub[i] + eps)
        && lp
            .rows
            .iter()
            .all(|(a, b)| a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + eps)
}

#[test]
fn optimum_is_feasible_and_unbeaten_by_grid() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x51A917);
    for case in 0..128 {
        let lp = random_lp(&mut rng);
        // All coefficients non-negative with upper bounds → always feasible
        // (origin) and bounded.
        let sol = build(&lp).solve().expect("bounded and feasible");
        assert!(
            feasible(&lp, &sol.values),
            "case {case}: optimum must be feasible: {lp:?}"
        );
        let obj = |x: &[f64]| lp.c.iter().zip(x).map(|(c, v)| c * v).sum::<f64>();
        assert!((obj(&sol.values) - sol.objective).abs() < 1e-6, "case {case}");
        // Grid sample of the box; no feasible point may beat the optimum.
        let n = lp.c.len();
        let steps = 6usize;
        let mut idx = vec![0usize; n];
        loop {
            let x: Vec<f64> = idx
                .iter()
                .enumerate()
                .map(|(i, &k)| lp.ub[i] * k as f64 / (steps - 1) as f64)
                .collect();
            if feasible(&lp, &x) {
                assert!(
                    obj(&x) <= sol.objective + 1e-6,
                    "case {case}: grid point {x:?} with objective {} beats optimum {}",
                    obj(&x),
                    sol.objective
                );
            }
            // Advance the mixed-radix counter.
            let mut done = true;
            for slot in idx.iter_mut() {
                *slot += 1;
                if *slot < steps {
                    done = false;
                    break;
                }
                *slot = 0;
            }
            if done {
                break;
            }
        }
    }
}

#[test]
fn minimization_matches_negated_maximization() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x317_111);
    for case in 0..128 {
        let lp = random_lp(&mut rng);
        // min c·x over the same polytope with x >= 0 trivially gives 0 at
        // the origin; check the solver agrees.
        let mut p = build(&lp);
        p.minimize();
        let sol = p.solve().expect("feasible");
        assert!(
            sol.objective.abs() < 1e-7,
            "case {case}: origin is optimal: {}",
            sol.objective
        );
    }
}

#[test]
fn adding_a_constraint_never_improves() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7143);
    for case in 0..128 {
        let lp = random_lp(&mut rng);
        let base = build(&lp).solve().expect("feasible").objective;
        let mut tighter = build(&lp);
        // Σ x_i <= half of the loosest bound.
        let cap = lp.ub.iter().cloned().fold(f64::INFINITY, f64::min) / 2.0;
        tighter.add_constraint(
            (0..lp.c.len()).map(|i| (i, 1.0)).collect(),
            Relation::Le,
            cap,
        );
        let t = tighter.solve().expect("still feasible").objective;
        assert!(
            t <= base + 1e-6,
            "case {case}: tightening improved: {t} > {base}"
        );
    }
}
