//! Property tests of the simplex solver against brute-force enumeration.
//!
//! For random small LPs with only ≤ constraints (plus variable bounds), the
//! optimum lies at a vertex of the polytope; we enumerate all constraint
//! intersections and compare objectives. Also checks solver invariants:
//! returned points are feasible and no feasible sample beats the optimum.

use proptest::prelude::*;
use recross_lp::{LpProblem, Relation};

#[derive(Debug, Clone)]
struct SmallLp {
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // a·x <= b, all entries >= 0, b > 0
    ub: Vec<f64>,
}

fn arb_small_lp() -> impl Strategy<Value = SmallLp> {
    (2usize..4).prop_flat_map(|n| {
        let c = prop::collection::vec(0.1f64..5.0, n);
        let rows =
            prop::collection::vec((prop::collection::vec(0.0f64..3.0, n), 1.0f64..20.0), 1..4);
        let ub = prop::collection::vec(0.5f64..10.0, n);
        (c, rows, ub).prop_map(|(c, rows, ub)| SmallLp { c, rows, ub })
    })
}

fn build(lp: &SmallLp) -> LpProblem {
    let n = lp.c.len();
    let mut p = LpProblem::new(n);
    p.maximize();
    for (i, &ci) in lp.c.iter().enumerate() {
        p.set_objective_coeff(i, ci);
    }
    for (a, b) in &lp.rows {
        p.add_constraint(
            a.iter().enumerate().map(|(i, &v)| (i, v)).collect(),
            Relation::Le,
            *b,
        );
    }
    for (i, &u) in lp.ub.iter().enumerate() {
        p.set_upper_bound(i, u);
    }
    p
}

fn feasible(lp: &SmallLp, x: &[f64]) -> bool {
    let eps = 1e-6;
    x.iter()
        .enumerate()
        .all(|(i, &v)| v >= -eps && v <= lp.ub[i] + eps)
        && lp
            .rows
            .iter()
            .all(|(a, b)| a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimum_is_feasible_and_unbeaten_by_grid(lp in arb_small_lp()) {
        // All coefficients non-negative with upper bounds → always feasible
        // (origin) and bounded.
        let sol = build(&lp).solve().expect("bounded and feasible");
        prop_assert!(feasible(&lp, &sol.values), "optimum must be feasible");
        let obj = |x: &[f64]| {
            lp.c.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
        };
        prop_assert!((obj(&sol.values) - sol.objective).abs() < 1e-6);
        // Grid sample of the box; no feasible point may beat the optimum.
        let n = lp.c.len();
        let steps = 6usize;
        let mut idx = vec![0usize; n];
        loop {
            let x: Vec<f64> = idx
                .iter()
                .enumerate()
                .map(|(i, &k)| lp.ub[i] * k as f64 / (steps - 1) as f64)
                .collect();
            if feasible(&lp, &x) {
                prop_assert!(
                    obj(&x) <= sol.objective + 1e-6,
                    "grid point {x:?} with objective {} beats optimum {}",
                    obj(&x),
                    sol.objective
                );
            }
            // Advance the mixed-radix counter.
            let mut done = true;
            for slot in idx.iter_mut() {
                *slot += 1;
                if *slot < steps {
                    done = false;
                    break;
                }
                *slot = 0;
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn minimization_matches_negated_maximization(lp in arb_small_lp()) {
        // min c·x over the same polytope with x >= 0 trivially gives 0 at
        // the origin; check the solver agrees.
        let mut p = build(&lp);
        p.minimize();
        let sol = p.solve().expect("feasible");
        prop_assert!(sol.objective.abs() < 1e-7, "origin is optimal: {}", sol.objective);
    }

    #[test]
    fn adding_a_constraint_never_improves(lp in arb_small_lp()) {
        let base = build(&lp).solve().expect("feasible").objective;
        let mut tighter = build(&lp);
        // Σ x_i <= half of the loosest bound.
        let cap = lp.ub.iter().cloned().fold(f64::INFINITY, f64::min) / 2.0;
        tighter.add_constraint(
            (0..lp.c.len()).map(|i| (i, 1.0)).collect(),
            Relation::Le,
            cap,
        );
        let t = tighter.solve().expect("still feasible").objective;
        prop_assert!(t <= base + 1e-6, "tightening improved: {t} > {base}");
    }
}
