//! Linear-program description.
//!
//! The ReCross bandwidth-aware partitioner (paper §4.3) formulates embedding
//! placement as a small LP: minimize the batch latency `t` subject to region
//! capacities (Equ. 3) and simplex constraints on the per-table splits
//! (Equ. 1–2). The paper solves it with Gurobi; we provide a self-contained
//! problem builder + two-phase simplex instead.

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i = b`
    Eq,
    /// `Σ a_i x_i ≥ b`
    Ge,
}

/// One linear constraint over the problem's variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients: (variable index, coefficient).
    pub terms: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize the objective (default — BWP minimizes latency).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A linear program: `opt c·x` s.t. constraints, with `x ≥ 0` plus optional
/// per-variable upper bounds.
///
/// # Examples
///
/// ```
/// use recross_lp::problem::{LpProblem, Relation};
///
/// // maximize x + y s.t. x + 2y <= 4, 3x + y <= 6
/// let mut p = LpProblem::new(2);
/// p.maximize();
/// p.set_objective_coeff(0, 1.0);
/// p.set_objective_coeff(1, 1.0);
/// p.add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
/// p.add_constraint(vec![(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
/// let sol = p.solve().unwrap();
/// // optimum 2.8 at the vertex (1.6, 1.2)
/// assert!((sol.objective - 2.8).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) num_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) direction: Objective,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) upper_bounds: Vec<Option<f64>>,
}

/// A solution to an [`LpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's direction).
    pub objective: f64,
    /// Optimal variable assignment.
    pub values: Vec<f64>,
}

/// Why an LP could not be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The solver exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl core::fmt::Display for LpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => {
                write!(f, "simplex iteration limit exceeded")
            }
        }
    }
}

impl std::error::Error for LpError {}

impl LpProblem {
    /// Creates a problem with `num_vars` non-negative variables and an
    /// all-zero objective.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            direction: Objective::Minimize,
            constraints: Vec::new(),
            upper_bounds: vec![None; num_vars],
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints (excluding bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Switches to maximization.
    pub fn maximize(&mut self) -> &mut Self {
        self.direction = Objective::Maximize;
        self
    }

    /// Switches to minimization (the default).
    pub fn minimize(&mut self) -> &mut Self {
        self.direction = Objective::Minimize;
        self
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `coeff` is not finite.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.num_vars, "variable index out of range");
        assert!(coeff.is_finite(), "objective coefficient must be finite");
        self.objective[var] = coeff;
        self
    }

    /// Adds `x_var ≤ bound` as a cheap dedicated bound row.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `bound` is negative/non-finite.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) -> &mut Self {
        assert!(var < self.num_vars, "variable index out of range");
        assert!(
            bound.is_finite() && bound >= 0.0,
            "upper bound must be finite and non-negative"
        );
        self.upper_bounds[var] = Some(bound);
        self
    }

    /// Adds a general constraint.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variable indices or non-finite numbers.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(v, c) in &terms {
            assert!(v < self.num_vars, "variable index out of range");
            assert!(c.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
        self
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        crate::simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "variable index out of range")]
    fn objective_index_checked() {
        LpProblem::new(1).set_objective_coeff(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "coefficient must be finite")]
    fn constraint_coeff_checked() {
        LpProblem::new(1).add_constraint(vec![(0, f64::NAN)], Relation::Le, 1.0);
    }

    #[test]
    fn builder_counts() {
        let mut p = LpProblem::new(3);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        p.set_upper_bound(2, 5.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 1);
    }
}
