#![allow(clippy::needless_range_loop)] // dense tableau math reads clearer indexed
//! Dense two-phase primal simplex.
//!
//! Standard textbook construction: every constraint receives a slack (≤),
//! surplus+artificial (≥), or artificial (=) variable; phase 1 minimizes the
//! sum of artificials to find a basic feasible solution, phase 2 optimizes
//! the real objective. Bland's rule is used as an anti-cycling fallback after
//! a degenerate stretch; Dantzig's rule otherwise for speed. The BWP LPs are
//! tiny (≈ 100 variables), so a dense tableau is the right tool.

use crate::problem::{LpError, LpProblem, LpSolution, Objective, Relation};

const EPS: f64 = 1e-9;

/// Solves `problem`; see [`LpProblem::solve`].
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    Tableau::build(problem).and_then(|mut t| t.run(problem))
}

struct Tableau {
    /// rows × cols coefficient matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize, // total structural+slack+artificial variables
    artificial_start: usize,
    num_vars: usize,
}

impl Tableau {
    fn build(p: &LpProblem) -> Result<Self, LpError> {
        // Materialize constraints: general rows + upper-bound rows.
        let mut rows_data: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for c in &p.constraints {
            let mut dense = vec![0.0; p.num_vars];
            for &(v, coef) in &c.terms {
                dense[v] += coef;
            }
            rows_data.push((dense, c.relation, c.rhs));
        }
        for (v, ub) in p.upper_bounds.iter().enumerate() {
            if let Some(b) = ub {
                let mut dense = vec![0.0; p.num_vars];
                dense[v] = 1.0;
                rows_data.push((dense, Relation::Le, *b));
            }
        }
        // Normalize to non-negative RHS.
        for (dense, rel, rhs) in &mut rows_data {
            if *rhs < 0.0 {
                for c in dense.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        let m = rows_data.len();
        let n = p.num_vars;
        // Count extra columns.
        let mut num_slack = 0;
        let mut num_art = 0;
        for (_, rel, _) in &rows_data {
            match rel {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Relation::Eq => num_art += 1,
            }
        }
        let artificial_start = n + num_slack;
        let cols = n + num_slack + num_art;
        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = artificial_start;
        for (r, (dense, rel, rhs)) in rows_data.iter().enumerate() {
            a[r][..n].copy_from_slice(dense);
            a[r][cols] = *rhs;
            match rel {
                Relation::Le => {
                    a[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    a[r][slack_idx] = -1.0;
                    slack_idx += 1;
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }
        Ok(Self {
            a,
            basis,
            rows: m,
            cols,
            artificial_start,
            num_vars: n,
        })
    }

    fn run(&mut self, p: &LpProblem) -> Result<LpSolution, LpError> {
        // Phase 1: minimize sum of artificials (as maximize -Σ art).
        if self.artificial_start < self.cols {
            let mut obj = vec![0.0; self.cols];
            for c in obj.iter_mut().skip(self.artificial_start) {
                *c = -1.0;
            }
            let val = self.optimize(&obj)?;
            if val < -1e-7 {
                return Err(LpError::Infeasible);
            }
            self.drive_out_artificials();
        }
        // Phase 2: the real objective, as maximization.
        let mut obj = vec![0.0; self.cols];
        let sign = match p.direction {
            Objective::Maximize => 1.0,
            Objective::Minimize => -1.0,
        };
        for (v, &c) in p.objective.iter().enumerate() {
            obj[v] = sign * c;
        }
        // Artificials must stay out: forbid them by a strongly negative cost.
        let val = self.optimize(&obj)?;
        let mut values = vec![0.0; self.num_vars];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                values[b] = self.a[r][self.cols];
            }
        }
        Ok(LpSolution {
            objective: sign * val,
            values,
        })
    }

    /// Maximizes `obj·x` from the current basic feasible point; returns the
    /// optimal value. Artificial columns are never allowed to (re-)enter.
    fn optimize(&mut self, obj: &[f64]) -> Result<f64, LpError> {
        // Reduced-cost row maintained explicitly.
        let cols = self.cols;
        let mut z = vec![0.0; cols + 1];
        // z_j = c_B · B^-1 A_j - c_j ; start from scratch.
        for j in 0..=cols {
            let mut acc = 0.0;
            for r in 0..self.rows {
                acc += obj[self.basis[r]] * self.a[r][j];
            }
            acc -= if j < cols { obj[j] } else { 0.0 };
            z[j] = acc;
        }
        let max_iters = 200 * (self.rows + cols).max(50);
        let mut degenerate_streak = 0usize;
        for _ in 0..max_iters {
            // Entering column: most negative reduced cost (Dantzig), or
            // Bland's first-negative after degeneracy.
            let bland = degenerate_streak > self.rows + 10;
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for (j, &zj) in z.iter().enumerate().take(cols) {
                if j >= self.artificial_start && obj[j] == 0.0 {
                    // Phase 2: artificials are not eligible.
                    continue;
                }
                if zj < best {
                    enter = Some(j);
                    if bland {
                        break;
                    }
                    best = zj;
                }
            }
            let Some(e) = enter else {
                // Optimal.
                let mut val = 0.0;
                for r in 0..self.rows {
                    val += obj[self.basis[r]] * self.a[r][cols];
                }
                return Ok(val);
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let coef = self.a[r][e];
                if coef > EPS {
                    let ratio = self.a[r][cols] / coef;
                    if ratio < best_ratio - EPS
                        || (bland
                            && (ratio - best_ratio).abs() <= EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(l) = leave else {
                return Err(LpError::Unbounded);
            };
            if best_ratio <= EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(l, e, &mut z, obj);
        }
        Err(LpError::IterationLimit)
    }

    fn pivot(&mut self, row: usize, col: usize, z: &mut [f64], obj: &[f64]) {
        let cols = self.cols;
        let pv = self.a[row][col];
        debug_assert!(pv.abs() > EPS, "pivot on near-zero element");
        for j in 0..=cols {
            self.a[row][j] /= pv;
        }
        for r in 0..self.rows {
            if r != row {
                let f = self.a[r][col];
                if f.abs() > EPS {
                    for j in 0..=cols {
                        self.a[r][j] -= f * self.a[row][j];
                    }
                }
            }
        }
        let zf = z[col];
        if zf.abs() > EPS {
            for j in 0..=cols {
                z[j] -= zf * self.a[row][j];
            }
        }
        self.basis[row] = col;
        // Recompute the entering column's reduced cost exactly (should be 0).
        z[col] = 0.0;
        let _ = obj;
    }

    /// After phase 1, pivot remaining (zero-valued) artificial basis
    /// variables out where possible so phase 2 starts clean.
    fn drive_out_artificials(&mut self) {
        for r in 0..self.rows {
            if self.basis[r] >= self.artificial_start {
                // Find a structural/slack column with nonzero coefficient.
                if let Some(j) = (0..self.artificial_start).find(|&j| self.a[r][j].abs() > 1e-7) {
                    let mut z = vec![0.0; self.cols + 1];
                    let obj = vec![0.0; self.cols];
                    self.pivot(r, j, &mut z, &obj);
                }
                // Otherwise the row is redundant (all-zero): harmless.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6)
        let mut p = LpProblem::new(2);
        p.maximize();
        p.set_objective_coeff(0, 3.0).set_objective_coeff(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        approx(s.objective, 36.0);
        approx(s.values[0], 2.0);
        approx(s.values[1], 6.0);
    }

    #[test]
    fn minimize_with_ge() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> 2*4? best at y=0,x=4 -> 8
        let mut p = LpProblem::new(2);
        p.set_objective_coeff(0, 2.0).set_objective_coeff(1, 3.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 8.0);
        approx(s.values[0], 4.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 5, x <= 2 -> 5 (e.g. x=2,y=3)
        let mut p = LpProblem::new(2);
        p.set_objective_coeff(0, 1.0).set_objective_coeff(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.set_upper_bound(0, 2.0);
        let s = p.solve().unwrap();
        approx(s.objective, 5.0);
        approx(s.values[0] + s.values[1], 5.0);
        assert!(s.values[0] <= 2.0 + 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::new(1);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        p.set_upper_bound(0, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = LpProblem::new(1);
        p.maximize();
        p.set_objective_coeff(0, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2  (i.e. y - x >= 2), min y -> with x>=0, min y = 2 at x=0.
        let mut p = LpProblem::new(2);
        p.set_objective_coeff(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        approx(s.objective, 2.0);
    }

    #[test]
    fn min_max_latency_structure() {
        // The BWP shape: min t s.t. t >= D_j / bw_j with D_j linear in x.
        // min t ; t - 2x >= 0 ; t - (10 - x) * 0.5 >= 0 ; x <= 10
        // => t = max(2x, 5 - 0.5x), optimum where equal: x = 2, t = 4.
        let mut p = LpProblem::new(2); // x0 = t, x1 = x
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, -2.0)], Relation::Ge, 0.0);
        p.add_constraint(vec![(0, 1.0), (1, 0.5)], Relation::Ge, 5.0);
        p.set_upper_bound(1, 10.0);
        let s = p.solve().unwrap();
        approx(s.objective, 4.0);
        approx(s.values[1], 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several redundant constraints through origin.
        let mut p = LpProblem::new(2);
        p.maximize();
        p.set_objective_coeff(0, 1.0).set_objective_coeff(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(0, 2.0), (1, 2.0)], Relation::Le, 2.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 1.0);
    }

    #[test]
    fn zero_constraint_problem() {
        // min 0 with no constraints: trivially solvable at origin.
        let p = LpProblem::new(3);
        let s = p.solve().unwrap();
        approx(s.objective, 0.0);
        assert_eq!(s.values, vec![0.0; 3]);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // x + x <= 4 means 2x <= 4.
        let mut p = LpProblem::new(1);
        p.maximize();
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = p.solve().unwrap();
        approx(s.objective, 2.0);
    }
}
