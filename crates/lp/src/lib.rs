//! # recross-lp
//!
//! A small, dependency-free linear-programming substrate for the ReCross
//! reproduction. The paper's bandwidth-aware partitioning (§4.3) formulates
//! embedding-table placement as an LP solved by Gurobi; this crate provides
//! an exact replacement sized for that problem class:
//!
//! * [`problem`] — LP builder ([`LpProblem`]) with ≤/=/≥ constraints,
//!   non-negative variables and upper bounds;
//! * [`simplex`] — dense two-phase primal simplex with anti-cycling;
//! * [`pwl`] — piecewise-linearization of the concave access CDFs so they
//!   can enter the LP.
//!
//! # Examples
//!
//! ```
//! use recross_lp::{LpProblem, Relation};
//!
//! // minimize t subject to t >= 3x and t >= 6 - x, 0 <= x <= 10
//! let mut p = LpProblem::new(2); // vars: t, x
//! p.set_objective_coeff(0, 1.0);
//! p.add_constraint(vec![(0, 1.0), (1, -3.0)], Relation::Ge, 0.0);
//! p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 6.0);
//! p.set_upper_bound(1, 10.0);
//! let sol = p.solve()?;
//! assert!((sol.objective - 4.5).abs() < 1e-7); // t = 4.5 at x = 1.5
//! # Ok::<(), recross_lp::LpError>(())
//! ```

pub mod problem;
pub mod pwl;
pub mod simplex;

pub use problem::{Constraint, LpError, LpProblem, LpSolution, Objective, Relation};
pub use pwl::PiecewiseLinear;
