//! Piecewise-linearization of concave curves.
//!
//! The access-distribution functions `f_i(p)` are concave (marginal access
//! share shrinks as colder rows are added). A concave function that is
//! *maximized* (equivalently, appears on the "captured accesses" side of a
//! min-max latency LP) can be represented exactly in an LP as the lower
//! envelope of its chords: `f(p) ≤ s_k · p + c_k` for each segment `k`.

/// A concave piecewise-linear over-approximation of a function on `[0, 1]`,
/// stored as segments `y = slope·x + intercept`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    segments: Vec<(f64, f64)>, // (slope, intercept)
    knots: Vec<(f64, f64)>,    // sampled points, for interpolation/eval
}

impl PiecewiseLinear {
    /// Samples `f` at `segments + 1` evenly spaced points on `[0, 1]` and
    /// builds tangent-chord segments between consecutive samples.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `f` returns non-finite values.
    pub fn from_concave_fn<F: Fn(f64) -> f64>(f: F, segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        let knots: Vec<(f64, f64)> = (0..=segments)
            .map(|i| {
                let x = i as f64 / segments as f64;
                let y = f(x);
                assert!(y.is_finite(), "function value must be finite");
                (x, y)
            })
            .collect();
        let segments = knots
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                let slope = (y1 - y0) / (x1 - x0);
                (slope, y0 - slope * x0)
            })
            .collect();
        Self { segments, knots }
    }

    /// Segment list as `(slope, intercept)` pairs, hottest (steepest) first
    /// for a concave input.
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }

    /// Evaluates the piecewise-linear interpolant at `x ∈ [0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        // For concave f the interpolant equals the min over chords only at
        // the knots; between knots use the containing segment.
        let n = self.segments.len();
        let idx = ((x * n as f64).floor() as usize).min(n - 1);
        let (s, c) = self.segments[idx];
        s * x + c
    }

    /// Evaluates the *lower envelope* `min_k (s_k x + c_k)` — what the LP
    /// effectively sees for a concave curve.
    pub fn envelope(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        self.segments
            .iter()
            .map(|&(s, c)| s * x + c)
            .fold(f64::INFINITY, f64::min)
    }

    /// The sampled knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_exactly_at_knots() {
        let f = |x: f64| x.sqrt();
        let pwl = PiecewiseLinear::from_concave_fn(f, 8);
        for &(x, y) in pwl.knots() {
            assert!((pwl.eval(x) - y).abs() < 1e-12, "knot ({x}, {y})");
        }
    }

    #[test]
    fn envelope_equals_interpolant_for_concave() {
        let f = |x: f64| 1.0 - (1.0 - x) * (1.0 - x);
        let pwl = PiecewiseLinear::from_concave_fn(f, 16);
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!((pwl.envelope(x) - pwl.eval(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn error_shrinks_with_segments() {
        let f = |x: f64| x.sqrt();
        let err = |n: usize| {
            let pwl = PiecewiseLinear::from_concave_fn(f, n);
            (1..100)
                .map(|i| {
                    let x = i as f64 / 100.0;
                    (pwl.eval(x) - f(x)).abs()
                })
                .fold(0.0f64, f64::max)
        };
        assert!(err(32) < err(4));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        PiecewiseLinear::from_concave_fn(|x| x, 0);
    }

    #[test]
    fn linear_function_is_exact() {
        let pwl = PiecewiseLinear::from_concave_fn(|x| 2.0 * x + 0.5, 3);
        for &x in &[0.0, 0.33, 0.7, 1.0] {
            assert!((pwl.eval(x) - (2.0 * x + 0.5)).abs() < 1e-12);
        }
    }
}
