//! Energy accounting.
//!
//! Counts the events the paper's energy model charges for (Table 2 / Fig. 15):
//! row activations, DRAM array read/write bits, off-chip I/O bits, PE
//! floating-point operations, and execution-time-proportional static energy.

use crate::config::{Cycle, DramConfig, EnergyParams};

/// Raw event counters filled in by the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyCounters {
    /// Row activations (ACT and SALP ACT).
    pub activations: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Bits read from / written to DRAM arrays.
    pub rd_wr_bits: u64,
    /// Bits crossing the off-chip (DIMM↔host) interface.
    pub io_bits: u64,
    /// FP32 additions performed by PEs (or CPU, for the baseline).
    pub fp_adds: u64,
    /// FP32 multiplications performed by PEs.
    pub fp_muls: u64,
}

impl EnergyCounters {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activations += other.activations;
        self.refreshes += other.refreshes;
        self.rd_wr_bits += other.rd_wr_bits;
        self.io_bits += other.io_bits;
        self.fp_adds += other.fp_adds;
        self.fp_muls += other.fp_muls;
    }
}

/// An energy breakdown in picojoules (Figure 15's stacked components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activation energy.
    pub act_pj: f64,
    /// DRAM array read/write energy.
    pub rd_wr_pj: f64,
    /// Off-chip I/O energy.
    pub io_pj: f64,
    /// PE arithmetic energy.
    pub pe_pj: f64,
    /// Static (background) energy over the run's duration.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.act_pj + self.rd_wr_pj + self.io_pj + self.pe_pj + self.static_pj
    }

    /// Computes a breakdown from counters, a run duration, and the config.
    pub fn from_counters(counters: &EnergyCounters, duration: Cycle, cfg: &DramConfig) -> Self {
        let e: &EnergyParams = &cfg.energy;
        let seconds = cfg.cycles_to_ns(duration) * 1e-9;
        let ranks = f64::from(cfg.topology.ranks * cfg.topology.channels);
        Self {
            act_pj: counters.activations as f64 * e.act_pj + counters.refreshes as f64 * e.ref_pj,
            rd_wr_pj: counters.rd_wr_bits as f64 * e.rd_wr_pj_per_bit,
            io_pj: counters.io_bits as f64 * e.io_pj_per_bit,
            pe_pj: counters.fp_adds as f64 * e.fp32_add_pj
                + counters.fp_muls as f64 * e.fp32_mul_pj,
            // mW × s = mJ = 1e9 pJ.
            static_pj: e.static_mw_per_rank * ranks * seconds * 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = EnergyCounters {
            activations: 1,
            rd_wr_bits: 10,
            ..Default::default()
        };
        let b = EnergyCounters {
            activations: 2,
            io_bits: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activations, 3);
        assert_eq!(a.rd_wr_bits, 10);
        assert_eq!(a.io_bits, 5);
    }

    #[test]
    fn breakdown_matches_constants() {
        let cfg = DramConfig::ddr5_4800();
        let c = EnergyCounters {
            activations: 10,
            refreshes: 0,
            rd_wr_bits: 1000,
            io_bits: 500,
            fp_adds: 100,
            fp_muls: 10,
        };
        let e = EnergyBreakdown::from_counters(&c, 0, &cfg);
        assert!((e.act_pj - 20_000.0).abs() < 1e-9); // 10 × 2 nJ
        assert!((e.rd_wr_pj - 4_200.0).abs() < 1e-9);
        assert!((e.io_pj - 2_000.0).abs() < 1e-9);
        assert!((e.pe_pj - (90.0 + 24.0)).abs() < 1e-9);
        assert_eq!(e.static_pj, 0.0);
        assert!((e.total_pj() - (20_000.0 + 4_200.0 + 2_000.0 + 114.0)).abs() < 1e-6);
    }

    #[test]
    fn refresh_energy_in_act_bucket() {
        let cfg = DramConfig::ddr5_4800();
        let c = EnergyCounters {
            refreshes: 3,
            ..Default::default()
        };
        let e = EnergyBreakdown::from_counters(&c, 0, &cfg);
        assert!((e.act_pj - 3.0 * cfg.energy.ref_pj).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let cfg = DramConfig::ddr5_4800();
        let c = EnergyCounters::default();
        let e1 = EnergyBreakdown::from_counters(&c, 2_400_000, &cfg); // 1 ms
        let e2 = EnergyBreakdown::from_counters(&c, 4_800_000, &cfg); // 2 ms
        assert!(e1.static_pj > 0.0);
        assert!((e2.static_pj / e1.static_pj - 2.0).abs() < 1e-9);
    }
}
