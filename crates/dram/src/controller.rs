//! A command-level read controller with FR-FCFS scheduling.
//!
//! This is the memory-controller model shared by every accelerator in the
//! reproduction: per-bank request queues, open-page policy, and First-Ready
//! First-Come-First-Served scheduling (Rixner et al., the paper's ref. 56) —
//! row-buffer hits are served before older row-buffer misses — plus the
//! subarray-aware locality scheduling of ReCross §4.1.
//!
//! Scheduling is *per command*: each scheduler step issues exactly one DRAM
//! command (PRE/ACT/ACT_SA/SEL_SA or a single RD burst), so bursts of
//! different requests interleave across banks and buses just as a real
//! controller pipeline does. Reordering is bounded: a per-bank window
//! models the limited PE-side queues of NMP designs, and an optional global
//! window models the host controller's finite request queue (Table 2:
//! 64 entries).
//!
//! Each request names the *destination level* of its data ([`BusScope`]):
//! reads bound for a bank-level PE never leave the bank, reads for a
//! bank-group PE occupy the bank-group I/O, reads for a rank PE additionally
//! occupy the rank DQ, and host-bound reads cross all three plus the channel
//! bus (paper Figure 6). Requests at different levels coexist in one
//! controller and share the ACT/tFAW/tCCD windows — this is what lets
//! ReCross run its three regions concurrently in the same ranks.

use std::collections::VecDeque;

use crate::addr::PhysAddr;
use crate::bus::BusSet;
use crate::command::{Command, CommandKind, DataScope, IssuedCommand};
use crate::config::{Cycle, DramConfig};
use crate::energy::EnergyCounters;
use crate::timing::TimingState;

/// Destination of a read's data — how far up the DRAM datapath it travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusScope {
    /// Data crosses to the host: bank-group I/O + rank DQ + channel bus.
    Channel,
    /// Data stops at a rank-buffer PE (TensorDIMM / RecNMP / R-region).
    Rank,
    /// Data stops at a bank-group PE (TRiM-G / G-region).
    BankGroup,
    /// Data stops at a per-bank PE (TRiM-B / ReCross B-region).
    Bank,
}

/// One read request: fetch `bursts` consecutive bursts starting at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    /// Caller-chosen identifier, reported back on completion.
    pub id: u64,
    /// Starting (burst-aligned) address.
    pub addr: PhysAddr,
    /// Number of consecutive bursts to read.
    pub bursts: u32,
    /// Earliest cycle the request may start being serviced (e.g. after its
    /// NMP instruction arrived).
    pub ready_at: Cycle,
    /// Where the data lands.
    pub dest: BusScope,
    /// Whether this bank supports subarray-parallel access (ReCross
    /// B-region banks).
    pub salp: bool,
    /// Closed-page access: precharge immediately after the last burst
    /// (paper Figure 6 — the baseline NMPs issue deterministic
    /// ACT-RD-PRE sequences and never reuse an open row).
    pub auto_precharge: bool,
    /// Write instead of read (embedding updates, §4.5). Writes use the
    /// global row buffer path (no SALP).
    pub write: bool,
}

impl ReadRequest {
    /// Convenience constructor for host-bound (conventional) reads.
    pub fn to_host(id: u64, addr: PhysAddr, bursts: u32) -> Self {
        Self {
            id,
            addr,
            bursts,
            ready_at: 0,
            dest: BusScope::Channel,
            salp: false,
            auto_precharge: false,
            write: false,
        }
    }

    /// Convenience constructor for a host-issued write (embedding update).
    pub fn write_from_host(id: u64, addr: PhysAddr, bursts: u32) -> Self {
        Self {
            write: true,
            ..Self::to_host(id, addr, bursts)
        }
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Cycle at which the last data burst finished on the bus.
    pub done_at: Cycle,
    /// Whether the first access hit an already-open row (global or local).
    pub row_hit: bool,
}

/// Scheduling policy for picking among serviceable requests in a bank queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// First-Ready FCFS: open-row hits first, then oldest.
    #[default]
    FrFcfs,
    /// ReCross locality-aware scheduling (§4.1): same-local-row-buffer hits
    /// first, then requests in *different* subarrays (activations overlap),
    /// then same-subarray different-row requests.
    LocalityAware,
    /// Plain FCFS (no reordering) — ablation baseline.
    Fcfs,
}

/// Aggregate statistics of one controller run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Cycle the last burst completed.
    pub finish: Cycle,
    /// Row-buffer hit count.
    pub row_hits: u64,
    /// Row-buffer miss count.
    pub row_misses: u64,
    /// Number of issued commands by kind:
    /// (ACT, RD, PRE, ACT_SA, SEL_SA, REF).
    pub issued: [u64; 6],
    /// Per-flat-bank request loads (for imbalance analysis).
    pub bank_loads: Vec<u64>,
    /// Cycles the channel data bus (host-facing DQ pins) carried bursts:
    /// every reservation that crosses the channel scope — host-bound
    /// reads and NMP result returns — adds its burst duration here.
    pub data_bus_busy: Cycle,
    /// Energy event counters.
    pub energy: EnergyCounters,
}

impl RunStats {
    /// Row-hit rate in [0, 1]; 0 if no accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Channel data-bus utilization as a fraction of the run:
    /// `data_bus_busy / finish`, 0 for an empty run. Unlike the raw cycle
    /// counter this is directly comparable across runs of different
    /// lengths (the Fig. 12-style bus-saturation analyses).
    pub fn bus_utilization(&self) -> f64 {
        if self.finish == 0 {
            0.0
        } else {
            self.data_bus_busy as f64 / self.finish as f64
        }
    }
}

/// Device-I/O scope a read occupies for a given destination.
fn data_scope_of(dest: BusScope) -> DataScope {
    match dest {
        BusScope::Bank => DataScope::Bank,
        BusScope::BankGroup => DataScope::BankGroup,
        BusScope::Rank | BusScope::Channel => DataScope::Rank,
    }
}

/// A request in flight, with its service progress.
#[derive(Debug, Clone, Copy)]
struct ActiveRequest {
    req: ReadRequest,
    bursts_done: u32,
    /// Whether the hit/miss classification has been recorded.
    classified: bool,
    /// Classification outcome (valid once `classified`).
    was_hit: bool,
    /// Completion time of the last data burst so far.
    last_data: Cycle,
}

/// The next schedulable command for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Pre,
    Act,
    ActSa,
    SelSa,
    Rd,
    Wr,
}

/// The controller. Drives one channel.
#[derive(Debug)]
pub struct Controller {
    cfg: DramConfig,
    timing: TimingState,
    policy: SchedulePolicy,
    group_bus: BusSet,
    rank_bus: BusSet,
    channel_bus: BusSet,
    queues: Vec<VecDeque<ActiveRequest>>, // per flat bank, arrival order
    /// SALP mode each bank has been used in (a bank either has SALP
    /// support or it does not — mixing modes is a caller bug).
    bank_salp_mode: Vec<Option<bool>>,
    bank_window: usize,
    global_window: Option<usize>,
    /// Requests waiting for a slot in the bounded global queue.
    pending: VecDeque<ReadRequest>,
    outstanding: usize,
    next_seq: u64,
    /// Per-rank cycle of the last issued refresh (tREFI cadence).
    last_ref: Vec<Cycle>,
    /// Per-rank latest committed command cycle (refresh ordering fence).
    rank_latest: Vec<Cycle>,
    trace: Option<Vec<IssuedCommand>>,
    stats: RunStats,
    completions: Vec<Completion>,
}

impl Controller {
    /// Creates a controller for one channel of `cfg` with the default
    /// per-bank reorder window of 16 requests.
    pub fn new(cfg: DramConfig, policy: SchedulePolicy) -> Self {
        cfg.validate();
        let topo = cfg.topology;
        let timing = TimingState::new(topo, cfg.timing);
        let banks = topo.banks_per_channel() as usize;
        Self {
            timing,
            policy,
            group_bus: BusSet::new((topo.ranks * topo.bank_groups) as usize),
            rank_bus: BusSet::new(topo.ranks as usize),
            channel_bus: BusSet::new(1),
            queues: vec![VecDeque::new(); banks],
            bank_salp_mode: vec![None; banks],
            bank_window: 16,
            global_window: None,
            pending: VecDeque::new(),
            outstanding: 0,
            next_seq: 0,
            last_ref: vec![0; topo.ranks as usize],
            rank_latest: vec![0; topo.ranks as usize],
            trace: None,
            stats: RunStats {
                bank_loads: vec![0; banks],
                ..Default::default()
            },
            completions: Vec::new(),
            cfg,
        }
    }

    /// Sets the per-bank reorder window (PE-side queue depth).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_bank_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.bank_window = window;
        self
    }

    /// Bounds the controller to `window` outstanding requests in arrival
    /// order (the host's finite request queue — Table 2: 64 entries). A new
    /// request only enters the scheduler when a completion frees a slot, at
    /// the completing request's finish time.
    pub fn with_global_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.global_window = Some(window);
        self
    }

    /// Enables recording of the full command trace (Figure 6 / checker).
    pub fn record_trace(&mut self) -> &mut Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Recorded command trace, if enabled (sorted by issue cycle).
    pub fn trace(&self) -> Option<Vec<IssuedCommand>> {
        self.trace.as_ref().map(|t| {
            let mut t = t.clone();
            t.sort_by_key(|ic| ic.cycle);
            t
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the address is invalid, `bursts == 0`, or the read crosses
    /// a row boundary (callers must split row-crossing vectors).
    pub fn enqueue(&mut self, req: ReadRequest) {
        let topo = &self.cfg.topology;
        assert!(req.addr.is_valid(topo), "invalid address {}", req.addr);
        assert!(req.bursts > 0, "empty request");
        assert!(
            req.addr.col_byte + req.bursts * topo.burst_bytes <= topo.row_bytes,
            "request crosses a row boundary"
        );
        assert!(
            !(req.write && req.salp),
            "writes use the global row-buffer path, not SALP"
        );
        let flat = req.addr.flat_bank(topo) as usize;
        match self.bank_salp_mode[flat] {
            None => self.bank_salp_mode[flat] = Some(req.salp),
            Some(mode) => assert_eq!(
                mode, req.salp,
                "bank {flat} used with mixed SALP modes — a bank either has \
                 a subarray-parallel PE or it does not"
            ),
        }
        self.stats.bank_loads[flat] += 1;
        match self.global_window {
            Some(w) if self.outstanding >= w => self.pending.push_back(req),
            _ => self.admit(req, 0),
        }
    }

    /// Places a request into its bank queue, no earlier than `min_start`.
    fn admit(&mut self, mut req: ReadRequest, min_start: Cycle) {
        req.ready_at = req.ready_at.max(min_start);
        let flat = req.addr.flat_bank(&self.cfg.topology) as usize;
        self.next_seq += 1;
        self.outstanding += 1;
        self.queues[flat].push_back(ActiveRequest {
            req,
            bursts_done: 0,
            classified: false,
            was_hit: false,
            last_data: 0,
        });
    }

    /// Runs until all queues drain; returns completions in finish order.
    ///
    /// Refresh commands (tREFI cadence, Table 2/DDR5 defaults) are issued
    /// inline: before each scheduled command, every rank whose refresh is
    /// due by that command's issue estimate gets a REF first.
    pub fn run(&mut self) -> Vec<Completion> {
        while let Some((bank, idx, step, est)) = self.pick_next() {
            if self.refresh_due_ranks(est) {
                // Bank states changed under the picked step; re-pick.
                continue;
            }
            self.perform(bank, idx, step);
        }
        let mut done = std::mem::take(&mut self.completions);
        done.sort_by_key(|c| c.done_at);
        done
    }

    /// Issues REF to every rank whose tREFI deadline falls at or before
    /// `horizon`; returns whether any was issued.
    fn refresh_due_ranks(&mut self, horizon: Cycle) -> bool {
        let t_refi = self.cfg.timing.t_refi;
        if t_refi == 0 {
            return false;
        }
        let mut any = false;
        for rank in 0..self.cfg.topology.ranks {
            while self.last_ref[rank as usize] + t_refi <= horizon {
                let due = self.last_ref[rank as usize] + t_refi;
                let addr = PhysAddr {
                    channel: 0,
                    rank,
                    bank_group: 0,
                    bank: 0,
                    row: 0,
                    col_byte: 0,
                };
                // Fence: never refresh behind a command already committed
                // for this rank — the schedule must stay replayable in
                // cycle order.
                let not_before = due.max(self.rank_latest[rank as usize]);
                let at = self.issue(CommandKind::Ref, addr, not_before, DataScope::Rank);
                self.stats.energy.refreshes += 1;
                self.last_ref[rank as usize] = at;
                any = true;
            }
        }
        any
    }

    /// Reserves the host-bound channel bus (e.g. for NMP result return);
    /// returns the cycle the transfer completes.
    pub fn reserve_channel(&mut self, not_before: Cycle, bursts: u32) -> Cycle {
        let dur = Cycle::from(bursts) * self.cfg.timing.t_bl;
        let start = self.channel_bus.earliest(0, not_before);
        self.channel_bus.reserve(0, start, dur);
        self.stats.data_bus_busy += dur;
        start + dur
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable access to the energy counters (engines add PE/IO events).
    pub fn energy_mut(&mut self) -> &mut EnergyCounters {
        &mut self.stats.energy
    }

    /// Channel-bus utilization over the run so far.
    pub fn channel_utilization(&self) -> f64 {
        self.channel_bus.utilization(0, self.stats.finish)
    }

    /// Per-rank data-bus utilizations over the run so far.
    pub fn rank_utilizations(&self) -> Vec<f64> {
        (0..self.cfg.topology.ranks as usize)
            .map(|r| self.rank_bus.utilization(r, self.stats.finish))
            .collect()
    }

    /// Chooses the globally earliest next command:
    /// `(bank, index, step, estimated cycle)`.
    fn pick_next(&self) -> Option<(usize, usize, Step, Cycle)> {
        let mut best: Option<(Cycle, usize, usize, Step)> = None;
        for (bank, q) in self.queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let Some((idx, step, est)) = self.bank_candidate(q) else {
                continue;
            };
            if best.is_none_or(|(b, _, _, _)| est < b) {
                best = Some((est, bank, idx, step));
            }
        }
        best.map(|(est, bank, idx, step)| (bank, idx, step, est))
    }

    /// The bank's next candidate: the policy pick, plus (for SALP banks) an
    /// overlapping activation from another queued request if it can issue
    /// earlier.
    fn bank_candidate(&self, q: &VecDeque<ActiveRequest>) -> Option<(usize, Step, Cycle)> {
        let window = self.bank_window.min(q.len());
        // Policy pick among requests in the window.
        let primary = self.select_in_window(q, window)?;
        let (p_step, p_est) = self.next_step(&q[primary]);
        let mut best = (primary, p_step, p_est);
        // Overlap: a pending SALP activation (different request) that can
        // issue strictly earlier than the policy pick's step — but never
        // one that would thrash a local row buffer another queued request
        // still needs (same-subarray conflicts re-activate endlessly).
        let topo = &self.cfg.topology;
        'outer: for (i, a) in q.iter().enumerate().take(window) {
            if i == primary || !a.req.salp {
                continue;
            }
            let (step, est) = self.next_step(a);
            if step != Step::ActSa || est >= best.2 {
                continue;
            }
            let sa = a.req.addr.subarray(topo);
            for (j, other) in q.iter().enumerate().take(window) {
                if j == i || !other.req.salp {
                    continue;
                }
                let other_sa = other.req.addr.subarray(topo);
                if other_sa != sa {
                    continue;
                }
                // The buffer currently holds a row some request wants, or
                // an older request needs a different row of this subarray
                // first: leave it alone.
                let useful =
                    self.timing.local_row(&other.req.addr, other_sa) == Some(other.req.addr.row);
                if useful || (j < i && other.req.addr.row != a.req.addr.row) {
                    continue 'outer;
                }
            }
            best = (i, step, est);
        }
        Some(best)
    }

    /// Applies the scheduling policy within one bank window.
    fn select_in_window(&self, q: &VecDeque<ActiveRequest>, window: usize) -> Option<usize> {
        let topo = &self.cfg.topology;
        let in_window = || q.iter().enumerate().take(window);
        let first_eligible = in_window().next()?.0;
        match self.policy {
            SchedulePolicy::Fcfs => Some(first_eligible),
            SchedulePolicy::FrFcfs => Some(
                in_window()
                    .find(|(_, a)| self.is_row_hit(&a.req))
                    .map(|(i, _)| i)
                    .unwrap_or(first_eligible),
            ),
            SchedulePolicy::LocalityAware => {
                // Priority 1: hit in the *selected* local row buffer (or a
                // plain open-row hit for non-SALP requests).
                if let Some((i, _)) = in_window().find(|(_, a)| {
                    let r = &a.req;
                    if r.salp {
                        let sa = r.addr.subarray(topo);
                        self.timing.selected_subarray(&r.addr) == Some(sa)
                            && self.timing.local_row(&r.addr, sa) == Some(r.addr.row)
                    } else {
                        self.timing.open_row(&r.addr) == Some(r.addr.row)
                    }
                }) {
                    return Some(i);
                }
                // Priority 2: hit in any activated local row buffer.
                if let Some((i, _)) = in_window().find(|(_, a)| {
                    a.req.salp
                        && self
                            .timing
                            .local_row(&a.req.addr, a.req.addr.subarray(topo))
                            == Some(a.req.addr.row)
                }) {
                    return Some(i);
                }
                // Priority 3: request in a different subarray than the
                // currently selected one (activation overlaps).
                if let Some(sel) = q
                    .front()
                    .and_then(|a| self.timing.selected_subarray(&a.req.addr))
                {
                    if let Some((i, _)) =
                        in_window().find(|(_, a)| a.req.salp && a.req.addr.subarray(topo) != sel)
                    {
                        return Some(i);
                    }
                }
                Some(first_eligible)
            }
        }
    }

    fn is_row_hit(&self, r: &ReadRequest) -> bool {
        let topo = &self.cfg.topology;
        if r.salp {
            self.timing.local_row(&r.addr, r.addr.subarray(topo)) == Some(r.addr.row)
        } else {
            self.timing.open_row(&r.addr) == Some(r.addr.row)
        }
    }

    /// The next command a request needs, with its earliest issue estimate.
    fn next_step(&self, a: &ActiveRequest) -> (Step, Cycle) {
        let topo = &self.cfg.topology;
        let r = &a.req;
        let (step, kind) = if r.salp {
            let sa = r.addr.subarray(topo);
            if self.timing.local_row(&r.addr, sa) != Some(r.addr.row) {
                (Step::ActSa, CommandKind::ActSa)
            } else if self.timing.selected_subarray(&r.addr) != Some(sa) {
                (Step::SelSa, CommandKind::SelSa)
            } else {
                (Step::Rd, CommandKind::Rd)
            }
        } else {
            match self.timing.open_row(&r.addr) {
                Some(row) if row == r.addr.row => {
                    if r.write {
                        (Step::Wr, CommandKind::Wr)
                    } else {
                        (Step::Rd, CommandKind::Rd)
                    }
                }
                Some(_) => (Step::Pre, CommandKind::Pre),
                None => (Step::Act, CommandKind::Act),
            }
        };
        let mut addr = r.addr;
        if matches!(step, Step::Rd | Step::Wr) {
            addr.col_byte += a.bursts_done * topo.burst_bytes;
        }
        let cmd = Command {
            kind,
            addr,
            data_scope: data_scope_of(r.dest),
        };
        let est = self
            .timing
            .earliest(&cmd)
            .unwrap_or(Cycle::MAX / 2)
            .max(r.ready_at);
        (step, est)
    }

    /// Issues the chosen step; pops the request if it completed.
    fn perform(&mut self, bank: usize, idx: usize, step: Step) {
        let topo = self.cfg.topology;
        let timing = self.cfg.timing;
        let a = self.queues[bank][idx];
        let r = a.req;
        match step {
            Step::Pre => {
                self.issue(CommandKind::Pre, r.addr, r.ready_at, data_scope_of(r.dest));
            }
            Step::Act => {
                self.issue(CommandKind::Act, r.addr, r.ready_at, data_scope_of(r.dest));
                if !a.classified {
                    self.stats.row_misses += 1;
                    self.queues[bank][idx].classified = true;
                }
            }
            Step::ActSa => {
                self.issue(
                    CommandKind::ActSa,
                    r.addr,
                    r.ready_at,
                    data_scope_of(r.dest),
                );
                if !a.classified {
                    self.stats.row_misses += 1;
                    self.queues[bank][idx].classified = true;
                }
            }
            Step::SelSa => {
                self.issue(
                    CommandKind::SelSa,
                    r.addr,
                    r.ready_at,
                    data_scope_of(r.dest),
                );
            }
            Step::Wr => {
                let mut addr = r.addr;
                addr.col_byte += a.bursts_done * topo.burst_bytes;
                let wr_at = self.issue(CommandKind::Wr, addr, r.ready_at, data_scope_of(r.dest));
                let data_end = self.reserve_data_path(&addr, r.dest, wr_at + timing.t_cwl);
                let bits = u64::from(topo.burst_bytes) * 8;
                self.stats.energy.rd_wr_bits += bits;
                if matches!(r.dest, BusScope::Channel) {
                    self.stats.energy.io_bits += bits;
                }
                self.stats.finish = self.stats.finish.max(data_end);
                let entry = &mut self.queues[bank][idx];
                if !entry.classified {
                    self.stats.row_hits += 1;
                    entry.classified = true;
                    entry.was_hit = true;
                }
                entry.bursts_done += 1;
                entry.last_data = entry.last_data.max(data_end);
                if entry.bursts_done == r.bursts {
                    let done_at = entry.last_data;
                    self.completions.push(Completion {
                        id: r.id,
                        done_at,
                        row_hit: entry.was_hit,
                    });
                    self.queues[bank].remove(idx);
                    if r.auto_precharge && self.timing.open_row(&r.addr).is_some() {
                        self.issue(CommandKind::Pre, r.addr, r.ready_at, data_scope_of(r.dest));
                    }
                    self.outstanding -= 1;
                    if let Some(next) = self.pending.pop_front() {
                        self.admit(next, done_at);
                    }
                }
            }
            Step::Rd => {
                let mut addr = r.addr;
                addr.col_byte += a.bursts_done * topo.burst_bytes;
                let rd_at = self.issue(CommandKind::Rd, addr, r.ready_at, data_scope_of(r.dest));
                let data_end = self.reserve_data_path(&addr, r.dest, rd_at + timing.t_cl);
                let bits = u64::from(topo.burst_bytes) * 8;
                self.stats.energy.rd_wr_bits += bits;
                if matches!(r.dest, BusScope::Channel) {
                    self.stats.energy.io_bits += bits;
                }
                self.stats.finish = self.stats.finish.max(data_end);
                let entry = &mut self.queues[bank][idx];
                if !entry.classified {
                    // First step is a read → the request was a row hit.
                    self.stats.row_hits += 1;
                    entry.classified = true;
                    entry.was_hit = true;
                }
                entry.bursts_done += 1;
                entry.last_data = entry.last_data.max(data_end);
                if entry.bursts_done == r.bursts {
                    let done_at = entry.last_data;
                    self.completions.push(Completion {
                        id: r.id,
                        done_at,
                        row_hit: entry.was_hit,
                    });
                    self.queues[bank].remove(idx);
                    if r.auto_precharge && self.timing.open_row(&r.addr).is_some() {
                        self.issue(CommandKind::Pre, r.addr, r.ready_at, data_scope_of(r.dest));
                    }
                    self.outstanding -= 1;
                    // A freed global-queue slot admits the next pending
                    // request, no earlier than this completion.
                    if let Some(next) = self.pending.pop_front() {
                        self.admit(next, done_at);
                    }
                }
            }
        }
    }

    /// Reserves the buses a burst crosses on its way to `dest`, starting at
    /// the earliest common free slot ≥ `not_before`; returns the end cycle.
    fn reserve_data_path(&mut self, addr: &PhysAddr, dest: BusScope, not_before: Cycle) -> Cycle {
        let topo = &self.cfg.topology;
        let dur = self.cfg.timing.t_bl;
        let g = addr.flat_bank_group(topo) as usize;
        let r = addr.rank as usize;
        let (use_g, use_r, use_c) = match dest {
            BusScope::Bank => (false, false, false),
            BusScope::BankGroup => (true, false, false),
            BusScope::Rank => (true, true, false),
            BusScope::Channel => (true, true, true),
        };
        let mut start = not_before;
        if use_g {
            start = self.group_bus.earliest(g, start);
        }
        if use_r {
            start = self.rank_bus.earliest(r, start);
        }
        if use_c {
            start = self.channel_bus.earliest(0, start);
        }
        if use_g {
            start = start.max(self.group_bus.earliest(g, start));
        }
        if use_r {
            start = start.max(self.rank_bus.earliest(r, start));
        }
        if use_g {
            self.group_bus.reserve(g, start, dur);
        }
        if use_r {
            self.rank_bus.reserve(r, start, dur);
        }
        if use_c {
            self.channel_bus.reserve(0, start, dur);
            self.stats.data_bus_busy += dur;
        }
        start + dur
    }

    /// Issues one command as early as legal (≥ `not_before`), updating state.
    fn issue(
        &mut self,
        kind: CommandKind,
        addr: PhysAddr,
        not_before: Cycle,
        data_scope: DataScope,
    ) -> Cycle {
        let cmd = Command {
            kind,
            addr,
            data_scope,
        };
        let at = self
            .timing
            .earliest(&cmd)
            .unwrap_or_else(|e| panic!("illegal {kind} at {addr}: {e}"))
            .max(not_before);
        self.timing.commit(&cmd, at);
        if kind.is_activate() {
            self.stats.energy.activations += 1;
        }
        let idx = match kind {
            CommandKind::Act => 0,
            CommandKind::Rd | CommandKind::Wr => 1,
            CommandKind::Pre => 2,
            CommandKind::ActSa => 3,
            CommandKind::SelSa => 4,
            CommandKind::Ref => 5,
        };
        self.stats.issued[idx] += 1;
        let latest = &mut self.rank_latest[addr.rank as usize];
        *latest = (*latest).max(at);
        if let Some(trace) = &mut self.trace {
            trace.push(IssuedCommand {
                command: cmd,
                cycle: at,
            });
        }
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr5_4800()
    }

    #[allow(clippy::too_many_arguments)]
    fn req(
        id: u64,
        rank: u32,
        bg: u32,
        bank: u32,
        row: u32,
        col: u32,
        bursts: u32,
        dest: BusScope,
    ) -> ReadRequest {
        ReadRequest {
            id,
            addr: PhysAddr {
                channel: 0,
                rank,
                bank_group: bg,
                bank,
                row,
                col_byte: col,
            },
            bursts,
            ready_at: 0,
            dest,
            salp: false,
            auto_precharge: false,
            write: false,
        }
    }

    #[test]
    fn single_read_latency() {
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 1, BusScope::Channel));
        let done = ctl.run();
        assert_eq!(done.len(), 1);
        assert!(!done[0].row_hit);
        assert_eq!(done[0].done_at, t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 0, 0, 0, 10, 64, 1, BusScope::Channel));
        let done = ctl.run();
        assert_eq!(ctl.stats().row_hits, 1);
        assert_eq!(ctl.stats().row_misses, 1);
        assert!(done.iter().any(|c| c.row_hit));
    }

    #[test]
    fn frfcfs_prefers_open_row() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 0, 0, 0, 20, 0, 1, BusScope::Channel)); // older miss
        ctl.enqueue(req(3, 0, 0, 0, 10, 64, 1, BusScope::Channel)); // younger hit
        let done = ctl.run();
        let pos = |id: u64| done.iter().position(|c| c.id == id).expect("done");
        assert!(pos(3) < pos(2), "row hit should bypass the older miss");
    }

    #[test]
    fn fcfs_preserves_order() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::Fcfs);
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 0, 0, 0, 20, 0, 1, BusScope::Channel));
        ctl.enqueue(req(3, 0, 0, 0, 10, 64, 1, BusScope::Channel));
        let done = ctl.run();
        let pos = |id: u64| done.iter().position(|c| c.id == id).unwrap();
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn bank_window_limits_reordering() {
        // The row hit sits beyond a window of 1 → no bypassing.
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs).with_bank_window(1);
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 0, 0, 0, 20, 0, 1, BusScope::Channel));
        ctl.enqueue(req(3, 0, 0, 0, 10, 64, 1, BusScope::Channel));
        let done = ctl.run();
        let pos = |id: u64| done.iter().position(|c| c.id == id).unwrap();
        assert!(pos(2) < pos(3), "window 1 degrades to FCFS");
    }

    #[test]
    fn global_window_throttles_parallelism() {
        let c = cfg();
        // 8 single-burst reads to 8 different banks; with a global window
        // of 1 they serialize, without it they overlap.
        let build = |win: Option<usize>| {
            let mut ctl = Controller::new(c.clone(), SchedulePolicy::FrFcfs);
            if let Some(w) = win {
                ctl = ctl.with_global_window(w);
            }
            for i in 0..8u64 {
                ctl.enqueue(req(i, 0, i as u32 % 8, 0, 1, 0, 1, BusScope::Rank));
            }
            ctl.run().last().unwrap().done_at
        };
        let unbounded = build(None);
        let serialized = build(Some(1));
        assert!(serialized > unbounded, "{serialized} vs {unbounded}");
    }

    #[test]
    fn bursts_interleave_across_banks() {
        // Two 4-burst rank-bound reads to different bank groups of a rank:
        // with per-command scheduling, total time is much less than 2×
        // sequential (bursts interleave at tCCD_S on the rank bus).
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 4, BusScope::Rank));
        ctl.enqueue(req(2, 0, 1, 0, 1, 0, 4, BusScope::Rank));
        let done = ctl.run();
        let last = done.last().unwrap().done_at;
        // Sequential would be ≈ tRRD + tRCD + (4 bursts × tCCD_L) × 2.
        let sequential = t.t_rrd_s + t.t_rcd + 8 * t.t_ccd_l + t.t_cl;
        assert!(
            last < sequential,
            "{last} should interleave below {sequential}"
        );
    }

    #[test]
    fn channel_bus_serializes_cross_rank_host_reads() {
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 1, 0, 0, 1, 0, 1, BusScope::Channel));
        let done = ctl.run();
        let base = t.t_rcd + t.t_cl + t.t_bl;
        assert_eq!(done[0].done_at, base);
        assert_eq!(done[1].done_at, base + t.t_bl, "bursts back-to-back");
    }

    #[test]
    fn rank_level_nmp_overlaps_ranks() {
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 1, BusScope::Rank));
        ctl.enqueue(req(2, 1, 0, 0, 1, 0, 1, BusScope::Rank));
        let done = ctl.run();
        assert!(done.iter().all(|c| c.done_at == t.t_rcd + t.t_cl + t.t_bl));
    }

    #[test]
    fn mixed_levels_share_act_windows_but_not_buses() {
        // A bank-level read and a host-bound read in different bank groups
        // of one rank: the host read must not queue behind the bank read on
        // any bus; ACT windows (tRRD_S) still interleave them.
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 4, BusScope::Bank));
        ctl.enqueue(req(2, 0, 1, 0, 1, 0, 4, BusScope::Channel));
        let done = ctl.run();
        let host = done.iter().find(|c| c.id == 2).unwrap();
        let expect = t.t_rrd_s + t.t_rcd + t.t_cl + 3 * t.t_ccd_l + t.t_bl;
        assert!(
            host.done_at <= expect + t.t_rrd_s,
            "got {} want ≤ {}",
            host.done_at,
            expect + t.t_rrd_s
        );
    }

    #[test]
    fn salp_overlaps_same_bank_rows() {
        let c = cfg();
        let mk = |salp: bool, policy| {
            let mut ctl = Controller::new(c.clone(), policy);
            for (i, row) in [0u32, 256].iter().enumerate() {
                ctl.enqueue(ReadRequest {
                    id: i as u64,
                    addr: PhysAddr {
                        channel: 0,
                        rank: 0,
                        bank_group: 0,
                        bank: 0,
                        row: *row,
                        col_byte: 0,
                    },
                    bursts: 4,
                    ready_at: 0,
                    dest: BusScope::Bank,
                    salp,
                    auto_precharge: false,
                    write: false,
                });
            }
            ctl.run().last().unwrap().done_at
        };
        let serial = mk(false, SchedulePolicy::FrFcfs);
        let salp = mk(true, SchedulePolicy::LocalityAware);
        assert!(salp < serial, "SALP {salp} should beat serial {serial}");
    }

    #[test]
    fn salp_activation_overlaps_reads() {
        // With per-command scheduling, the second request's ACT_SA issues
        // while the first request's bursts stream — the Figure 6(c) overlap.
        let c = cfg();
        let mut ctl = Controller::new(c, SchedulePolicy::LocalityAware);
        ctl.record_trace();
        for (i, row) in [0u32, 256].iter().enumerate() {
            ctl.enqueue(ReadRequest {
                id: i as u64,
                addr: PhysAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                    row: *row,
                    col_byte: 0,
                },
                bursts: 8,
                ready_at: 0,
                dest: BusScope::Bank,
                salp: true,
                auto_precharge: false,
                write: false,
            });
        }
        ctl.run();
        let trace = ctl.trace().unwrap();
        let acts: Vec<Cycle> = trace
            .iter()
            .filter(|ic| ic.command.kind == CommandKind::ActSa)
            .map(|ic| ic.cycle)
            .collect();
        let first_rd = trace
            .iter()
            .find(|ic| ic.command.kind == CommandKind::Rd)
            .unwrap()
            .cycle;
        assert_eq!(acts.len(), 2);
        assert!(
            acts[1] < first_rd + 8,
            "second ACT_SA ({}) should overlap the first request's reads ({first_rd})",
            acts[1]
        );
    }

    #[test]
    fn trace_recording_sorted() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        ctl.enqueue(req(1, 0, 0, 0, 10, 0, 2, BusScope::Channel));
        ctl.enqueue(req(2, 1, 0, 0, 10, 0, 1, BusScope::Channel));
        ctl.run();
        let trace = ctl.trace().unwrap();
        assert_eq!(trace.len(), 5); // 2×ACT + 3×RD
        assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    #[should_panic(expected = "crosses a row boundary")]
    fn row_crossing_request_rejected() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 0, 8_192 - 64, 2, BusScope::Channel));
    }

    #[test]
    fn ready_at_defers_service() {
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        let mut r = req(1, 0, 0, 0, 0, 0, 1, BusScope::Channel);
        r.ready_at = 1000;
        ctl.enqueue(r);
        let done = ctl.run();
        assert_eq!(done[0].done_at, 1000 + t.t_rcd + t.t_cl + t.t_bl);
    }

    #[test]
    fn io_bits_counted_only_for_host_reads() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 0, 0, 2, BusScope::Channel));
        ctl.enqueue(req(2, 0, 1, 0, 0, 0, 2, BusScope::Bank));
        ctl.run();
        let e = &ctl.stats().energy;
        assert_eq!(e.rd_wr_bits, 4 * 64 * 8);
        assert_eq!(e.io_bits, 2 * 64 * 8);
    }

    #[test]
    fn bus_utilization_matches_hand_computed_two_read_schedule() {
        // Two single-burst host-bound reads on different ranks: the row
        // activations overlap, the two data bursts serialize on the one
        // channel bus. Hand schedule: first burst lands at
        // tRCD + tCL + tBL, the second streams right behind it, so the
        // run finishes at tRCD + tCL + 2·tBL with the data bus busy for
        // exactly 2·tBL of those cycles.
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 1, 0, 0, 1, 0, 1, BusScope::Channel));
        ctl.run();
        let stats = ctl.stats();
        assert_eq!(stats.finish, t.t_rcd + t.t_cl + 2 * t.t_bl);
        assert_eq!(stats.data_bus_busy, 2 * t.t_bl);
        let expect = (2 * t.t_bl) as f64 / (t.t_rcd + t.t_cl + 2 * t.t_bl) as f64;
        assert!((stats.bus_utilization() - expect).abs() < 1e-12);
    }

    #[test]
    fn bank_bound_reads_leave_the_channel_bus_idle() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 1, 0, 4, BusScope::Bank));
        ctl.run();
        assert_eq!(ctl.stats().data_bus_busy, 0);
        assert_eq!(ctl.stats().bus_utilization(), 0.0);
    }

    #[test]
    fn reserve_channel_for_results() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        let t1 = ctl.reserve_channel(0, 4);
        let t2 = ctl.reserve_channel(0, 4);
        assert_eq!(t1, 32);
        assert_eq!(t2, 64, "serialized behind the first transfer");
    }

    #[test]
    fn writes_complete_and_block_reads() {
        let c = cfg();
        let t = c.timing;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        let a = PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 3,
            col_byte: 0,
        };
        ctl.enqueue(ReadRequest::write_from_host(1, a, 2));
        let mut read = ReadRequest::to_host(2, a, 1);
        read.addr.col_byte = 512;
        ctl.enqueue(read);
        let done = ctl.run();
        assert_eq!(done.len(), 2);
        let wr = done.iter().find(|c| c.id == 1).unwrap();
        let rd = done.iter().find(|c| c.id == 2).unwrap();
        // The read waited out the write-to-read turnaround.
        assert!(
            rd.done_at > wr.done_at - t.t_bl,
            "{} vs {}",
            rd.done_at,
            wr.done_at
        );
        assert_eq!(ctl.stats().issued[1], 3, "2 WR bursts + 1 RD");
    }

    #[test]
    #[should_panic(expected = "not SALP")]
    fn salp_write_rejected() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        let a = PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 0,
            col_byte: 0,
        };
        let mut r = ReadRequest::write_from_host(1, a, 1);
        r.salp = true;
        ctl.enqueue(r);
    }

    #[test]
    fn refresh_cadence_enforced() {
        let c = cfg();
        let _t_refi = c.timing.t_refi;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        ctl.record_trace();
        // Spread many single-burst reads over a window longer than tREFI.
        for i in 0..400u64 {
            let mut r = req(
                i,
                0,
                (i % 8) as u32,
                0,
                (i % 512) as u32,
                0,
                1,
                BusScope::Channel,
            );
            r.ready_at = i * 100; // ~40k cycles of activity
            ctl.enqueue(r);
        }
        ctl.run();
        let refs = ctl.stats().issued[5];
        // ~40k cycles / 9360 ≈ 4 refreshes per rank due; only rank 0 is
        // used but both ranks refresh on cadence.
        assert!(refs >= 4, "expected refreshes, got {refs}");
        // The emitted schedule stays valid under replay.
        let trace = ctl.trace().unwrap();
        let cfg2 = cfg();
        let v = crate::check::check_trace(cfg2.topology, cfg2.timing, &trace);
        assert!(v.is_empty(), "{:?}", &v[..v.len().min(3)]);
    }

    #[test]
    fn refresh_disabled_when_trefi_zero() {
        let mut c = cfg();
        c.timing.t_refi = 0;
        let mut ctl = Controller::new(c, SchedulePolicy::FrFcfs);
        let mut r = req(1, 0, 0, 0, 0, 0, 1, BusScope::Channel);
        r.ready_at = 100_000;
        ctl.enqueue(r);
        ctl.run();
        assert_eq!(ctl.stats().issued[5], 0);
    }

    #[test]
    fn bank_loads_counted() {
        let mut ctl = Controller::new(cfg(), SchedulePolicy::FrFcfs);
        ctl.enqueue(req(1, 0, 0, 0, 0, 0, 1, BusScope::Channel));
        ctl.enqueue(req(2, 0, 0, 0, 1, 0, 1, BusScope::Channel));
        ctl.enqueue(req(3, 0, 1, 0, 0, 0, 1, BusScope::Channel));
        ctl.run();
        let loads = &ctl.stats().bank_loads;
        assert_eq!(loads.iter().sum::<u64>(), 3);
        assert_eq!(loads[0], 2);
    }
}
