//! DRAM system configuration: topology, timing, and energy parameters.
//!
//! Defaults reproduce the paper's Table 2 (DDR5-4800, ×8 devices, 1 DIMM per
//! channel, 2 ranks per DIMM, 8 bank-groups per rank, 4 banks per bank-group,
//! 256 subarrays per bank) and its timing/energy constants.

/// Clock-cycle count (memory-controller cycles at the DRAM core frequency).
pub type Cycle = u64;

/// Topology of one memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Independent channels (each with its own controller).
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Subarrays per bank (paper: 256).
    pub subarrays_per_bank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Bytes per row (per rank; all chips of a rank operate in lock-step).
    pub row_bytes: u32,
    /// Bytes transferred per read burst (DDR5 BL16 on a 32-bit sub-channel
    /// pair = 64 B, the paper's §2.2).
    pub burst_bytes: u32,
}

impl Topology {
    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks per channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.banks_per_rank()
    }

    /// Rows per subarray.
    pub fn rows_per_subarray(&self) -> u32 {
        self.rows_per_bank / self.subarrays_per_bank
    }

    /// Bank capacity in bytes.
    pub fn bank_bytes(&self) -> u64 {
        u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Rank capacity in bytes.
    pub fn rank_bytes(&self) -> u64 {
        self.bank_bytes() * u64::from(self.banks_per_rank())
    }

    /// Channel capacity in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.rank_bytes() * u64::from(self.ranks)
    }

    /// Read bursts needed for `bytes` contiguous bytes.
    pub fn bursts_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(u64::from(self.burst_bytes))
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or `rows_per_bank` is not divisible by
    /// `subarrays_per_bank`.
    pub fn validate(&self) {
        assert!(self.channels > 0 && self.ranks > 0, "empty topology");
        assert!(self.bank_groups > 0 && self.banks_per_group > 0);
        assert!(self.subarrays_per_bank > 0 && self.rows_per_bank > 0);
        assert!(self.row_bytes > 0 && self.burst_bytes > 0);
        assert_eq!(
            self.rows_per_bank % self.subarrays_per_bank,
            0,
            "rows per bank must be a multiple of subarrays per bank"
        );
        assert!(
            self.row_bytes.is_multiple_of(self.burst_bytes),
            "row must hold whole bursts"
        );
    }
}

/// DRAM timing constraints in controller cycles (paper Table 2 values for
/// DDR5-4800; `t_ra` is the subarray-select constraint ReCross introduces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// ACT → RD, same bank (RAS-to-CAS delay).
    pub t_rcd: Cycle,
    /// RD → first data (CAS latency).
    pub t_cl: Cycle,
    /// PRE → ACT, same bank (row precharge).
    pub t_rp: Cycle,
    /// ACT → PRE, same bank (row active time).
    pub t_ras: Cycle,
    /// ACT → ACT, same bank (row cycle = tRAS + tRP).
    pub t_rc: Cycle,
    /// Burst length on the data bus, in cycles.
    pub t_bl: Cycle,
    /// RD → RD, different bank group, same rank.
    pub t_ccd_s: Cycle,
    /// RD → RD, same bank group.
    pub t_ccd_l: Cycle,
    /// Four-activate window per rank.
    pub t_faw: Cycle,
    /// ACT → ACT, different bank group, same rank.
    pub t_rrd_s: Cycle,
    /// ACT → ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// RD → PRE, same bank (read-to-precharge).
    pub t_rtp: Cycle,
    /// RD → subarray-select switch (ReCross SALP constraint, §4.1/Fig. 6).
    pub t_ra: Cycle,
    /// WR → first data (CAS write latency).
    pub t_cwl: Cycle,
    /// Write recovery: last write data → PRE, same bank.
    pub t_wr: Cycle,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Cycle,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: Cycle,
    /// Average refresh interval per rank (REF cadence). 0 disables refresh.
    pub t_refi: Cycle,
    /// Refresh cycle time: the rank is unavailable for this long per REF.
    pub t_rfc: Cycle,
}

impl TimingParams {
    /// Table 2 values (DDR5-4800).
    pub fn ddr5_4800() -> Self {
        Self {
            t_rcd: 40,
            t_cl: 40,
            t_rp: 40,
            t_ras: 76,
            t_rc: 116,
            t_bl: 8,
            t_ccd_s: 8,
            t_ccd_l: 12,
            t_faw: 32,
            t_rrd_s: 8,
            t_rrd_l: 12,
            t_rtp: 12,
            t_ra: 8,
            t_cwl: 38,
            t_wr: 72,
            t_wtr_l: 24,
            t_wtr_s: 8,
            // DDR5: tREFI = 3.9 us, tRFC ≈ 295 ns at 2400 MHz.
            t_refi: 9_360,
            t_rfc: 708,
        }
    }

    /// Validates basic relations between the constraints.
    ///
    /// # Panics
    ///
    /// Panics if `t_rc < t_ras + t_rp` or any constraint is zero where a
    /// positive value is required.
    pub fn validate(&self) {
        assert!(self.t_rc >= self.t_ras + self.t_rp, "tRC >= tRAS + tRP");
        assert!(self.t_bl > 0 && self.t_ccd_s >= self.t_bl);
        assert!(self.t_ccd_l >= self.t_ccd_s, "tCCD_L >= tCCD_S");
        assert!(self.t_rrd_l >= self.t_rrd_s, "tRRD_L >= tRRD_S");
        assert!(
            self.t_refi == 0 || self.t_refi > self.t_rfc,
            "tREFI must exceed tRFC (or be 0 to disable refresh)"
        );
    }
}

/// Energy constants (paper Table 2 "Energy and Latency Parameters").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per row activation, in picojoules (paper: 2 nJ).
    pub act_pj: f64,
    /// DRAM read/write energy per bit (paper: 4.2 pJ/bit).
    pub rd_wr_pj_per_bit: f64,
    /// Off-chip I/O energy per bit (paper: 4 pJ/bit).
    pub io_pj_per_bit: f64,
    /// FP32 adder energy per op (paper: 0.9 pJ/op).
    pub fp32_add_pj: f64,
    /// FP32 multiplier energy per op (paper: 2.4 pJ/op).
    pub fp32_mul_pj: f64,
    /// Energy per all-bank refresh (folded into the activation bucket of
    /// the Figure 15 breakdown).
    pub ref_pj: f64,
    /// Background (static) power per rank in milliwatts; contributes the
    /// execution-time-dependent term of Figure 15.
    pub static_mw_per_rank: f64,
}

impl EnergyParams {
    /// Table 2 values.
    pub fn paper_defaults() -> Self {
        Self {
            act_pj: 2_000.0,
            rd_wr_pj_per_bit: 4.2,
            io_pj_per_bit: 4.0,
            fp32_add_pj: 0.9,
            fp32_mul_pj: 2.4,
            ref_pj: 14_000.0,
            static_mw_per_rank: 75.0,
        }
    }
}

/// Complete DRAM system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub topology: Topology,
    /// Timing constraints.
    pub timing: TimingParams,
    /// Energy constants.
    pub energy: EnergyParams,
    /// Core clock frequency in MHz (DDR5-4800 I/O clock: 2400 MHz).
    pub clock_mhz: f64,
    /// Command/address pins usable for NMP-instruction transfer per cycle
    /// (DDR5: 14). See §4.2.
    pub ca_bits_per_cycle: u32,
    /// Total pins in two-stage NMP-instruction transfer mode (14 C/A +
    /// 80 DQ = 94). See §4.2.
    pub two_stage_bits_per_cycle: u32,
}

impl DramConfig {
    /// The paper's Table 2 system: DDR5-4800, 1 DIMM/channel, 2 ranks,
    /// 8 bank-groups × 4 banks, 256 subarrays per bank.
    pub fn ddr5_4800() -> Self {
        let topology = Topology {
            channels: 1,
            ranks: 2,
            bank_groups: 8,
            banks_per_group: 4,
            subarrays_per_bank: 256,
            rows_per_bank: 65_536,
            row_bytes: 8_192,
            burst_bytes: 64,
        };
        Self {
            topology,
            timing: TimingParams::ddr5_4800(),
            energy: EnergyParams::paper_defaults(),
            clock_mhz: 2_400.0,
            ca_bits_per_cycle: 14,
            two_stage_bits_per_cycle: 94,
        }
    }

    /// A DDR4-3200 system for sensitivity studies: half the bank groups of
    /// DDR5 (§2.2: "DDR5 doubles the number of bank-groups per rank"),
    /// smaller per-chip capacity, and DDR4 timing at a 1600 MHz command
    /// clock.
    pub fn ddr4_3200() -> Self {
        let topology = Topology {
            channels: 1,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            subarrays_per_bank: 128,
            rows_per_bank: 65_536,
            row_bytes: 8_192,
            burst_bytes: 64,
        };
        let timing = TimingParams {
            t_rcd: 22,
            t_cl: 22,
            t_rp: 22,
            t_ras: 52,
            t_rc: 74,
            t_bl: 4, // BL8 at DDR
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_faw: 34,
            t_rrd_s: 6,
            t_rrd_l: 8,
            t_rtp: 12,
            t_ra: 6,
            t_cwl: 18,
            t_wr: 24,
            t_wtr_l: 12,
            t_wtr_s: 4,
            // DDR4: tREFI = 7.8 us, tRFC ≈ 350 ns at 1600 MHz.
            t_refi: 12_480,
            t_rfc: 560,
        };
        Self {
            topology,
            timing,
            energy: EnergyParams::paper_defaults(),
            clock_mhz: 1_600.0,
            ca_bits_per_cycle: 24, // DDR4 C/A width
            two_stage_bits_per_cycle: 88,
        }
    }

    /// Same system with a different rank count (the Fig. 4/5/11 sweeps).
    pub fn with_ranks(mut self, ranks: u32) -> Self {
        assert!(ranks > 0, "need at least one rank");
        self.topology.ranks = ranks;
        self
    }

    /// Converts cycles to nanoseconds at the configured clock.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * 1_000.0 / self.clock_mhz
    }

    /// Converts a nanosecond duration to controller cycles (rounded up, so
    /// a positive duration never collapses to zero cycles).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or non-finite.
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be >= 0, finite");
        (ns * self.clock_mhz / 1_000.0).ceil() as Cycle
    }

    /// Controller clock rate in cycles per second (wall-time conversions
    /// for the serving simulator).
    pub fn cycles_per_sec(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Peak per-channel data-bus bandwidth in bytes per cycle.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        self.topology.burst_bytes as f64 / self.timing.t_bl as f64
    }

    /// Validates the whole configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent topology or timing (see [`Topology::validate`]
    /// and [`TimingParams::validate`]).
    pub fn validate(&self) {
        self.topology.validate();
        self.timing.validate();
        assert!(self.clock_mhz > 0.0);
        assert!(self.ca_bits_per_cycle > 0);
        assert!(self.two_stage_bits_per_cycle >= self.ca_bits_per_cycle);
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr5_4800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        DramConfig::default().validate();
    }

    #[test]
    fn ddr4_preset_is_valid_and_smaller() {
        let d4 = DramConfig::ddr4_3200();
        d4.validate();
        let d5 = DramConfig::ddr5_4800();
        assert_eq!(d4.topology.bank_groups * 2, d5.topology.bank_groups);
        assert!(d4.channel_bytes_per_cycle() > 0.0);
    }

    #[test]
    fn table2_timing_relations() {
        let t = TimingParams::ddr5_4800();
        t.validate();
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
        assert_eq!(t.t_rc, 116);
    }

    #[test]
    fn topology_capacity_math() {
        let topo = DramConfig::ddr5_4800().topology;
        assert_eq!(topo.banks_per_rank(), 32);
        assert_eq!(topo.rows_per_subarray(), 256);
        // 32 banks × 64 Ki rows × 8 KiB = 16 GiB per rank.
        assert_eq!(topo.rank_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn bursts_round_up() {
        let topo = DramConfig::ddr5_4800().topology;
        assert_eq!(topo.bursts_for(64), 1);
        assert_eq!(topo.bursts_for(65), 2);
        assert_eq!(topo.bursts_for(256), 4);
    }

    #[test]
    fn cycles_to_ns_at_2400mhz() {
        let c = DramConfig::ddr5_4800();
        assert!((c.cycles_to_ns(2400) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ns_to_cycles_roundtrips_and_rounds_up() {
        let c = DramConfig::ddr5_4800();
        assert_eq!(c.ns_to_cycles(1000.0), 2400);
        assert_eq!(c.ns_to_cycles(c.cycles_to_ns(12_345)), 12_345);
        // A sub-cycle duration still costs one cycle.
        assert_eq!(c.ns_to_cycles(0.1), 1);
        assert_eq!(c.ns_to_cycles(0.0), 0);
        assert!((c.cycles_per_sec() - 2.4e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_ns_rejected() {
        DramConfig::ddr5_4800().ns_to_cycles(-1.0);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_rejected() {
        let _ = DramConfig::ddr5_4800().with_ranks(0);
    }

    #[test]
    #[should_panic(expected = "multiple of subarrays")]
    fn bad_subarray_split_rejected() {
        let mut c = DramConfig::ddr5_4800();
        c.topology.subarrays_per_bank = 255;
        c.validate();
    }
}
