//! The DRAM timing-constraint engine.
//!
//! [`TimingState`] answers, for any candidate command, *the earliest cycle
//! at which it may legally issue* given everything issued so far, and then
//! records the issue. Every controller and NMP engine in the reproduction
//! schedules through this one type, and the independent checker in
//! [`crate::check`] replays emitted traces against a fresh instance, so a
//! scheduling bug cannot hide.
//!
//! Scopes follow the DDR5 rules of the paper's Table 2:
//!
//! * same bank: tRC (ACT→ACT), tRCD (ACT→RD), tRAS (ACT→PRE), tRTP (RD→PRE),
//!   tRP (PRE→ACT);
//! * same bank-group: tRRD_L (ACT→ACT), tCCD_L (RD→RD);
//! * same rank: tRRD_S, tCCD_S, and the tFAW four-activate window;
//! * SALP (§4.1): `ActSa` to a *different subarray* of an open bank is legal
//!   after tRRD_L instead of tRC, local buffers persist, and `SelSa`
//!   switches the global connection no earlier than tRA after the last RD.

use std::collections::HashMap;

use crate::addr::PhysAddr;
use crate::command::{Command, CommandKind, DataScope};
use crate::config::{Cycle, TimingParams, Topology};

/// Per-bank dynamic state.
#[derive(Debug, Clone, Default)]
struct BankState {
    /// Open row in the *global* row buffer (non-SALP path), if any.
    open_row: Option<u32>,
    /// Earliest next ACT / RD / PRE (same-bank constraints).
    next_act: Cycle,
    next_rd: Cycle,
    next_pre: Cycle,
    /// SALP: row held in each subarray's local row buffer.
    local_rows: HashMap<u32, u32>,
    /// SALP: per-subarray earliest next activation (local tRC).
    next_act_sa: HashMap<u32, Cycle>,
    /// SALP: cycle each subarray's local buffer becomes selectable (tRCD
    /// after its activation).
    local_ready: HashMap<u32, Cycle>,
    /// SALP: per-subarray cycle until which the local buffer's contents are
    /// protected by in-flight reads (a new ActSa may not overwrite earlier).
    sa_read_until: HashMap<u32, Cycle>,
    /// SALP: which subarray is connected to the global row buffer.
    selected_subarray: Option<u32>,
    /// SALP: earliest cycle a new `SelSa` may issue (tRA after last RD).
    next_sel: Cycle,
    /// Earliest next WR (column write cadence).
    next_wr: Cycle,
}

/// Per-bank-group dynamic state.
#[derive(Debug, Clone, Copy, Default)]
struct GroupState {
    next_act: Cycle,
    next_rd: Cycle,
    next_wr: Cycle,
}

/// Per-rank dynamic state.
#[derive(Debug, Clone, Default)]
struct RankState {
    next_act: Cycle,
    next_rd: Cycle,
    next_wr: Cycle,
    /// Timestamps of the most recent activations (tFAW window).
    recent_acts: Vec<Cycle>,
}

/// Reason a command can never issue (as opposed to "not yet").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// RD with no matching open row.
    RowNotOpen,
    /// ACT while another row is open (must PRE first) — non-SALP path.
    RowAlreadyOpen,
    /// PRE of an already-precharged bank is redundant (we reject it to catch
    /// controller bugs).
    NothingToPrecharge,
    /// `SelSa` of a subarray whose local buffer holds no activated row.
    SubarrayNotActivated,
    /// RD targets a subarray that is not the selected one (SALP path).
    SubarrayNotSelected,
    /// Address fields out of topology range.
    BadAddress,
}

impl core::fmt::Display for TimingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TimingError::RowNotOpen => "read issued with row not open",
            TimingError::RowAlreadyOpen => "activate issued with a row open",
            TimingError::NothingToPrecharge => "precharge of idle bank",
            TimingError::SubarrayNotActivated => "subarray-select of an inactive subarray",
            TimingError::SubarrayNotSelected => "read from an unselected subarray",
            TimingError::BadAddress => "address outside topology",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TimingError {}

/// The constraint engine. See the module docs.
#[derive(Debug, Clone)]
pub struct TimingState {
    topo: Topology,
    t: TimingParams,
    banks: Vec<BankState>,
    groups: Vec<GroupState>,
    ranks: Vec<RankState>,
}

impl TimingState {
    /// Creates a fresh (all-banks-precharged) state for one channel.
    pub fn new(topo: Topology, timing: TimingParams) -> Self {
        topo.validate();
        timing.validate();
        let banks = vec![BankState::default(); topo.banks_per_channel() as usize];
        let groups = vec![GroupState::default(); (topo.ranks * topo.bank_groups) as usize];
        let ranks = vec![RankState::default(); topo.ranks as usize];
        Self {
            topo,
            t: timing,
            banks,
            groups,
            ranks,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.t
    }

    /// Row currently open in a bank's global row buffer.
    pub fn open_row(&self, addr: &PhysAddr) -> Option<u32> {
        self.banks[addr.flat_bank(&self.topo) as usize].open_row
    }

    /// Row held in a subarray's local row buffer (SALP).
    pub fn local_row(&self, addr: &PhysAddr, subarray: u32) -> Option<u32> {
        self.banks[addr.flat_bank(&self.topo) as usize]
            .local_rows
            .get(&subarray)
            .copied()
    }

    /// Subarray currently connected to the global row buffer (SALP).
    pub fn selected_subarray(&self, addr: &PhysAddr) -> Option<u32> {
        self.banks[addr.flat_bank(&self.topo) as usize].selected_subarray
    }

    /// Earliest legal issue cycle for `cmd`, or a [`TimingError`] if the
    /// command is illegal in the current state.
    ///
    /// # Errors
    ///
    /// See [`TimingError`].
    pub fn earliest(&self, cmd: &Command) -> Result<Cycle, TimingError> {
        if !cmd.addr.is_valid(&self.topo) {
            return Err(TimingError::BadAddress);
        }
        let b = &self.banks[cmd.addr.flat_bank(&self.topo) as usize];
        let g = &self.groups[cmd.addr.flat_bank_group(&self.topo) as usize];
        let r = &self.ranks[cmd.addr.rank as usize];
        let sa = cmd.addr.subarray(&self.topo);
        match cmd.kind {
            CommandKind::Act => {
                if b.open_row.is_some() {
                    return Err(TimingError::RowAlreadyOpen);
                }
                Ok(self.act_ready(b.next_act, g, r))
            }
            CommandKind::ActSa => {
                // SALP activation into the local buffer: gated by the
                // subarray's own row cycle, the protection window of reads
                // still draining from its local buffer, and the rank/group
                // ACT windows — not by other subarrays of the bank.
                let local = b
                    .next_act_sa
                    .get(&sa)
                    .copied()
                    .unwrap_or(0)
                    .max(b.sa_read_until.get(&sa).copied().unwrap_or(0));
                Ok(self.act_ready(local, g, r))
            }
            CommandKind::Rd => {
                // Non-SALP read requires the matching global open row; SALP
                // read requires local row + selection + the subarray's tRCD.
                // tCCD gates apply only for the I/O scopes the data crosses
                // (a bank-PE read shares nothing beyond its own column path).
                let mut ready = b.next_rd;
                if !matches!(cmd.data_scope, DataScope::Bank) {
                    ready = ready.max(g.next_rd);
                }
                if matches!(cmd.data_scope, DataScope::Rank) {
                    ready = ready.max(r.next_rd);
                }
                if let Some(sel) = b.selected_subarray {
                    if sel != sa {
                        return Err(TimingError::SubarrayNotSelected);
                    }
                    match b.local_rows.get(&sa) {
                        Some(&row) if row == cmd.addr.row => {}
                        _ => return Err(TimingError::RowNotOpen),
                    }
                    ready = ready.max(b.local_ready.get(&sa).copied().unwrap_or(0));
                } else {
                    match b.open_row {
                        Some(row) if row == cmd.addr.row => {}
                        _ => return Err(TimingError::RowNotOpen),
                    }
                }
                Ok(ready)
            }
            CommandKind::Pre => {
                if b.open_row.is_none() && b.local_rows.is_empty() && b.selected_subarray.is_none()
                {
                    return Err(TimingError::NothingToPrecharge);
                }
                Ok(b.next_pre)
            }
            CommandKind::SelSa => {
                if !b.local_rows.contains_key(&sa) {
                    return Err(TimingError::SubarrayNotActivated);
                }
                let ready = b.local_ready.get(&sa).copied().unwrap_or(0);
                Ok(b.next_sel.max(ready))
            }
            CommandKind::Wr => {
                // Writes go through the global row buffer only (B-region
                // SALP banks are read-optimized; updates land cold, §4.5).
                match b.open_row {
                    Some(row) if row == cmd.addr.row => {}
                    _ => return Err(TimingError::RowNotOpen),
                }
                let mut ready = b.next_wr;
                if !matches!(cmd.data_scope, DataScope::Bank) {
                    ready = ready.max(g.next_wr);
                }
                if matches!(cmd.data_scope, DataScope::Rank) {
                    ready = ready.max(r.next_wr);
                }
                Ok(ready)
            }
            CommandKind::Ref => {
                // All-bank refresh: every bank of the rank must be able to
                // precharge (tRAS / tRTP settled) — the controller's
                // implicit precharge-all.
                let topo = self.topo;
                let base = cmd.addr.rank * topo.banks_per_rank();
                let mut ready = r.next_act;
                for i in 0..topo.banks_per_rank() {
                    let bank = &self.banks[(base + i) as usize];
                    let busy = bank.open_row.is_some() || !bank.local_rows.is_empty();
                    if busy {
                        ready = ready.max(bank.next_pre);
                    }
                    ready = ready.max(bank.next_act.saturating_sub(self.t.t_rc));
                }
                Ok(ready)
            }
        }
    }

    fn act_ready(&self, bank_next: Cycle, g: &GroupState, r: &RankState) -> Cycle {
        let mut ready = bank_next.max(g.next_act).max(r.next_act);
        // tFAW: at most 4 activations per rank per window.
        if r.recent_acts.len() >= 4 {
            let oldest = r.recent_acts[r.recent_acts.len() - 4];
            ready = ready.max(oldest + self.t.t_faw);
        }
        ready
    }

    /// Records `cmd` as issued at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `cycle` is earlier than
    /// [`TimingState::earliest`] allows — controllers must consult
    /// `earliest` first.
    pub fn commit(&mut self, cmd: &Command, cycle: Cycle) {
        debug_assert!(
            self.earliest(cmd).map(|c| cycle >= c).unwrap_or(false),
            "commit violates timing: {:?} at {cycle}",
            cmd
        );
        let t = self.t;
        let topo = self.topo;
        let sa = cmd.addr.subarray(&topo);
        let bank_idx = cmd.addr.flat_bank(&topo) as usize;
        let group_idx = cmd.addr.flat_bank_group(&topo) as usize;
        let rank_idx = cmd.addr.rank as usize;
        if cmd.kind == CommandKind::Ref {
            // Close every bank of the rank and block it for tRFC.
            let base = (cmd.addr.rank * topo.banks_per_rank()) as usize;
            for i in 0..topo.banks_per_rank() as usize {
                let bank = &mut self.banks[base + i];
                bank.open_row = None;
                bank.local_rows.clear();
                bank.local_ready.clear();
                bank.sa_read_until.clear();
                bank.selected_subarray = None;
                bank.next_act = bank.next_act.max(cycle + t.t_rfc);
                bank.next_rd = bank.next_rd.max(cycle + t.t_rfc);
                bank.next_wr = bank.next_wr.max(cycle + t.t_rfc);
                for next in bank.next_act_sa.values_mut() {
                    *next = (*next).max(cycle + t.t_rfc);
                }
            }
            let rank = &mut self.ranks[rank_idx];
            rank.next_act = rank.next_act.max(cycle + t.t_rfc);
            rank.next_rd = rank.next_rd.max(cycle + t.t_rfc);
            rank.next_wr = rank.next_wr.max(cycle + t.t_rfc);
            for g in 0..topo.bank_groups {
                let gi = (cmd.addr.rank * topo.bank_groups + g) as usize;
                self.groups[gi].next_act = self.groups[gi].next_act.max(cycle + t.t_rfc);
                self.groups[gi].next_rd = self.groups[gi].next_rd.max(cycle + t.t_rfc);
                self.groups[gi].next_wr = self.groups[gi].next_wr.max(cycle + t.t_rfc);
            }
            return;
        }
        let b = &mut self.banks[bank_idx];
        match cmd.kind {
            CommandKind::Act => {
                b.open_row = Some(cmd.addr.row);
                b.next_rd = b.next_rd.max(cycle + t.t_rcd);
                b.next_wr = b.next_wr.max(cycle + t.t_rcd);
                b.next_pre = b.next_pre.max(cycle + t.t_ras);
                b.next_act = b.next_act.max(cycle + t.t_rc);
                Self::note_act(
                    &mut self.groups[group_idx],
                    &mut self.ranks[rank_idx],
                    cycle,
                    &t,
                );
            }
            CommandKind::ActSa => {
                b.local_rows.insert(sa, cmd.addr.row);
                b.next_act_sa.insert(sa, cycle + t.t_rc);
                // Reads of this subarray (and its selection) wait tRCD; the
                // bank-wide read gate is untouched so other subarrays keep
                // streaming — the whole point of SALP.
                b.local_ready.insert(sa, cycle + t.t_rcd);
                b.next_pre = b.next_pre.max(cycle + t.t_ras);
                Self::note_act(
                    &mut self.groups[group_idx],
                    &mut self.ranks[rank_idx],
                    cycle,
                    &t,
                );
            }
            CommandKind::Rd => {
                // Same-bank column cadence: tCCD_L models the shared
                // bank-group I/O gating; a read into a *bank-level PE*
                // bypasses that I/O and cycles at the core column rate
                // (tCCD_S) — the source of bank-level NMP's internal
                // bandwidth (paper §2.3).
                let bank_gap = if matches!(cmd.data_scope, DataScope::Bank) {
                    t.t_ccd_s
                } else {
                    t.t_ccd_l
                };
                b.next_rd = b.next_rd.max(cycle + bank_gap);
                b.next_pre = b.next_pre.max(cycle + t.t_rtp);
                b.next_sel = b.next_sel.max(cycle + t.t_ra);
                let guard = b.sa_read_until.entry(sa).or_insert(0);
                *guard = (*guard).max(cycle + bank_gap);
                // Read-to-write turnaround on the same paths.
                b.next_wr = b.next_wr.max(cycle + bank_gap);
                if !matches!(cmd.data_scope, DataScope::Bank) {
                    self.groups[group_idx].next_rd =
                        self.groups[group_idx].next_rd.max(cycle + t.t_ccd_l);
                    self.groups[group_idx].next_wr =
                        self.groups[group_idx].next_wr.max(cycle + t.t_ccd_l);
                }
                if matches!(cmd.data_scope, DataScope::Rank) {
                    self.ranks[rank_idx].next_rd =
                        self.ranks[rank_idx].next_rd.max(cycle + t.t_ccd_s);
                    self.ranks[rank_idx].next_wr =
                        self.ranks[rank_idx].next_wr.max(cycle + t.t_ccd_s);
                }
            }
            CommandKind::Pre => {
                b.open_row = None;
                b.local_rows.clear();
                b.local_ready.clear();
                b.sa_read_until.clear();
                b.selected_subarray = None;
                b.next_act = b.next_act.max(cycle + t.t_rp);
                for next in b.next_act_sa.values_mut() {
                    *next = (*next).max(cycle + t.t_rp);
                }
            }
            CommandKind::SelSa => {
                b.selected_subarray = Some(sa);
                // Selection switch must settle before data moves: model as a
                // read gate of tRA.
                b.next_rd = b.next_rd.max(cycle + t.t_ra);
                b.next_sel = b.next_sel.max(cycle + t.t_ra);
            }
            CommandKind::Wr => {
                let bank_gap = if matches!(cmd.data_scope, DataScope::Bank) {
                    t.t_ccd_s
                } else {
                    t.t_ccd_l
                };
                b.next_wr = b.next_wr.max(cycle + bank_gap);
                // Write data lands tCWL later and must recover (tWR) before
                // precharge; reads wait the write-to-read turnaround.
                b.next_pre = b.next_pre.max(cycle + t.t_cwl + t.t_bl + t.t_wr);
                b.next_rd = b.next_rd.max(cycle + t.t_cwl + t.t_bl + t.t_wtr_l);
                if !matches!(cmd.data_scope, DataScope::Bank) {
                    self.groups[group_idx].next_wr =
                        self.groups[group_idx].next_wr.max(cycle + t.t_ccd_l);
                    self.groups[group_idx].next_rd = self.groups[group_idx]
                        .next_rd
                        .max(cycle + t.t_cwl + t.t_bl + t.t_wtr_l);
                }
                if matches!(cmd.data_scope, DataScope::Rank) {
                    self.ranks[rank_idx].next_wr =
                        self.ranks[rank_idx].next_wr.max(cycle + t.t_ccd_s);
                    self.ranks[rank_idx].next_rd = self.ranks[rank_idx]
                        .next_rd
                        .max(cycle + t.t_cwl + t.t_bl + t.t_wtr_s);
                }
            }
            CommandKind::Ref => unreachable!("handled before the bank borrow"),
        }
    }

    fn note_act(g: &mut GroupState, r: &mut RankState, cycle: Cycle, t: &TimingParams) {
        g.next_act = g.next_act.max(cycle + t.t_rrd_l);
        r.next_act = r.next_act.max(cycle + t.t_rrd_s);
        r.recent_acts.push(cycle);
        if r.recent_acts.len() > 8 {
            r.recent_acts.drain(..4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn state() -> TimingState {
        let c = DramConfig::ddr5_4800();
        TimingState::new(c.topology, c.timing)
    }

    fn addr(rank: u32, bg: u32, bank: u32, row: u32, col: u32) -> PhysAddr {
        PhysAddr {
            channel: 0,
            rank,
            bank_group: bg,
            bank,
            row,
            col_byte: col,
        }
    }

    fn cmd(kind: CommandKind, a: PhysAddr) -> Command {
        Command::new(kind, a)
    }

    #[test]
    fn act_then_rd_waits_trcd() {
        let mut s = state();
        let a = addr(0, 0, 0, 5, 0);
        let act = cmd(CommandKind::Act, a);
        assert_eq!(s.earliest(&act).unwrap(), 0);
        s.commit(&act, 0);
        let rd = cmd(CommandKind::Rd, a);
        assert_eq!(s.earliest(&rd).unwrap(), s.timing().t_rcd);
    }

    #[test]
    fn rd_requires_matching_row() {
        let mut s = state();
        let a = addr(0, 0, 0, 5, 0);
        s.commit(&cmd(CommandKind::Act, a), 0);
        let wrong_row = cmd(CommandKind::Rd, addr(0, 0, 0, 6, 0));
        assert_eq!(s.earliest(&wrong_row), Err(TimingError::RowNotOpen));
    }

    #[test]
    fn act_on_open_bank_rejected() {
        let mut s = state();
        let a = addr(0, 0, 0, 5, 0);
        s.commit(&cmd(CommandKind::Act, a), 0);
        let again = cmd(CommandKind::Act, addr(0, 0, 0, 9, 0));
        assert_eq!(s.earliest(&again), Err(TimingError::RowAlreadyOpen));
    }

    #[test]
    fn row_cycle_enforced_after_pre() {
        let mut s = state();
        let t = *s.timing();
        let a = addr(0, 0, 0, 5, 0);
        s.commit(&cmd(CommandKind::Act, a), 0);
        let pre = cmd(CommandKind::Pre, a);
        let pre_at = s.earliest(&pre).unwrap();
        assert_eq!(pre_at, t.t_ras);
        s.commit(&pre, pre_at);
        let act2 = cmd(CommandKind::Act, addr(0, 0, 0, 6, 0));
        // Next ACT limited by both tRC from ACT and tRP from PRE.
        assert_eq!(s.earliest(&act2).unwrap(), t.t_rc.max(pre_at + t.t_rp));
    }

    #[test]
    fn ccd_long_vs_short() {
        let mut s = state();
        let t = *s.timing();
        let a0 = addr(0, 0, 0, 1, 0);
        let a1 = addr(0, 1, 0, 1, 0); // different bank group
        s.commit(&cmd(CommandKind::Act, a0), 0);
        s.commit(&cmd(CommandKind::Act, a1), t.t_rrd_s);
        let rd0 = cmd(CommandKind::Rd, a0);
        let at0 = s.earliest(&rd0).unwrap();
        s.commit(&rd0, at0);
        // Same bank group read: tCCD_L; cross group: tCCD_S.
        let same_bg = cmd(CommandKind::Rd, addr(0, 0, 0, 1, 64));
        let diff_bg = cmd(CommandKind::Rd, a1);
        assert_eq!(s.earliest(&same_bg).unwrap(), at0 + t.t_ccd_l);
        assert_eq!(s.earliest(&diff_bg).unwrap(), at0 + t.t_ccd_s);
    }

    #[test]
    fn faw_limits_fifth_activation() {
        let mut s = state();
        let t = *s.timing();
        // Five ACTs to distinct banks of one rank.
        let mut issue = Vec::new();
        for i in 0..5u32 {
            let a = addr(0, i % 8, (i / 8) % 4, 0, 0);
            let c = cmd(CommandKind::Act, a);
            let at = s.earliest(&c).unwrap();
            s.commit(&c, at);
            issue.push(at);
        }
        // 5th activation must wait for the window after the 1st.
        assert!(issue[4] >= issue[0] + t.t_faw);
        // ...and the first four were only tRRD apart.
        assert!(issue[3] < issue[0] + t.t_faw);
    }

    #[test]
    fn different_rank_independent_faw() {
        let mut s = state();
        for i in 0..4u32 {
            let c = cmd(CommandKind::Act, addr(0, i % 8, 0, 0, 0));
            let at = s.earliest(&c).unwrap();
            s.commit(&c, at);
        }
        // Rank 1 unaffected.
        let c = cmd(CommandKind::Act, addr(1, 0, 0, 0, 0));
        assert_eq!(s.earliest(&c).unwrap(), 0);
    }

    #[test]
    fn write_requires_open_row_and_recovers() {
        let mut s = state();
        let t = *s.timing();
        let a = addr(0, 0, 0, 5, 0);
        assert_eq!(
            s.earliest(&cmd(CommandKind::Wr, a)),
            Err(TimingError::RowNotOpen)
        );
        s.commit(&cmd(CommandKind::Act, a), 0);
        let wr = cmd(CommandKind::Wr, a);
        let wr_at = s.earliest(&wr).unwrap();
        assert_eq!(wr_at, t.t_rcd);
        s.commit(&wr, wr_at);
        // Precharge waits for write recovery.
        let pre_at = s.earliest(&cmd(CommandKind::Pre, a)).unwrap();
        assert_eq!(pre_at, wr_at + t.t_cwl + t.t_bl + t.t_wr);
        // Read after write waits the turnaround.
        let rd_at = s.earliest(&cmd(CommandKind::Rd, a)).unwrap();
        assert_eq!(rd_at, wr_at + t.t_cwl + t.t_bl + t.t_wtr_l);
    }

    #[test]
    fn refresh_blocks_rank() {
        let mut s = state();
        let t = *s.timing();
        let a = addr(0, 0, 0, 5, 0);
        let refresh = cmd(CommandKind::Ref, a);
        assert_eq!(s.earliest(&refresh).unwrap(), 0);
        s.commit(&refresh, 0);
        let act = cmd(CommandKind::Act, a);
        assert_eq!(s.earliest(&act).unwrap(), t.t_rfc);
        // Other rank unaffected.
        let other = cmd(CommandKind::Act, addr(1, 0, 0, 5, 0));
        assert_eq!(s.earliest(&other).unwrap(), 0);
    }

    #[test]
    fn refresh_waits_for_open_rows() {
        let mut s = state();
        let t = *s.timing();
        let a = addr(0, 0, 0, 5, 0);
        s.commit(&cmd(CommandKind::Act, a), 0);
        let refresh = cmd(CommandKind::Ref, a);
        // The open row pins the refresh behind tRAS (precharge-all).
        assert!(s.earliest(&refresh).unwrap() >= t.t_ras);
        let at = s.earliest(&refresh).unwrap();
        s.commit(&refresh, at);
        assert_eq!(s.open_row(&a), None, "refresh closes rows");
    }

    #[test]
    fn salp_overlapped_activation() {
        let mut s = state();
        let t = *s.timing();
        // Two rows in *different subarrays* of the same bank.
        let a0 = addr(0, 0, 0, 0, 0); // subarray 0
        let a1 = addr(0, 0, 0, 256, 0); // subarray 1
        let act0 = cmd(CommandKind::ActSa, a0);
        s.commit(&act0, 0);
        let act1 = cmd(CommandKind::ActSa, a1);
        // Legal after tRRD_L, far earlier than tRC.
        let at1 = s.earliest(&act1).unwrap();
        assert_eq!(at1, t.t_rrd_l);
        assert!(at1 < t.t_rc);
    }

    #[test]
    fn salp_same_subarray_still_serial() {
        let mut s = state();
        let t = *s.timing();
        let a0 = addr(0, 0, 0, 0, 0);
        let a1 = addr(0, 0, 0, 1, 0); // same subarray, different row
        s.commit(&cmd(CommandKind::ActSa, a0), 0);
        let at = s.earliest(&cmd(CommandKind::ActSa, a1)).unwrap();
        assert_eq!(at, t.t_rc, "same-subarray row cycle unchanged");
    }

    #[test]
    fn salp_read_needs_selection() {
        let mut s = state();
        let t = *s.timing();
        let a0 = addr(0, 0, 0, 0, 0);
        s.commit(&cmd(CommandKind::ActSa, a0), 0);
        // Read before SelSa: the bank has no selected subarray and no global
        // open row -> RowNotOpen.
        assert_eq!(
            s.earliest(&cmd(CommandKind::Rd, a0)),
            Err(TimingError::RowNotOpen)
        );
        let sel = cmd(CommandKind::SelSa, a0);
        let sel_at = s.earliest(&sel).unwrap();
        s.commit(&sel, sel_at);
        let rd_at = s.earliest(&cmd(CommandKind::Rd, a0)).unwrap();
        assert!(rd_at >= sel_at + t.t_ra.min(t.t_rcd));
        s.commit(&cmd(CommandKind::Rd, a0), rd_at);
        // Reading another subarray without re-selecting is illegal.
        let a1 = addr(0, 0, 0, 256, 0);
        s.commit(
            &cmd(CommandKind::ActSa, a1),
            s.earliest(&cmd(CommandKind::ActSa, a1)).unwrap(),
        );
        assert_eq!(
            s.earliest(&cmd(CommandKind::Rd, a1)),
            Err(TimingError::SubarrayNotSelected)
        );
        // Re-selection waits tRA after the last read.
        let sel1 = cmd(CommandKind::SelSa, a1);
        assert!(s.earliest(&sel1).unwrap() >= rd_at + t.t_ra);
    }

    #[test]
    fn salp_select_requires_activation() {
        let s = state();
        let a = addr(0, 0, 0, 0, 0);
        assert_eq!(
            s.earliest(&cmd(CommandKind::SelSa, a)),
            Err(TimingError::SubarrayNotActivated)
        );
    }

    #[test]
    fn pre_clears_salp_state() {
        let mut s = state();
        let a = addr(0, 0, 0, 0, 0);
        s.commit(&cmd(CommandKind::ActSa, a), 0);
        let sel = cmd(CommandKind::SelSa, a);
        let at = s.earliest(&sel).unwrap();
        s.commit(&sel, at);
        let pre = cmd(CommandKind::Pre, a);
        let pre_at = s.earliest(&pre).unwrap();
        s.commit(&pre, pre_at);
        assert_eq!(s.selected_subarray(&a), None);
        assert_eq!(s.local_row(&a, 0), None);
    }

    #[test]
    fn pre_of_idle_bank_rejected() {
        let s = state();
        assert_eq!(
            s.earliest(&cmd(CommandKind::Pre, addr(0, 0, 0, 0, 0))),
            Err(TimingError::NothingToPrecharge)
        );
    }

    #[test]
    fn bad_address_rejected() {
        let s = state();
        let a = addr(9, 0, 0, 0, 0);
        assert_eq!(
            s.earliest(&cmd(CommandKind::Act, a)),
            Err(TimingError::BadAddress)
        );
    }
}
